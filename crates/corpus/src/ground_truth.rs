//! Per-app ground truth: what the app really does on the network, how each
//! transaction is triggered at runtime, and the paper's published Table 1
//! row for comparison.

use crate::server::ServerSpec;
use extractocol_http::HttpMethod;
use extractocol_ir::Apk;

/// A concrete argument used when a fuzzer invokes a trigger method.
#[derive(Clone, Debug, PartialEq)]
pub enum ConcreteArg {
    Str(String),
    Int(i64),
    /// A null reference argument.
    Null,
}

impl ConcreteArg {
    /// Shorthand for a string argument.
    pub fn s(v: &str) -> ConcreteArg {
        ConcreteArg::Str(v.to_string())
    }
}

/// How a transaction gets triggered at runtime (drives the UI-fuzzing
/// simulators; §5.1 explains why each class defeats some fuzzer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerKind {
    /// Plain clickable UI: both manual and automatic fuzzing reach it.
    StandardUi,
    /// Custom-drawn UI PUMA cannot recognize ("PUMA fails to recognize
    /// custom UI for a number of apps and stops to explore further").
    CustomUi,
    /// Requires signing up / logging in — manual-only.
    LoginFlow,
    /// Fired by a timer ("some apps trigger APK update requests using
    /// timers") — invisible to both fuzzers.
    Timer,
    /// Triggered by a server push / content update (TED case study).
    ServerPush,
    /// An "action with side-effects, such as purchasing products" —
    /// neither fuzzer dares.
    SideEffect,
}

/// A runnable trigger: the method a fuzzer invokes to fire a transaction.
#[derive(Clone, Debug)]
pub struct Trigger {
    pub kind: TriggerKind,
    /// Class declaring the trigger method.
    pub class: String,
    /// Method name.
    pub method: String,
    /// Concrete arguments for the invocation.
    pub args: Vec<ConcreteArg>,
}

impl Trigger {
    /// Convenience constructor.
    pub fn new(kind: TriggerKind, class: &str, method: &str, args: Vec<ConcreteArg>) -> Trigger {
        Trigger { kind, class: class.to_string(), method: method.to_string(), args }
    }
}

/// Response ground truth for one transaction.
#[derive(Clone, Debug, PartialEq)]
pub enum RespTruth {
    /// No body processed by the app.
    None,
    /// JSON body; the keys the app reads.
    Json(Vec<String>),
    /// XML body; the tags the app reads.
    Xml(Vec<String>),
    /// Body consumed without structured parsing (media, images, text).
    Raw,
}

/// Ground truth for one transaction the app can perform.
#[derive(Clone, Debug)]
pub struct TxnTruth {
    pub method: HttpMethod,
    /// Distinct URI patterns this logical transaction covers (Diode-style
    /// branchy URI construction; Table 1's method columns count each).
    pub variants: usize,
    /// One concrete example URI per variant (what a run produces).
    pub uri_examples: Vec<String>,
    /// Constant query keys (in URI or form body).
    pub query_keys: Vec<String>,
    /// JSON request-body keys, if the request carries JSON.
    pub body_json_keys: Vec<String>,
    /// Form body keys, if the request is form-encoded.
    pub form_keys: Vec<String>,
    /// Response ground truth.
    pub resp: RespTruth,
    /// How a run triggers it.
    pub trigger: Trigger,
    /// Argument sets for multi-variant transactions: the fuzzer invokes
    /// the trigger once per entry (empty → a single invocation with
    /// `trigger.args`).
    pub variant_args: Vec<Vec<ConcreteArg>>,
    /// A method to invoke first (e.g. the event handler that populates a
    /// heap object the transaction later reads — the §3.4 async pattern).
    pub setup: Option<Trigger>,
    /// Reached by manual UI fuzzing.
    pub visible_manual: bool,
    /// Reached by automatic UI fuzzing (PUMA).
    pub visible_auto: bool,
    /// Discoverable by static analysis (false for raw-socket ad/analytics
    /// traffic and intent-mediated messages — §5.1's missed cases).
    pub static_visible: bool,
    /// The request body is only recoverable with the §3.4 asynchronous-
    /// event heuristic enabled (the Reddinator RRD case of §5.1).
    pub body_requires_async: bool,
}

impl TxnTruth {
    /// Whether this transaction has a query string.
    pub fn has_query(&self) -> bool {
        !self.query_keys.is_empty() || !self.form_keys.is_empty()
    }

    /// Whether the transaction involves JSON (request or response).
    pub fn json_signatures(&self) -> usize {
        usize::from(!self.body_json_keys.is_empty())
            + usize::from(matches!(self.resp, RespTruth::Json(_)))
    }

    /// Whether the response is XML.
    pub fn is_xml(&self) -> bool {
        matches!(self.resp, RespTruth::Xml(_))
    }

    /// Whether the transaction forms a request/response pair.
    pub fn is_paired(&self) -> bool {
        !matches!(self.resp, RespTruth::None)
    }
}

/// One cell row of Table 1 (counts per category).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RowCounts {
    pub get: usize,
    pub post: usize,
    pub put: usize,
    pub delete: usize,
    pub query: usize,
    pub json: usize,
    pub xml: usize,
    pub pairs: usize,
}

impl RowCounts {
    /// Total request signatures.
    pub fn total(&self) -> usize {
        self.get + self.post + self.put + self.delete
    }
}

/// The published Table 1 row for an app: Extractocol / manual fuzzing /
/// third method (source-code analysis for open-source apps, automatic
/// fuzzing for closed-source ones).
#[derive(Clone, Copy, Debug, Default)]
pub struct PaperRow {
    pub extractocol: RowCounts,
    pub manual: RowCounts,
    pub third: RowCounts,
}

/// Ground truth for a whole app.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// Display name (Table 1 first column).
    pub name: String,
    /// Open-source (F-Droid) vs closed-source (Google Play).
    pub open_source: bool,
    /// Table 1's protocol column.
    pub protocol: &'static str,
    /// The published numbers, for paper-vs-measured reporting.
    pub paper_row: PaperRow,
    /// Every transaction the app can perform.
    pub txns: Vec<TxnTruth>,
}

impl GroundTruth {
    /// The counts a perfect static analysis would produce on this corpus
    /// model (what Table 1's Extractocol column is calibrated to).
    pub fn static_counts(&self) -> RowCounts {
        self.static_counts_with(true)
    }

    /// Like [`GroundTruth::static_counts`], but reflecting whether the
    /// §3.4 asynchronous-event heuristic is enabled (the paper disables it
    /// for open-source apps, which loses async-gated request bodies).
    pub fn static_counts_with(&self, async_heuristic: bool) -> RowCounts {
        let mut c = RowCounts::default();
        for t in self.txns.iter().filter(|t| t.static_visible) {
            match t.method {
                HttpMethod::Get => c.get += 1,
                HttpMethod::Post => c.post += 1,
                HttpMethod::Put => c.put += 1,
                HttpMethod::Delete => c.delete += 1,
            }
            let body_visible = async_heuristic || !t.body_requires_async;
            if t.has_query() && (body_visible || !t.query_keys.is_empty()) {
                c.query += 1;
            }
            c.json += usize::from(!t.body_json_keys.is_empty() && body_visible)
                + usize::from(matches!(t.resp, RespTruth::Json(_)));
            if t.is_xml() {
                c.xml += 1;
            }
            if t.is_paired() {
                c.pairs += 1;
            }
        }
        c
    }

    /// Counts over the transactions a given visibility predicate selects
    /// (used for expected-manual / expected-auto rows).
    pub fn counts_where(&self, f: impl Fn(&TxnTruth) -> bool) -> RowCounts {
        let mut c = RowCounts::default();
        for t in self.txns.iter().filter(|t| f(t)) {
            match t.method {
                HttpMethod::Get => c.get += 1,
                HttpMethod::Post => c.post += 1,
                HttpMethod::Put => c.put += 1,
                HttpMethod::Delete => c.delete += 1,
            }
            if t.has_query() {
                c.query += 1;
            }
            c.json += t.json_signatures();
            if t.is_xml() {
                c.xml += 1;
            }
            if t.is_paired() {
                c.pairs += 1;
            }
        }
        c
    }
}

/// A complete corpus entry.
#[derive(Clone, Debug)]
pub struct AppSpec {
    pub apk: Apk,
    pub truth: GroundTruth,
    pub server: ServerSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_classification() {
        let t = TxnTruth {
            method: HttpMethod::Post,
            variants: 1,
            uri_examples: vec!["https://x/api".into()],
            query_keys: vec![],
            body_json_keys: vec!["user".into()],
            form_keys: vec![],
            resp: RespTruth::Json(vec!["token".into()]),
            variant_args: vec![],
            setup: None,
            trigger: Trigger::new(TriggerKind::LoginFlow, "a.B", "login", vec![]),
            visible_manual: true,
            visible_auto: false,
            static_visible: true,
            body_requires_async: false,
        };
        assert!(!t.has_query());
        assert_eq!(t.json_signatures(), 2);
        assert!(t.is_paired());
        assert!(!t.is_xml());
    }
}
