//! Serving-side instruments: a [`Registry`]-backed bundle covering the
//! classifier (request/verdict counters, candidate-fraction distribution,
//! per-verdict-class latency histograms) and the batch machinery (shard
//! counts, shard imbalance, phase timings).
//!
//! The deterministic/per-run split matters here: verdict counters,
//! candidate totals, and the candidate-fraction histogram depend only on
//! the index and the request set, so they are registered
//! [`Volatility::Deterministic`] and must render byte-identically for any
//! `--jobs` value (pinned by the jobs-invariance test). Latencies, shard
//! imbalance, and phase seconds are wall-clock and register
//! [`Volatility::PerRun`].

use extractocol_dynamic::AttackClass;
use extractocol_obs::metrics::{FRACTION_BUCKETS, LATENCY_US_BUCKETS};
use extractocol_obs::{Counter, Gauge, Histogram, Registry, Volatility};
use std::sync::Arc;
use std::time::Duration;

use crate::index::{Probe, Verdict};

/// The serving subsystem's instrument bundle. Cheap to clone (every
/// instrument is an `Arc`); safe to update from classify workers.
#[derive(Clone)]
pub struct ServeMetrics {
    /// The backing registry — render with
    /// [`Registry::render`] / [`Registry::render_deterministic`].
    pub registry: Registry,
    requests: Arc<Counter>,
    verdict_match: Arc<Counter>,
    verdict_unmatched: Arc<Counter>,
    candidates: Arc<Counter>,
    structural_evals: Arc<Counter>,
    budget_exhausted: Arc<Counter>,
    shards: Arc<Counter>,
    candidate_fraction: Arc<Histogram>,
    latency_match: Arc<Histogram>,
    latency_unmatched: Arc<Histogram>,
    index_signatures: Arc<Gauge>,
    index_trie_nodes: Arc<Gauge>,
    shard_imbalance: Arc<Gauge>,
    compile_seconds: Arc<Gauge>,
    classify_seconds: Arc<Gauge>,
}

impl ServeMetrics {
    /// Builds the bundle on a fresh registry.
    pub fn new() -> ServeMetrics {
        let registry = Registry::new();
        let det = Volatility::Deterministic;
        let run = Volatility::PerRun;
        let requests =
            registry.counter("serve_classify_requests_total", &[], det, "Requests classified");
        let verdict_match = registry.counter(
            "serve_classify_verdict_total",
            &[("verdict", "match")],
            det,
            "Verdicts by class",
        );
        let verdict_unmatched = registry.counter(
            "serve_classify_verdict_total",
            &[("verdict", "unmatched")],
            det,
            "Verdicts by class",
        );
        let candidates = registry.counter(
            "serve_classify_candidates_total",
            &[],
            det,
            "Candidate-set sizes summed over all requests",
        );
        let structural_evals = registry.counter(
            "serve_classify_structural_evals_total",
            &[],
            det,
            "Structural-matcher invocations",
        );
        let budget_exhausted = registry.counter(
            "serve_classify_budget_exhausted_total",
            &[],
            det,
            "Candidates that exhausted the match budget",
        );
        let shards = registry.counter(
            "serve_shards_total",
            &[],
            det,
            "Fixed-size classify shards processed",
        );
        let candidate_fraction = registry.histogram(
            "serve_classify_candidate_fraction",
            &[],
            det,
            "Per-request fraction of signatures surviving trie pruning",
            FRACTION_BUCKETS,
        );
        let latency_match = registry.histogram(
            "serve_classify_latency_us",
            &[("verdict", "match")],
            run,
            "Single-request classify latency (us) by verdict class",
            LATENCY_US_BUCKETS,
        );
        let latency_unmatched = registry.histogram(
            "serve_classify_latency_us",
            &[("verdict", "unmatched")],
            run,
            "Single-request classify latency (us) by verdict class",
            LATENCY_US_BUCKETS,
        );
        let index_signatures =
            registry.gauge("serve_index_signatures", &[], det, "Compiled signatures in the index");
        let index_trie_nodes =
            registry.gauge("serve_index_trie_nodes", &[], det, "Trie nodes in the index");
        let shard_imbalance = registry.gauge(
            "serve_shard_imbalance_ratio",
            &[],
            run,
            "Slowest shard wall-clock over the mean shard wall-clock",
        );
        let compile_seconds =
            registry.gauge("serve_phase_compile_seconds", &[], run, "Index compile wall-clock");
        let classify_seconds = registry.gauge(
            "serve_phase_classify_seconds",
            &[],
            run,
            "Batch classification wall-clock",
        );
        ServeMetrics {
            registry,
            requests,
            verdict_match,
            verdict_unmatched,
            candidates,
            structural_evals,
            budget_exhausted,
            shards,
            candidate_fraction,
            latency_match,
            latency_unmatched,
            index_signatures,
            index_trie_nodes,
            shard_imbalance,
            compile_seconds,
            classify_seconds,
        }
    }

    /// Records the static shape of the compiled index.
    pub fn observe_index(&self, signatures: usize, trie_nodes: usize) {
        self.index_signatures.set(signatures as f64);
        self.index_trie_nodes.set(trie_nodes as f64);
    }

    /// Records one classified request: counters, the candidate-fraction
    /// distribution, and (when timed) the per-verdict latency histogram.
    pub fn observe_request(
        &self,
        verdict: &Verdict,
        probe: &Probe,
        signatures: usize,
        latency: Option<Duration>,
    ) {
        self.requests.inc();
        self.candidates.add(probe.candidates as u64);
        self.structural_evals.add(probe.structural_evals as u64);
        self.budget_exhausted.add(probe.budget_exhausted as u64);
        if signatures > 0 {
            self.candidate_fraction.observe(probe.candidates as f64 / signatures as f64);
        }
        let latency_hist = match verdict {
            Verdict::Match(_) => {
                self.verdict_match.inc();
                &self.latency_match
            }
            Verdict::Unmatched => {
                self.verdict_unmatched.inc();
                &self.latency_unmatched
            }
        };
        if let Some(d) = latency {
            latency_hist.observe(d.as_secs_f64() * 1e6);
        }
    }

    /// Records the shard fan-out: count, plus the imbalance ratio
    /// (slowest shard over mean shard) — the number that tells you when
    /// one hot shard serializes the pool.
    pub fn observe_shards(&self, durations: &[Duration]) {
        self.shards.add(durations.len() as u64);
        if durations.is_empty() {
            return;
        }
        let total: f64 = durations.iter().map(Duration::as_secs_f64).sum();
        let mean = total / durations.len() as f64;
        let max = durations.iter().map(Duration::as_secs_f64).fold(0.0f64, f64::max);
        if mean > 0.0 {
            self.shard_imbalance.set(max / mean);
        }
    }

    /// Records the compile/classify phase wall-clocks.
    pub fn observe_phases(&self, compile: Duration, classify: Duration) {
        self.compile_seconds.set(compile.as_secs_f64());
        self.classify_seconds.set(classify.as_secs_f64());
    }
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

/// Adversarial-bench instruments: per-attack-class counters (cases,
/// parse rejections, budget exhaustions, verdicts — all
/// [`Volatility::Deterministic`], so they are jobs-invariant and
/// grep-gateable in CI) plus the p99-under-attack latency histogram
/// (wall-clock, [`Volatility::PerRun`]).
#[derive(Clone)]
pub struct AttackMetrics {
    per_class: Vec<AttackClassInstruments>,
    latency: Arc<Histogram>,
}

#[derive(Clone)]
struct AttackClassInstruments {
    class: AttackClass,
    cases: Arc<Counter>,
    parse_errors: Arc<Counter>,
    budget_exhausted: Arc<Counter>,
    verdict_match: Arc<Counter>,
    verdict_unmatched: Arc<Counter>,
}

impl AttackMetrics {
    /// Registers the attack families on an existing registry (usually the
    /// one inside a [`ServeMetrics`], so one exposition carries both).
    pub fn on(registry: &Registry) -> AttackMetrics {
        let det = Volatility::Deterministic;
        let per_class = AttackClass::ALL
            .iter()
            .map(|&class| {
                let c = class.name();
                AttackClassInstruments {
                    class,
                    cases: registry.counter(
                        "serve_attack_cases_total",
                        &[("class", c)],
                        det,
                        "Adversarial cases processed, by attack class",
                    ),
                    parse_errors: registry.counter(
                        "serve_attack_parse_errors_total",
                        &[("class", c)],
                        det,
                        "Adversarial cases rejected by the wire-format parser",
                    ),
                    budget_exhausted: registry.counter(
                        "serve_attack_budget_exhausted_total",
                        &[("class", c)],
                        det,
                        "Match-budget exhaustions while classifying adversarial cases",
                    ),
                    verdict_match: registry.counter(
                        "serve_attack_verdict_total",
                        &[("class", c), ("verdict", "match")],
                        det,
                        "Adversarial verdicts, by attack class",
                    ),
                    verdict_unmatched: registry.counter(
                        "serve_attack_verdict_total",
                        &[("class", c), ("verdict", "unmatched")],
                        det,
                        "Adversarial verdicts, by attack class",
                    ),
                }
            })
            .collect();
        let latency = registry.histogram(
            "serve_attack_latency_us",
            &[],
            Volatility::PerRun,
            "Per-case parse+classify latency under attack (us)",
            LATENCY_US_BUCKETS,
        );
        AttackMetrics { per_class, latency }
    }

    fn for_class(&self, class: AttackClass) -> &AttackClassInstruments {
        self.per_class.iter().find(|i| i.class == class).expect("every attack class registered")
    }

    /// Records one case the wire-format parser rejected (a structured
    /// error — the deterministic verdict for malformed input).
    pub fn observe_parse_error(&self, class: AttackClass, latency: Option<Duration>) {
        let i = self.for_class(class);
        i.cases.inc();
        i.parse_errors.inc();
        if let Some(d) = latency {
            self.latency.observe(d.as_secs_f64() * 1e6);
        }
    }

    /// Records one case that parsed and went through the classifier.
    pub fn observe_classified(
        &self,
        class: AttackClass,
        verdict: &Verdict,
        probe: &Probe,
        latency: Option<Duration>,
    ) {
        let i = self.for_class(class);
        i.cases.inc();
        i.budget_exhausted.add(probe.budget_exhausted as u64);
        match verdict {
            Verdict::Match(_) => i.verdict_match.inc(),
            Verdict::Unmatched => i.verdict_unmatched.inc(),
        }
        if let Some(d) = latency {
            self.latency.observe(d.as_secs_f64() * 1e6);
        }
    }

    /// The observed p99 of the under-attack latency histogram, in µs.
    pub fn latency_p99_us(&self) -> f64 {
        self.latency.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_observation_updates_the_expected_families() {
        let m = ServeMetrics::new();
        m.observe_index(40, 900);
        m.observe_request(
            &Verdict::Match(3),
            &Probe { candidates: 4, structural_evals: 2, budget_exhausted: 0 },
            40,
            Some(Duration::from_micros(12)),
        );
        m.observe_request(
            &Verdict::Unmatched,
            &Probe { candidates: 0, structural_evals: 0, budget_exhausted: 0 },
            40,
            None,
        );
        let text = m.registry.render();
        assert!(text.contains("serve_classify_requests_total 2"));
        assert!(text.contains("serve_classify_verdict_total{verdict=\"match\"} 1"));
        assert!(text.contains("serve_classify_verdict_total{verdict=\"unmatched\"} 1"));
        assert!(text.contains("serve_classify_candidates_total 4"));
        assert!(text.contains("serve_index_signatures 40"));
        assert!(text.contains("serve_classify_latency_us_count{verdict=\"match\"} 1"));
    }

    #[test]
    fn latency_and_phases_stay_out_of_the_deterministic_snapshot() {
        let m = ServeMetrics::new();
        m.observe_phases(Duration::from_millis(5), Duration::from_millis(9));
        m.observe_shards(&[Duration::from_millis(2), Duration::from_millis(4)]);
        let det = m.registry.render_deterministic();
        assert!(det.contains("serve_shards_total"));
        assert!(det.contains("serve_classify_candidate_fraction"));
        assert!(!det.contains("serve_classify_latency_us"));
        assert!(!det.contains("serve_shard_imbalance_ratio"));
        assert!(!det.contains("serve_phase_compile_seconds"));
    }

    #[test]
    fn attack_metrics_families_render_per_class() {
        let m = ServeMetrics::new();
        let a = AttackMetrics::on(&m.registry);
        a.observe_parse_error(AttackClass::MalformedWire, Some(Duration::from_micros(3)));
        a.observe_classified(
            AttackClass::RegexExhaustion,
            &Verdict::Unmatched,
            &Probe { candidates: 2, structural_evals: 2, budget_exhausted: 1 },
            Some(Duration::from_micros(40)),
        );
        let text = m.registry.render();
        assert!(text.contains("serve_attack_cases_total{class=\"malformed_wire\"} 1"));
        assert!(text.contains("serve_attack_parse_errors_total{class=\"malformed_wire\"} 1"));
        assert!(text.contains("serve_attack_budget_exhausted_total{class=\"regex_exhaustion\"} 1"));
        assert!(text.contains(
            "serve_attack_verdict_total{class=\"regex_exhaustion\",verdict=\"unmatched\"} 1"
        ));
        assert!(text.contains("serve_attack_latency_us_bucket"));
        // The per-class counters are jobs-invariant and survive in the
        // deterministic snapshot; the latency histogram does not.
        let det = m.registry.render_deterministic();
        assert!(det.contains("serve_attack_cases_total"));
        assert!(!det.contains("serve_attack_latency_us"));
    }

    #[test]
    fn shard_imbalance_is_max_over_mean() {
        let m = ServeMetrics::new();
        m.observe_shards(&[
            Duration::from_millis(10),
            Duration::from_millis(10),
            Duration::from_millis(40),
        ]);
        let text = m.registry.render();
        assert!(text.contains("serve_shards_total 3"));
        assert!(text.contains("serve_shard_imbalance_ratio 2"));
    }
}
