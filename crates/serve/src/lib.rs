//! # extractocol-serve
//!
//! The signature-serving subsystem: takes the [`AnalysisReport`]s the
//! static pipeline extracts (§4–§5 of the paper) and turns them into a
//! deployable artifact — a compiled [`SignatureIndex`] that classifies
//! live HTTP traffic back to `(app, transaction, demarcation point)`
//! provenance at high throughput. This is the paper's "network management
//! / signature-based filtering" use case (§2, §7) made concrete.
//!
//! Four layers:
//!
//! * [`index`] — the immutable compiled index: a byte-trie over mandatory
//!   literal URI prefixes prunes the candidate set before the structural
//!   matcher runs; verdicts are deterministic and brute-force-equivalent.
//! * [`classify`] — batch classification on the `core::par` worker pool
//!   with fixed-size shards and order-independent stat merging, so
//!   results are byte-identical across `jobs` settings.
//! * [`bench`] — the corpus-driven throughput benchmark behind
//!   `extractocol-serve bench` and CI's `BENCH_classify.json` gate.
//! * [`metrics`] — the serving-side instrument bundle ([`ServeMetrics`]):
//!   verdict counters, the candidate-fraction distribution,
//!   per-verdict-class latency histograms, and shard telemetry, rendered
//!   in exposition format behind `--metrics-out`.
//! * [`archive`] — the persistent form: a versioned, checksummed binary
//!   archive written by `extractocol-serve compile` and loaded by every
//!   other subcommand, so the index is built once and served many times.
//! * [`daemon`] — the long-running classifier: line-based traffic
//!   protocol over stdin or TCP, atomic hot-swap to a recompiled
//!   archive, graceful drain on shutdown.
//!
//! [`AnalysisReport`]: extractocol_core::report::AnalysisReport

pub mod archive;
pub mod bench;
pub mod classify;
pub mod daemon;
pub mod index;
pub mod metrics;

pub use archive::{
    read_archive, read_archive_file, write_archive, write_archive_file, ArchiveError,
};
pub use bench::{AttackBenchReport, AttackClassTally, BenchReport, ObservedBench};
pub use classify::{classify_batch, classify_batch_observed, ClassifyStats};
pub use daemon::{
    scrape, send_lines, trace_id_for, Daemon, DaemonConfig, DaemonMetrics, Reply, SwapError,
    SwapOutcome,
};
pub use index::{CompiledSig, Probe, SignatureIndex, Verdict};
pub use metrics::{AttackMetrics, ServeMetrics};
