//! # extractocol-serve
//!
//! The signature-serving subsystem: takes the [`AnalysisReport`]s the
//! static pipeline extracts (§4–§5 of the paper) and turns them into a
//! deployable artifact — a compiled [`SignatureIndex`] that classifies
//! live HTTP traffic back to `(app, transaction, demarcation point)`
//! provenance at high throughput. This is the paper's "network management
//! / signature-based filtering" use case (§2, §7) made concrete.
//!
//! Four layers:
//!
//! * [`index`] — the immutable compiled index: a byte-trie over mandatory
//!   literal URI prefixes prunes the candidate set before the structural
//!   matcher runs; verdicts are deterministic and brute-force-equivalent.
//! * [`classify`] — batch classification on the `core::par` worker pool
//!   with fixed-size shards and order-independent stat merging, so
//!   results are byte-identical across `jobs` settings.
//! * [`bench`] — the corpus-driven throughput benchmark behind
//!   `extractocol-serve bench` and CI's `BENCH_classify.json` gate.
//! * [`metrics`] — the serving-side instrument bundle ([`ServeMetrics`]):
//!   verdict counters, the candidate-fraction distribution,
//!   per-verdict-class latency histograms, and shard telemetry, rendered
//!   in exposition format behind `--metrics-out`.
//!
//! [`AnalysisReport`]: extractocol_core::report::AnalysisReport

pub mod bench;
pub mod classify;
pub mod index;
pub mod metrics;

pub use bench::{AttackBenchReport, AttackClassTally, BenchReport, ObservedBench};
pub use classify::{classify_batch, classify_batch_observed, ClassifyStats};
pub use index::{CompiledSig, Probe, SignatureIndex, Verdict};
pub use metrics::{AttackMetrics, ServeMetrics};
