//! The long-running classifier: `extractocol-serve daemon`.
//!
//! Speaks the existing line-based traffic wire format
//! ([`extractocol_dynamic::parse_request_line`]) over stdin/stdout or
//! TCP, one response line per input line. A handful of control verbs —
//! none of which collide with an HTTP method, so the grammar stays
//! unambiguous — drive the daemon itself:
//!
//! ```text
//! GET\t<uri>[\t<mime>\t<body>]   → match\t<app>\t<txn>\t<dp_class> | unmatched
//! PING                           → pong
//! STATS                          → stats\tgeneration=…\tsignatures=…\trequests=…\tswaps=…
//!                                        \tinflight=…\tparse_errors=…\tuptime_ticks=…
//! SWAP\t<archive-path>           → swapped\tgeneration=…\tsignatures=…\tload_us=…\tdrained=…
//! METRICS                        → metrics\tlines=N  then N Prometheus exposition lines
//! HEALTH                         → health\tstatus=ok\tgeneration=…\tsignatures=…
//!                                        \tuptime_ticks=…\tinflight=…\trequests=…\tlast_swap=…
//! SLOW                           → slow\tlines=N\texemplars=K  then N exemplar-dump lines
//! SHUTDOWN                       → bye            (then graceful drain + exit)
//! anything malformed             → error\t<reason>
//! ```
//!
//! Multi-line replies (`METRICS`, `SLOW`) are **block-framed**: the
//! header line carries `lines=N` in its second tab field and exactly `N`
//! payload lines follow, so one request still yields one logical
//! response and [`send_lines`] keeps its response-per-request contract.
//!
//! # Request trace ids
//!
//! Every traffic line gets a deterministic trace id:
//! `fnv1a64(conn_id.to_be_bytes() ‖ seq.to_be_bytes())` rendered as 16
//! hex digits, where `conn_id` is the accept-order connection number
//! (0 = stdin) and `seq` the 1-based request number on that connection.
//! The id is stitched through the request's `daemon_request` span, its
//! event-log records, and the slow-request [`ExemplarStore`] — so a
//! `SLOW` dump, an event grep, and a trace view all name the same
//! request the same way, and identical traffic replays produce
//! identical ids at any worker count.
//!
//! # Hot swap
//!
//! [`Daemon::swap_from_file`] replaces the serving index with a newly
//! compiled archive through a four-phase state machine:
//!
//! 1. **Load** — decode + structurally validate the archive
//!    ([`read_archive`]); any [`ArchiveError`] aborts the swap with the
//!    old index untouched.
//! 2. **Verify** — re-serialize the loaded index and require the bytes
//!    to equal the input archive. Deterministic serialization makes this
//!    a strong losslessness check: it fails iff decode dropped or
//!    reordered anything.
//! 3. **Swap** — atomically publish the new index
//!    (`RwLock<Arc<SignatureIndex>>` slot; in-flight requests keep their
//!    own `Arc` clone, so they finish on the index they started on).
//! 4. **Drain** — wait for the old index's outstanding `Arc` clones to
//!    drop. The swap is already committed here, so a drain timeout is
//!    reported in the outcome (and a metric), not an error.
//!
//! Failures in phases 1–2 are typed [`SwapError`]s and leave the old
//! index serving; the daemon never serves a partially-loaded index.

use crate::archive::{read_archive, write_archive, ArchiveError};
use crate::index::{SignatureIndex, Verdict};
use extractocol_dynamic::parse_request_line;
use extractocol_ir::hash::fnv1a64;
use extractocol_obs::metrics::LATENCY_US_BUCKETS;
use extractocol_obs::{
    Counter, EventLog, Exemplar, ExemplarStore, Gauge, Histogram, Registry, SpanRecord,
    TraceCollector, Volatility, DEFAULT_EXEMPLAR_CAPACITY,
};
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Daemon tunables. Defaults suit both the CI smoke gate and tests.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// How long phase 4 waits for the old index's references to drop
    /// before declaring the drain timed out.
    pub drain_timeout: Duration,
    /// Accept-loop poll interval (the TCP listener is non-blocking so
    /// shutdown is observed promptly).
    pub accept_poll: Duration,
    /// Per-connection read timeout; connections poll the shutdown flag
    /// at this cadence.
    pub read_poll: Duration,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            drain_timeout: Duration::from_secs(5),
            accept_poll: Duration::from_millis(10),
            read_poll: Duration::from_millis(100),
        }
    }
}

/// Why a hot swap was refused. Both variants fire *before* the swap
/// phase, so the previously serving index is untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SwapError {
    /// Phase 1: the archive failed to decode or validate.
    Load(ArchiveError),
    /// Phase 2: the loaded index did not re-serialize to the input
    /// bytes — decode was lossy, so the archive cannot be trusted.
    Verify(String),
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::Load(e) => write!(f, "load: {e}"),
            SwapError::Verify(msg) => write!(f, "verify: {msg}"),
        }
    }
}

impl std::error::Error for SwapError {}

/// A committed hot swap, with per-phase observations.
#[derive(Clone, Debug)]
pub struct SwapOutcome {
    /// Index generation now serving (starts at 1, +1 per swap).
    pub generation: u64,
    /// Signatures in the new index.
    pub signatures: usize,
    /// Phase 1 wall-clock (decode + validate).
    pub load: Duration,
    /// Phase 2 wall-clock (re-serialize + compare).
    pub verify: Duration,
    /// Whether every reference to the old index dropped within the
    /// drain timeout.
    pub drained: bool,
    /// Phase 4 wall-clock.
    pub drain: Duration,
}

/// What [`Daemon::process_line`] wants sent back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Blank line or comment — nothing to send.
    Empty,
    /// One response line (no trailing newline).
    Line(String),
    /// A block-framed multi-line response: the first element is the
    /// header (`…\tlines=N\t…`), followed by exactly N payload lines.
    Lines(Vec<String>),
    /// Final response line; the connection/loop should close after
    /// sending it and the daemon should begin shutdown.
    Bye(String),
}

/// Renders the deterministic per-request trace id: fnv1a64 over the
/// big-endian `(conn_id, seq)` pair, as 16 hex digits.
pub fn trace_id_for(conn_id: u64, seq: u64) -> String {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&conn_id.to_be_bytes());
    bytes[8..].copy_from_slice(&seq.to_be_bytes());
    format!("{:016x}", fnv1a64(&bytes))
}

/// Daemon instrument bundle, registered on a shared [`Registry`] (the
/// same exposition as [`crate::ServeMetrics`] when the caller passes its
/// registry in).
#[derive(Clone)]
pub struct DaemonMetrics {
    requests: Arc<Counter>,
    verdict_match: Arc<Counter>,
    verdict_unmatched: Arc<Counter>,
    parse_errors: Arc<Counter>,
    request_latency: Arc<Histogram>,
    swaps: Arc<Counter>,
    swap_failures_load: Arc<Counter>,
    swap_failures_verify: Arc<Counter>,
    drain_timeouts: Arc<Counter>,
    index_load_us: Arc<Histogram>,
    generation: Arc<Gauge>,
    connections: Arc<Counter>,
}

impl DaemonMetrics {
    /// Registers the daemon families on an existing registry.
    pub fn on(registry: &Registry) -> DaemonMetrics {
        let det = Volatility::Deterministic;
        let run = Volatility::PerRun;
        DaemonMetrics {
            requests: registry.counter(
                "serve_daemon_requests_total",
                &[],
                det,
                "Traffic lines classified by the daemon",
            ),
            verdict_match: registry.counter(
                "serve_daemon_verdict_total",
                &[("verdict", "match")],
                det,
                "Daemon verdicts by class",
            ),
            verdict_unmatched: registry.counter(
                "serve_daemon_verdict_total",
                &[("verdict", "unmatched")],
                det,
                "Daemon verdicts by class",
            ),
            parse_errors: registry.counter(
                "serve_daemon_parse_errors_total",
                &[],
                det,
                "Traffic lines the wire-format parser rejected",
            ),
            request_latency: registry.histogram(
                "serve_daemon_request_latency_us",
                &[],
                run,
                "Per-line parse+classify latency in the daemon (us)",
                LATENCY_US_BUCKETS,
            ),
            swaps: registry.counter(
                "serve_daemon_swaps_total",
                &[],
                det,
                "Hot swaps committed (load+verify+swap succeeded)",
            ),
            swap_failures_load: registry.counter(
                "serve_daemon_swap_failures_total",
                &[("phase", "load")],
                det,
                "Hot swaps refused, by failing phase",
            ),
            swap_failures_verify: registry.counter(
                "serve_daemon_swap_failures_total",
                &[("phase", "verify")],
                det,
                "Hot swaps refused, by failing phase",
            ),
            drain_timeouts: registry.counter(
                "serve_daemon_drain_timeouts_total",
                &[],
                run,
                "Committed swaps whose old-index drain timed out",
            ),
            index_load_us: registry.histogram(
                "serve_daemon_index_load_us",
                &[],
                run,
                "Archive decode+validate wall-clock per load (us)",
                LATENCY_US_BUCKETS,
            ),
            generation: registry.gauge(
                "serve_daemon_index_generation",
                &[],
                det,
                "Serving index generation (1 = initial, +1 per swap)",
            ),
            connections: registry.counter(
                "serve_daemon_connections_total",
                &[],
                run,
                "TCP connections accepted",
            ),
        }
    }
}

/// The daemon: an atomically swappable [`SignatureIndex`] behind the
/// line protocol. Share across connection threads via `Arc<Daemon>`.
pub struct Daemon {
    slot: RwLock<Arc<SignatureIndex>>,
    generation: AtomicU64,
    requests: AtomicU64,
    swaps: AtomicU64,
    parse_errors: AtomicU64,
    /// Requests currently between parse and reply.
    inflight: AtomicU64,
    /// Accept-order connection numbering (stdin is 0).
    next_conn_id: AtomicU64,
    /// Per-daemon request sequence for the stdin/`process_line` path.
    stdin_seq: AtomicU64,
    /// Outcome of the most recent swap attempt: `none`, `ok`,
    /// `drain_timeout`, or `refused:<phase>`.
    last_swap: Mutex<String>,
    start: Instant,
    config: DaemonConfig,
    /// The backing registry — render for `--metrics-out` and `METRICS`.
    pub registry: Registry,
    /// Daemon instrument bundle (on `registry`).
    pub metrics: DaemonMetrics,
    /// Span collector; [`TraceCollector::disabled`] unless tracing was
    /// requested.
    pub trace: TraceCollector,
    /// Structured event log; [`EventLog::disabled`] unless `--log-out`
    /// or a live window was requested.
    pub events: EventLog,
    /// Top-K slowest requests, queryable live via `SLOW`.
    pub exemplars: ExemplarStore,
}

impl Daemon {
    /// A daemon serving `index`, with a fresh registry and tracing off.
    pub fn new(index: SignatureIndex, config: DaemonConfig) -> Daemon {
        Daemon::with_instruments(index, config, Registry::new(), TraceCollector::disabled())
    }

    /// A daemon on caller-owned instruments (shared exposition/trace),
    /// with the event log disabled.
    pub fn with_instruments(
        index: SignatureIndex,
        config: DaemonConfig,
        registry: Registry,
        trace: TraceCollector,
    ) -> Daemon {
        Daemon::with_observability(index, config, registry, trace, EventLog::disabled())
    }

    /// A daemon on caller-owned instruments plus a structured event log.
    /// Ring evictions from `events` are mirrored into the registry's
    /// `log_records_dropped_total` counter.
    pub fn with_observability(
        index: SignatureIndex,
        config: DaemonConfig,
        registry: Registry,
        trace: TraceCollector,
        events: EventLog,
    ) -> Daemon {
        let metrics = DaemonMetrics::on(&registry);
        metrics.generation.set(1.0);
        events.set_dropped_counter(registry.counter(
            "log_records_dropped_total",
            &[],
            Volatility::PerRun,
            "Event records evicted from the ring buffer",
        ));
        Daemon {
            slot: RwLock::new(Arc::new(index)),
            generation: AtomicU64::new(1),
            requests: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            next_conn_id: AtomicU64::new(1),
            stdin_seq: AtomicU64::new(0),
            last_swap: Mutex::new("none".to_string()),
            start: Instant::now(),
            config,
            registry,
            metrics,
            trace,
            events,
            exemplars: ExemplarStore::new(DEFAULT_EXEMPLAR_CAPACITY),
        }
    }

    /// The currently serving index. The returned `Arc` pins the index
    /// for the caller's lifetime — a concurrent swap publishes a new one
    /// without invalidating this reference (that's what phase 4 drains).
    pub fn index(&self) -> Arc<SignatureIndex> {
        Arc::clone(&self.slot.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Serving index generation: 1 initially, +1 per committed swap.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Records an index load performed outside the swap path (the
    /// initial archive load at startup) in the load-timing histogram.
    pub fn metrics_index_load(&self, secs: f64) {
        self.metrics.index_load_us.observe(secs * 1e6);
    }

    /// Handles one input line on the daemon-wide (stdin) connection:
    /// traffic, control verb, or garbage. Never panics — malformed input
    /// produces an `error\t…` reply.
    pub fn process_line(&self, line: &str) -> Reply {
        // Sequence numbers are only consumed by traffic lines so control
        // verbs don't perturb the deterministic trace-id series; peek at
        // the verb before allocating one.
        self.process_line_ctx(line, 0, &self.stdin_seq)
    }

    /// Handles one input line in an explicit connection context:
    /// `conn_id` names the connection (0 = stdin), `seq` is that
    /// connection's traffic-line counter (incremented here for every
    /// traffic line, so trace ids are dense and replay-stable).
    pub fn process_line_ctx(&self, line: &str, conn_id: u64, seq: &AtomicU64) -> Reply {
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Reply::Empty;
        }
        let verb = trimmed.split('\t').next().unwrap_or("");
        match verb {
            "PING" => Reply::Line("pong".into()),
            "STATS" => Reply::Line(self.stats_line()),
            "HEALTH" => Reply::Line(self.health_line()),
            "METRICS" => {
                let payload: Vec<String> =
                    self.registry.render().lines().map(str::to_string).collect();
                let mut block = vec![format!("metrics\tlines={}", payload.len())];
                block.extend(payload);
                Reply::Lines(block)
            }
            "SLOW" => {
                let payload: Vec<String> =
                    self.exemplars.render().lines().map(str::to_string).collect();
                let mut block = vec![format!(
                    "slow\tlines={}\texemplars={}",
                    payload.len(),
                    self.exemplars.len()
                )];
                block.extend(payload);
                Reply::Lines(block)
            }
            "SHUTDOWN" => {
                self.events.info("daemon", "shutdown requested").field("conn_id", conn_id).emit();
                Reply::Bye("bye".into())
            }
            "SWAP" => {
                let path = trimmed.strip_prefix("SWAP\t").unwrap_or("");
                if path.is_empty() {
                    return Reply::Line("error\tSWAP needs an archive path".into());
                }
                match self.swap_from_file(path) {
                    Ok(o) => Reply::Line(format!(
                        "swapped\tgeneration={}\tsignatures={}\tload_us={}\tdrained={}",
                        o.generation,
                        o.signatures,
                        o.load.as_micros(),
                        o.drained
                    )),
                    Err(e) => Reply::Line(format!("error\tswap refused: {e}")),
                }
            }
            _ => {
                let seq = seq.fetch_add(1, Ordering::Relaxed) + 1;
                let trace_id = trace_id_for(conn_id, seq);
                Reply::Line(self.classify_line(trimmed, &trace_id))
            }
        }
    }

    /// `STATS` response: generation, index size, lifetime counters, and
    /// the live inflight/uptime picture.
    pub fn stats_line(&self) -> String {
        let index = self.index();
        format!(
            "stats\tgeneration={}\tsignatures={}\trequests={}\tswaps={}\tinflight={}\
             \tparse_errors={}\tuptime_ticks={}",
            self.generation(),
            index.len(),
            self.requests.load(Ordering::Relaxed),
            self.swaps.load(Ordering::Relaxed),
            self.inflight.load(Ordering::Relaxed),
            self.parse_errors.load(Ordering::Relaxed),
            self.start.elapsed().as_secs(),
        )
    }

    /// `HEALTH` response: the liveness/readiness picture in one line.
    pub fn health_line(&self) -> String {
        let index = self.index();
        format!(
            "health\tstatus=ok\tgeneration={}\tsignatures={}\tuptime_ticks={}\tinflight={}\
             \trequests={}\tlast_swap={}",
            self.generation(),
            index.len(),
            self.start.elapsed().as_secs(),
            self.inflight.load(Ordering::Relaxed),
            self.requests.load(Ordering::Relaxed),
            self.last_swap.lock().unwrap_or_else(|e| e.into_inner()),
        )
    }

    fn classify_line(&self, line: &str, trace_id: &str) -> String {
        let t0 = Instant::now();
        self.inflight.fetch_add(1, Ordering::Relaxed);
        let mut span = self.trace.span_in("daemon", "daemon_request");
        span.attr("trace_id", trace_id);
        let req = match parse_request_line(line) {
            Ok(Some(req)) => req,
            Ok(None) => {
                self.inflight.fetch_sub(1, Ordering::Relaxed);
                return "error\tempty request line".into();
            }
            Err(e) => {
                self.metrics.parse_errors.inc();
                self.parse_errors.fetch_add(1, Ordering::Relaxed);
                span.attr("outcome", "parse_error");
                self.events
                    .warn("daemon", "request parse rejected")
                    .trace_id(trace_id)
                    .field("error", e.to_string())
                    .emit();
                self.inflight.fetch_sub(1, Ordering::Relaxed);
                return format!("error\t{e}");
            }
        };
        // Pin the index for this request: a swap committing mid-request
        // cannot pull it out from under us.
        let index = self.index();
        let (verdict, _probe) = index.classify(&req);
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.requests.inc();
        let latency_us = t0.elapsed().as_secs_f64() * 1e6;
        self.metrics.request_latency.observe_with_exemplar(latency_us, trace_id);
        let (reply, verdict_name, detail) = match verdict {
            Verdict::Match(id) => {
                self.metrics.verdict_match.inc();
                span.attr("outcome", "match");
                let sig = index.sig(id);
                (
                    format!("match\t{}\t{}\t{}", sig.app, sig.txn_id, sig.dp_class),
                    "match",
                    format!("{}:{}", sig.app, sig.txn_id),
                )
            }
            Verdict::Unmatched => {
                self.metrics.verdict_unmatched.inc();
                span.attr("outcome", "unmatched");
                ("unmatched".to_string(), "unmatched", String::new())
            }
        };
        self.events
            .debug("daemon", "request classified")
            .trace_id(trace_id)
            .field("verdict", verdict_name)
            .field("latency_us", latency_us.round() as u64)
            .emit();
        // The synthetic span record mirrors the request span so a SLOW
        // dump is self-contained even when tracing is off.
        let latency_ns = (latency_us * 1e3).round() as u64;
        self.exemplars.offer(Exemplar {
            trace_id: trace_id.to_string(),
            latency_us: latency_us.round() as u64,
            verdict: verdict_name.to_string(),
            detail,
            spans: vec![SpanRecord {
                name: "daemon_request".into(),
                cat: "daemon".into(),
                start_ns: 0,
                end_ns: latency_ns,
                self_ns: latency_ns,
                tid: 0,
                depth: 0,
                stack: "daemon_request".into(),
                attrs: vec![("trace_id".into(), trace_id.into())],
            }],
        });
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        reply
    }

    /// Hot-swaps to the archive at `path` (phases: load → verify →
    /// swap → drain; see the module docs).
    pub fn swap_from_file(&self, path: &str) -> Result<SwapOutcome, SwapError> {
        let bytes = std::fs::read(path).map_err(|e| {
            self.set_last_swap("refused:load");
            self.events
                .error("daemon", "swap refused: archive unreadable")
                .field("path", path)
                .field("error", e.to_string())
                .emit();
            SwapError::Load(ArchiveError::Io(format!("{path}: {e}")))
        })?;
        self.swap_archive_bytes(&bytes)
    }

    fn set_last_swap(&self, outcome: &str) {
        *self.last_swap.lock().unwrap_or_else(|e| e.into_inner()) = outcome.to_string();
    }

    /// Hot-swaps to an in-memory archive.
    pub fn swap_archive_bytes(&self, bytes: &[u8]) -> Result<SwapOutcome, SwapError> {
        let mut span = self.trace.span_in("daemon", "index_swap");
        self.events.info("daemon", "swap started").field("archive_bytes", bytes.len()).emit();

        // Phase 1: Load — decode and structurally validate.
        let t_load = Instant::now();
        let new_index = read_archive(bytes).map_err(|e| {
            self.metrics.swap_failures_load.inc();
            span.attr("phase_failed", "load");
            self.set_last_swap("refused:load");
            self.events
                .error("daemon", "swap refused in load phase")
                .field("error", e.to_string())
                .emit();
            SwapError::Load(e)
        })?;
        let load = t_load.elapsed();
        self.metrics.index_load_us.observe(load.as_secs_f64() * 1e6);
        self.events
            .debug("daemon", "swap phase: load ok")
            .field("load_us", load.as_micros() as u64)
            .field("signatures", new_index.len())
            .emit();

        // Phase 2: Verify — deterministic re-serialization must
        // reproduce the input byte-for-byte, proving decode lossless.
        let t_verify = Instant::now();
        if write_archive(&new_index) != bytes {
            self.metrics.swap_failures_verify.inc();
            span.attr("phase_failed", "verify");
            self.set_last_swap("refused:verify");
            self.events.error("daemon", "swap refused in verify phase").emit();
            return Err(SwapError::Verify(
                "re-serialized index differs from the input archive".into(),
            ));
        }
        let verify = t_verify.elapsed();
        self.events
            .debug("daemon", "swap phase: verify ok")
            .field("verify_us", verify.as_micros() as u64)
            .emit();

        // Phase 3: Swap — publish atomically.
        let signatures = new_index.len();
        let old = {
            let mut slot = self.slot.write().unwrap_or_else(|e| e.into_inner());
            std::mem::replace(&mut *slot, Arc::new(new_index))
        };
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.metrics.swaps.inc();
        self.metrics.generation.set(generation as f64);

        // Phase 4: Drain — wait for in-flight requests still holding the
        // old index. `old` itself is one reference; anything beyond that
        // is a request pinned via `Daemon::index`.
        let t_drain = Instant::now();
        let mut drained = true;
        while Arc::strong_count(&old) > 1 {
            if t_drain.elapsed() > self.config.drain_timeout {
                drained = false;
                self.metrics.drain_timeouts.inc();
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let drain = t_drain.elapsed();
        span.attr("generation", generation)
            .attr("signatures", signatures as u64)
            .attr("load_us", load.as_micros() as u64)
            .attr("drained", drained);
        self.set_last_swap(if drained { "ok" } else { "drain_timeout" });
        self.events
            .info("daemon", "swap committed")
            .field("generation", generation)
            .field("signatures", signatures)
            .field("drained", drained)
            .field("drain_us", drain.as_micros() as u64)
            .emit();
        Ok(SwapOutcome { generation, signatures, load, verify, drained, drain })
    }

    /// Runs the line protocol over arbitrary reader/writer pairs (stdin
    /// mode; also the unit-test harness). Returns when the input ends or
    /// a `SHUTDOWN` arrives.
    pub fn run_lines<R: BufRead, W: Write>(&self, reader: R, mut writer: W) -> io::Result<()> {
        for line in reader.lines() {
            match self.process_line(&line?) {
                Reply::Empty => {}
                Reply::Line(r) => {
                    writeln!(writer, "{r}")?;
                    writer.flush()?;
                }
                Reply::Lines(block) => {
                    for r in block {
                        writeln!(writer, "{r}")?;
                    }
                    writer.flush()?;
                }
                Reply::Bye(r) => {
                    writeln!(writer, "{r}")?;
                    writer.flush()?;
                    break;
                }
            }
        }
        Ok(())
    }

    /// TCP mode: non-blocking accept loop, one thread per connection.
    /// A `SHUTDOWN` on any connection flips the shared flag; the accept
    /// loop stops, and every connection thread is joined before this
    /// returns — in-flight requests finish and their responses are
    /// written (the graceful drain the smoke gate asserts).
    pub fn serve_tcp(self: &Arc<Daemon>, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.metrics.connections.inc();
                    let daemon = Arc::clone(self);
                    let flag = Arc::clone(&shutdown);
                    handles.push(std::thread::spawn(move || {
                        daemon.handle_conn(stream, &flag);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(self.config.accept_poll);
                }
                Err(e) => return Err(e),
            }
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    }

    fn handle_conn(&self, stream: TcpStream, shutdown: &AtomicBool) {
        let conn_id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        self.events.debug("daemon", "connection accepted").field("conn_id", conn_id).emit();
        let seq = AtomicU64::new(0);
        if stream.set_read_timeout(Some(self.config.read_poll)).is_err() {
            return;
        }
        let Ok(read_half) = stream.try_clone() else { return };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        let mut line = String::new();
        loop {
            // `line` is only cleared after a full line is handled: a read
            // timeout mid-line leaves the partial bytes in place and the
            // next read appends the remainder.
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    let reply = self.process_line_ctx(&line, conn_id, &seq);
                    line.clear();
                    match reply {
                        Reply::Empty => {}
                        Reply::Line(r) => {
                            if writeln!(writer, "{r}").and_then(|_| writer.flush()).is_err() {
                                break;
                            }
                        }
                        Reply::Lines(block) => {
                            let write_block = |w: &mut BufWriter<TcpStream>| -> io::Result<()> {
                                for r in &block {
                                    writeln!(w, "{r}")?;
                                }
                                w.flush()
                            };
                            if write_block(&mut writer).is_err() {
                                break;
                            }
                        }
                        Reply::Bye(r) => {
                            let _ = writeln!(writer, "{r}").and_then(|_| writer.flush());
                            shutdown.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        self.events
            .debug("daemon", "connection closed")
            .field("conn_id", conn_id)
            .field("requests", seq.load(Ordering::Relaxed))
            .emit();
    }
}

/// True when `header` is a block-frame header (`…\tlines=N\t…`);
/// returns N.
fn block_line_count(header: &str) -> Option<usize> {
    header.split('\t').nth(1).and_then(|f| f.strip_prefix("lines=")).and_then(|n| n.parse().ok())
}

/// Line-protocol client used by the CI smoke gate (`extractocol-serve
/// send`): streams `input` to the daemon at `addr`, returning one
/// response per non-empty request line. Fails loudly if the daemon
/// drops a response — the zero-dropped-requests assertion.
pub fn send_lines(addr: &str, input: &str) -> io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut responses = Vec::new();
    for line in input.lines() {
        let trimmed = line.trim_end_matches('\r');
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        writeln!(writer, "{trimmed}")?;
        writer.flush()?;
        let mut resp = String::new();
        if reader.read_line(&mut resp)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("daemon closed before answering: {trimmed:?}"),
            ));
        }
        let mut response = resp.trim_end_matches(['\r', '\n']).to_string();
        // Block-framed reply: the header's `lines=N` field announces N
        // payload lines, folded into this one logical response so the
        // response-per-request contract holds for METRICS/SLOW too.
        if let Some(n) = block_line_count(&response) {
            for _ in 0..n {
                let mut payload = String::new();
                if reader.read_line(&mut payload)? == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("daemon closed mid-block: {trimmed:?}"),
                    ));
                }
                response.push('\n');
                response.push_str(payload.trim_end_matches(['\r', '\n']));
            }
        }
        responses.push(response);
    }
    Ok(responses)
}

/// One-shot introspection client: sends a single control verb
/// (`METRICS`, `HEALTH`, `SLOW`, `STATS`, …) and returns the reply
/// payload — for block-framed replies the payload lines *without* the
/// frame header, for single-line replies the line itself. Used by
/// `extractocol-serve scrape` and the CI mid-run gate.
pub fn scrape(addr: &str, verb: &str) -> io::Result<String> {
    let responses = send_lines(addr, &format!("{verb}\n"))?;
    let response = responses.into_iter().next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, format!("no reply to {verb:?}"))
    })?;
    match response.split_once('\n') {
        Some((_header, payload)) => Ok(format!("{payload}\n")),
        None if block_line_count(&response).is_some() => Ok(String::new()),
        None => Ok(format!("{response}\n")),
    }
}

/// Collects every response a concurrent writer produced — helper for
/// tests that drive [`Daemon::run_lines`] over an in-memory pipe.
#[derive(Clone, Default)]
pub struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    /// The UTF-8 contents written so far.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap_or_else(|e| e.into_inner())).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::write_archive;
    use extractocol_core::metrics::Metrics;
    use extractocol_core::pairing::Pairing;
    use extractocol_core::report::{AnalysisReport, Stats, TxnReport};
    use extractocol_core::siglang::{SigPat, TypeHint};
    use extractocol_http::HttpMethod;

    fn report(app: &str, uris: &[&str]) -> AnalysisReport {
        let transactions = uris
            .iter()
            .enumerate()
            .map(|(id, uri)| TxnReport {
                id,
                dp_class: "java.net.HttpURLConnection".into(),
                root: format!("t.C.m{id}"),
                method: HttpMethod::Get,
                uri_regex: String::new(),
                uri: SigPat::Concat(vec![SigPat::lit(uri), SigPat::Unknown(TypeHint::Num)]),
                headers: Vec::new(),
                header_sigs: Vec::new(),
                request_body: None,
                response: None,
                pairing: Pairing::Unique,
                origins: Vec::new(),
                consumptions: Vec::new(),
            })
            .collect();
        AnalysisReport {
            app: app.into(),
            transactions,
            dependencies: Vec::new(),
            stats: Stats::default(),
            metrics: Metrics::default(),
        }
    }

    fn daemon(uris: &[&str]) -> Daemon {
        let index = SignatureIndex::compile(&[report("demo", uris)]);
        Daemon::new(index, DaemonConfig::default())
    }

    #[test]
    fn traffic_lines_classify_and_controls_answer() {
        let d = daemon(&["http://h/api/a/", "http://h/api/b/"]);
        assert_eq!(
            d.process_line("GET\thttp://h/api/a/7"),
            Reply::Line("match\tdemo\t0\tjava.net.HttpURLConnection".into())
        );
        assert_eq!(d.process_line("GET\thttp://h/other"), Reply::Line("unmatched".into()));
        assert_eq!(d.process_line("PING"), Reply::Line("pong".into()));
        assert_eq!(d.process_line("# comment"), Reply::Empty);
        assert_eq!(d.process_line(""), Reply::Empty);
        assert_eq!(d.process_line("SHUTDOWN"), Reply::Bye("bye".into()));
        let stats = match d.process_line("STATS") {
            Reply::Line(s) => s,
            other => panic!("unexpected: {other:?}"),
        };
        assert!(stats.contains("generation=1"), "{stats}");
        assert!(stats.contains("signatures=2"), "{stats}");
        assert!(stats.contains("requests=2"), "{stats}");
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        assert_eq!(trace_id_for(1, 1), trace_id_for(1, 1));
        assert_ne!(trace_id_for(1, 1), trace_id_for(1, 2));
        assert_ne!(trace_id_for(1, 1), trace_id_for(2, 1));
        assert_eq!(trace_id_for(0, 1).len(), 16);
        assert!(trace_id_for(0, 1).chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn metrics_verb_returns_a_block_framed_exposition() {
        let d = daemon(&["http://h/api/a/"]);
        d.process_line("GET\thttp://h/api/a/1");
        let block = match d.process_line("METRICS") {
            Reply::Lines(b) => b,
            other => panic!("unexpected: {other:?}"),
        };
        let n: usize = block[0]
            .strip_prefix("metrics\tlines=")
            .expect("frame header")
            .parse()
            .expect("line count");
        assert_eq!(block.len(), n + 1, "header announces the payload length");
        let payload = block[1..].join("\n");
        assert!(payload.contains("serve_daemon_requests_total 1"), "{payload}");
        assert!(payload.contains("# VOLATILITY serve_daemon_requests_total"), "{payload}");
    }

    #[test]
    fn health_verb_reports_generation_inflight_and_last_swap() {
        let d = daemon(&["http://h/api/a/"]);
        d.process_line("GET\thttp://h/api/a/1");
        let health = match d.process_line("HEALTH") {
            Reply::Line(h) => h,
            other => panic!("unexpected: {other:?}"),
        };
        assert!(health.starts_with("health\tstatus=ok\tgeneration=1"), "{health}");
        assert!(health.contains("signatures=1"), "{health}");
        assert!(health.contains("inflight=0"), "{health}");
        assert!(health.contains("requests=1"), "{health}");
        assert!(health.contains("last_swap=none"), "{health}");
        let new_index = SignatureIndex::compile(&[report("demo2", &["http://h/api/b/"])]);
        d.swap_archive_bytes(&write_archive(&new_index)).expect("swap");
        let health = match d.process_line("HEALTH") {
            Reply::Line(h) => h,
            other => panic!("unexpected: {other:?}"),
        };
        assert!(health.contains("generation=2"), "{health}");
        assert!(health.contains("last_swap=ok"), "{health}");
    }

    #[test]
    fn slow_verb_dumps_trace_stitched_exemplars() {
        let d = daemon(&["http://h/api/a/"]);
        d.process_line("GET\thttp://h/api/a/1");
        d.process_line("GET\thttp://h/zzz");
        let block = match d.process_line("SLOW") {
            Reply::Lines(b) => b,
            other => panic!("unexpected: {other:?}"),
        };
        assert!(block[0].starts_with("slow\tlines="), "{}", block[0]);
        assert!(block[0].ends_with("exemplars=2"), "{}", block[0]);
        let payload = block[1..].join("\n");
        // Exemplar trace ids are the deterministic stdin-connection ids.
        assert!(payload.contains(&format!("trace_id={}", trace_id_for(0, 1))), "{payload}");
        assert!(payload.contains(&format!("trace_id={}", trace_id_for(0, 2))), "{payload}");
        assert!(payload.contains("verdict=match detail=demo:0"), "{payload}");
        assert!(payload.contains("verdict=unmatched"), "{payload}");
        assert!(payload.contains("  span name=daemon_request"), "{payload}");
    }

    #[test]
    fn stats_line_carries_inflight_parse_errors_and_uptime() {
        let d = daemon(&["http://h/api/a/"]);
        d.process_line("GET");
        let stats = match d.process_line("STATS") {
            Reply::Line(s) => s,
            other => panic!("unexpected: {other:?}"),
        };
        assert!(stats.contains("inflight=0"), "{stats}");
        assert!(stats.contains("parse_errors=1"), "{stats}");
        assert!(stats.contains("uptime_ticks="), "{stats}");
    }

    #[test]
    fn events_record_swaps_and_parse_errors_with_trace_ids() {
        let index = SignatureIndex::compile(&[report("demo", &["http://h/api/a/"])]);
        let events = EventLog::enabled(extractocol_obs::Level::Debug);
        let d = Daemon::with_observability(
            index,
            DaemonConfig::default(),
            Registry::new(),
            TraceCollector::disabled(),
            events,
        );
        d.process_line("GET\thttp://h/api/a/1");
        d.process_line("GET"); // parse error
        let new_index = SignatureIndex::compile(&[report("demo2", &["http://h/api/b/"])]);
        d.swap_archive_bytes(&write_archive(&new_index)).expect("swap");
        let log = d.events.render_lines();
        assert!(log.contains("msg=\"request classified\""), "{log}");
        assert!(log.contains(&format!("trace_id={}", trace_id_for(0, 1))), "{log}");
        assert!(log.contains("msg=\"request parse rejected\""), "{log}");
        assert!(log.contains("msg=\"swap committed\" generation=2"), "{log}");
        // Event-log evictions are mirrored into the shared registry.
        assert!(d.registry.render().contains("log_records_dropped_total 0"), "{log}");
    }

    #[test]
    fn malformed_lines_get_error_replies_not_panics() {
        let d = daemon(&["http://h/api/"]);
        for bad in ["BOGUS\thttp://h/x", "GET", "SWAP", "GET\thttp://h/x\ttext/plain"] {
            match d.process_line(bad) {
                Reply::Line(r) => assert!(r.starts_with("error\t"), "{bad:?} -> {r}"),
                other => panic!("{bad:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn swap_replaces_the_index_and_bumps_the_generation() {
        let d = daemon(&["http://h/api/old/"]);
        assert_eq!(
            d.process_line("GET\thttp://h/api/old/1"),
            Reply::Line("match\tdemo\t0\tjava.net.HttpURLConnection".into())
        );
        let new_index = SignatureIndex::compile(&[report("demo2", &["http://h/api/new/"])]);
        let outcome = d.swap_archive_bytes(&write_archive(&new_index)).expect("swap");
        assert_eq!(outcome.generation, 2);
        assert_eq!(outcome.signatures, 1);
        assert!(outcome.drained);
        assert_eq!(d.generation(), 2);
        assert_eq!(d.process_line("GET\thttp://h/api/old/1"), Reply::Line("unmatched".into()));
        assert_eq!(
            d.process_line("GET\thttp://h/api/new/1"),
            Reply::Line("match\tdemo2\t0\tjava.net.HttpURLConnection".into())
        );
        let text = d.registry.render();
        assert!(text.contains("serve_daemon_swaps_total 1"));
        assert!(text.contains("serve_daemon_index_generation 2"));
        assert!(text.contains("serve_daemon_index_load_us_count 1"));
    }

    #[test]
    fn corrupt_archive_is_refused_and_the_old_index_keeps_serving() {
        let d = daemon(&["http://h/api/old/"]);
        let new_index = SignatureIndex::compile(&[report("demo2", &["http://h/api/new/"])]);
        let mut bytes = write_archive(&new_index);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        match d.swap_archive_bytes(&bytes) {
            Err(SwapError::Load(ArchiveError::ChecksumMismatch { .. })) => {}
            other => panic!("expected load failure, got {other:?}"),
        }
        assert_eq!(d.generation(), 1);
        assert_eq!(
            d.process_line("GET\thttp://h/api/old/1"),
            Reply::Line("match\tdemo\t0\tjava.net.HttpURLConnection".into())
        );
        assert!(d.registry.render().contains("serve_daemon_swap_failures_total{phase=\"load\"} 1"));
    }

    #[test]
    fn swap_drain_waits_for_pinned_readers() {
        let d = Arc::new(daemon(&["http://h/api/old/"]));
        let pinned = d.index();
        let new_index = SignatureIndex::compile(&[report("demo2", &["http://h/api/new/"])]);
        let bytes = write_archive(&new_index);
        let swapper = {
            let d = Arc::clone(&d);
            std::thread::spawn(move || d.swap_archive_bytes(&bytes).expect("swap"))
        };
        // Give the swap time to reach the drain phase, then release the
        // pin; the swap must complete with drained=true.
        std::thread::sleep(Duration::from_millis(50));
        drop(pinned);
        let outcome = swapper.join().expect("join");
        assert!(outcome.drained);
        assert!(outcome.drain >= Duration::from_millis(25), "drain was {:?}", outcome.drain);
    }

    #[test]
    fn run_lines_answers_every_request_and_stops_on_shutdown() {
        let d = daemon(&["http://h/api/a/"]);
        let input =
            "GET\thttp://h/api/a/1\n# note\n\nGET\thttp://h/zzz\nSHUTDOWN\nGET\thttp://h/api/a/2\n";
        let out = SharedBuf::default();
        d.run_lines(io::Cursor::new(input), out.clone()).expect("run");
        let contents = out.contents();
        let lines: Vec<&str> = contents.lines().collect();
        // One response per non-empty line up to SHUTDOWN; nothing after.
        assert_eq!(lines, vec!["match\tdemo\t0\tjava.net.HttpURLConnection", "unmatched", "bye"]);
    }

    #[test]
    fn tcp_roundtrip_with_hot_swap_and_graceful_drain() {
        let index = SignatureIndex::compile(&[report("demo", &["http://h/api/a/"])]);
        let d = Arc::new(Daemon::new(index, DaemonConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = {
            let d = Arc::clone(&d);
            std::thread::spawn(move || d.serve_tcp(listener).expect("serve"))
        };
        let new_index = SignatureIndex::compile(&[report("demo2", &["http://h/api/b/"])]);
        let archive = tempfile_path("daemon_swap_test.exsv");
        crate::archive::write_archive_file(&new_index, &archive).expect("write archive");
        let input = format!(
            "GET\thttp://h/api/a/1\nSWAP\t{archive}\nGET\thttp://h/api/b/2\nSTATS\nSHUTDOWN\n"
        );
        let responses = send_lines(&addr, &input).expect("send");
        assert_eq!(responses.len(), 5, "zero dropped requests: {responses:?}");
        assert_eq!(responses[0], "match\tdemo\t0\tjava.net.HttpURLConnection");
        assert!(responses[1].starts_with("swapped\tgeneration=2"), "{}", responses[1]);
        assert_eq!(responses[2], "match\tdemo2\t0\tjava.net.HttpURLConnection");
        assert!(responses[3].contains("swaps=1"), "{}", responses[3]);
        assert_eq!(responses[4], "bye");
        server.join().expect("server thread");
        let _ = std::fs::remove_file(&archive);
        let text = d.registry.render();
        assert!(text.contains("serve_daemon_connections_total 1"));
        assert!(text.contains("serve_daemon_swaps_total 1"));
    }

    fn tempfile_path(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }
}
