//! The long-running classifier: `extractocol-serve daemon`.
//!
//! Speaks the existing line-based traffic wire format
//! ([`extractocol_dynamic::parse_request_line`]) over stdin/stdout or
//! TCP, one response line per input line. A handful of control verbs —
//! none of which collide with an HTTP method, so the grammar stays
//! unambiguous — drive the daemon itself:
//!
//! ```text
//! GET\t<uri>[\t<mime>\t<body>]   → match\t<app>\t<txn>\t<dp_class> | unmatched
//! PING                           → pong
//! STATS                          → stats\tgeneration=…\tsignatures=…\trequests=…\tswaps=…
//! SWAP\t<archive-path>           → swapped\tgeneration=…\tsignatures=…\tload_us=…\tdrained=…
//! SHUTDOWN                       → bye            (then graceful drain + exit)
//! anything malformed             → error\t<reason>
//! ```
//!
//! # Hot swap
//!
//! [`Daemon::swap_from_file`] replaces the serving index with a newly
//! compiled archive through a four-phase state machine:
//!
//! 1. **Load** — decode + structurally validate the archive
//!    ([`read_archive`]); any [`ArchiveError`] aborts the swap with the
//!    old index untouched.
//! 2. **Verify** — re-serialize the loaded index and require the bytes
//!    to equal the input archive. Deterministic serialization makes this
//!    a strong losslessness check: it fails iff decode dropped or
//!    reordered anything.
//! 3. **Swap** — atomically publish the new index
//!    (`RwLock<Arc<SignatureIndex>>` slot; in-flight requests keep their
//!    own `Arc` clone, so they finish on the index they started on).
//! 4. **Drain** — wait for the old index's outstanding `Arc` clones to
//!    drop. The swap is already committed here, so a drain timeout is
//!    reported in the outcome (and a metric), not an error.
//!
//! Failures in phases 1–2 are typed [`SwapError`]s and leave the old
//! index serving; the daemon never serves a partially-loaded index.

use crate::archive::{read_archive, write_archive, ArchiveError};
use crate::index::{SignatureIndex, Verdict};
use extractocol_dynamic::parse_request_line;
use extractocol_obs::metrics::LATENCY_US_BUCKETS;
use extractocol_obs::{Counter, Gauge, Histogram, Registry, TraceCollector, Volatility};
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Daemon tunables. Defaults suit both the CI smoke gate and tests.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// How long phase 4 waits for the old index's references to drop
    /// before declaring the drain timed out.
    pub drain_timeout: Duration,
    /// Accept-loop poll interval (the TCP listener is non-blocking so
    /// shutdown is observed promptly).
    pub accept_poll: Duration,
    /// Per-connection read timeout; connections poll the shutdown flag
    /// at this cadence.
    pub read_poll: Duration,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            drain_timeout: Duration::from_secs(5),
            accept_poll: Duration::from_millis(10),
            read_poll: Duration::from_millis(100),
        }
    }
}

/// Why a hot swap was refused. Both variants fire *before* the swap
/// phase, so the previously serving index is untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SwapError {
    /// Phase 1: the archive failed to decode or validate.
    Load(ArchiveError),
    /// Phase 2: the loaded index did not re-serialize to the input
    /// bytes — decode was lossy, so the archive cannot be trusted.
    Verify(String),
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::Load(e) => write!(f, "load: {e}"),
            SwapError::Verify(msg) => write!(f, "verify: {msg}"),
        }
    }
}

impl std::error::Error for SwapError {}

/// A committed hot swap, with per-phase observations.
#[derive(Clone, Debug)]
pub struct SwapOutcome {
    /// Index generation now serving (starts at 1, +1 per swap).
    pub generation: u64,
    /// Signatures in the new index.
    pub signatures: usize,
    /// Phase 1 wall-clock (decode + validate).
    pub load: Duration,
    /// Phase 2 wall-clock (re-serialize + compare).
    pub verify: Duration,
    /// Whether every reference to the old index dropped within the
    /// drain timeout.
    pub drained: bool,
    /// Phase 4 wall-clock.
    pub drain: Duration,
}

/// What [`Daemon::process_line`] wants sent back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Blank line or comment — nothing to send.
    Empty,
    /// One response line (no trailing newline).
    Line(String),
    /// Final response line; the connection/loop should close after
    /// sending it and the daemon should begin shutdown.
    Bye(String),
}

/// Daemon instrument bundle, registered on a shared [`Registry`] (the
/// same exposition as [`crate::ServeMetrics`] when the caller passes its
/// registry in).
#[derive(Clone)]
pub struct DaemonMetrics {
    requests: Arc<Counter>,
    verdict_match: Arc<Counter>,
    verdict_unmatched: Arc<Counter>,
    parse_errors: Arc<Counter>,
    request_latency: Arc<Histogram>,
    swaps: Arc<Counter>,
    swap_failures_load: Arc<Counter>,
    swap_failures_verify: Arc<Counter>,
    drain_timeouts: Arc<Counter>,
    index_load_us: Arc<Histogram>,
    generation: Arc<Gauge>,
    connections: Arc<Counter>,
}

impl DaemonMetrics {
    /// Registers the daemon families on an existing registry.
    pub fn on(registry: &Registry) -> DaemonMetrics {
        let det = Volatility::Deterministic;
        let run = Volatility::PerRun;
        DaemonMetrics {
            requests: registry.counter(
                "serve_daemon_requests_total",
                &[],
                det,
                "Traffic lines classified by the daemon",
            ),
            verdict_match: registry.counter(
                "serve_daemon_verdict_total",
                &[("verdict", "match")],
                det,
                "Daemon verdicts by class",
            ),
            verdict_unmatched: registry.counter(
                "serve_daemon_verdict_total",
                &[("verdict", "unmatched")],
                det,
                "Daemon verdicts by class",
            ),
            parse_errors: registry.counter(
                "serve_daemon_parse_errors_total",
                &[],
                det,
                "Traffic lines the wire-format parser rejected",
            ),
            request_latency: registry.histogram(
                "serve_daemon_request_latency_us",
                &[],
                run,
                "Per-line parse+classify latency in the daemon (us)",
                LATENCY_US_BUCKETS,
            ),
            swaps: registry.counter(
                "serve_daemon_swaps_total",
                &[],
                det,
                "Hot swaps committed (load+verify+swap succeeded)",
            ),
            swap_failures_load: registry.counter(
                "serve_daemon_swap_failures_total",
                &[("phase", "load")],
                det,
                "Hot swaps refused, by failing phase",
            ),
            swap_failures_verify: registry.counter(
                "serve_daemon_swap_failures_total",
                &[("phase", "verify")],
                det,
                "Hot swaps refused, by failing phase",
            ),
            drain_timeouts: registry.counter(
                "serve_daemon_drain_timeouts_total",
                &[],
                run,
                "Committed swaps whose old-index drain timed out",
            ),
            index_load_us: registry.histogram(
                "serve_daemon_index_load_us",
                &[],
                run,
                "Archive decode+validate wall-clock per load (us)",
                LATENCY_US_BUCKETS,
            ),
            generation: registry.gauge(
                "serve_daemon_index_generation",
                &[],
                det,
                "Serving index generation (1 = initial, +1 per swap)",
            ),
            connections: registry.counter(
                "serve_daemon_connections_total",
                &[],
                run,
                "TCP connections accepted",
            ),
        }
    }
}

/// The daemon: an atomically swappable [`SignatureIndex`] behind the
/// line protocol. Share across connection threads via `Arc<Daemon>`.
pub struct Daemon {
    slot: RwLock<Arc<SignatureIndex>>,
    generation: AtomicU64,
    requests: AtomicU64,
    swaps: AtomicU64,
    config: DaemonConfig,
    /// The backing registry — render for `--metrics-out`.
    pub registry: Registry,
    /// Daemon instrument bundle (on `registry`).
    pub metrics: DaemonMetrics,
    /// Span collector; [`TraceCollector::disabled`] unless tracing was
    /// requested.
    pub trace: TraceCollector,
}

impl Daemon {
    /// A daemon serving `index`, with a fresh registry and tracing off.
    pub fn new(index: SignatureIndex, config: DaemonConfig) -> Daemon {
        Daemon::with_instruments(index, config, Registry::new(), TraceCollector::disabled())
    }

    /// A daemon on caller-owned instruments (shared exposition/trace).
    pub fn with_instruments(
        index: SignatureIndex,
        config: DaemonConfig,
        registry: Registry,
        trace: TraceCollector,
    ) -> Daemon {
        let metrics = DaemonMetrics::on(&registry);
        metrics.generation.set(1.0);
        Daemon {
            slot: RwLock::new(Arc::new(index)),
            generation: AtomicU64::new(1),
            requests: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            config,
            registry,
            metrics,
            trace,
        }
    }

    /// The currently serving index. The returned `Arc` pins the index
    /// for the caller's lifetime — a concurrent swap publishes a new one
    /// without invalidating this reference (that's what phase 4 drains).
    pub fn index(&self) -> Arc<SignatureIndex> {
        Arc::clone(&self.slot.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Serving index generation: 1 initially, +1 per committed swap.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Records an index load performed outside the swap path (the
    /// initial archive load at startup) in the load-timing histogram.
    pub fn metrics_index_load(&self, secs: f64) {
        self.metrics.index_load_us.observe(secs * 1e6);
    }

    /// Handles one input line: traffic, control verb, or garbage. Never
    /// panics — malformed input produces an `error\t…` reply.
    pub fn process_line(&self, line: &str) -> Reply {
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Reply::Empty;
        }
        let verb = trimmed.split('\t').next().unwrap_or("");
        match verb {
            "PING" => Reply::Line("pong".into()),
            "STATS" => Reply::Line(self.stats_line()),
            "SHUTDOWN" => Reply::Bye("bye".into()),
            "SWAP" => {
                let path = trimmed.strip_prefix("SWAP\t").unwrap_or("");
                if path.is_empty() {
                    return Reply::Line("error\tSWAP needs an archive path".into());
                }
                match self.swap_from_file(path) {
                    Ok(o) => Reply::Line(format!(
                        "swapped\tgeneration={}\tsignatures={}\tload_us={}\tdrained={}",
                        o.generation,
                        o.signatures,
                        o.load.as_micros(),
                        o.drained
                    )),
                    Err(e) => Reply::Line(format!("error\tswap refused: {e}")),
                }
            }
            _ => Reply::Line(self.classify_line(trimmed)),
        }
    }

    /// `STATS` response: generation, index size, and lifetime counters.
    pub fn stats_line(&self) -> String {
        let index = self.index();
        format!(
            "stats\tgeneration={}\tsignatures={}\trequests={}\tswaps={}",
            self.generation(),
            index.len(),
            self.requests.load(Ordering::Relaxed),
            self.swaps.load(Ordering::Relaxed),
        )
    }

    fn classify_line(&self, line: &str) -> String {
        let t0 = Instant::now();
        let mut span = self.trace.span_in("daemon", "daemon_request");
        let req = match parse_request_line(line) {
            Ok(Some(req)) => req,
            Ok(None) => return "error\tempty request line".into(),
            Err(e) => {
                self.metrics.parse_errors.inc();
                span.attr("outcome", "parse_error");
                return format!("error\t{e}");
            }
        };
        // Pin the index for this request: a swap committing mid-request
        // cannot pull it out from under us.
        let index = self.index();
        let (verdict, _probe) = index.classify(&req);
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.requests.inc();
        self.metrics.request_latency.observe(t0.elapsed().as_secs_f64() * 1e6);
        match verdict {
            Verdict::Match(id) => {
                self.metrics.verdict_match.inc();
                span.attr("outcome", "match");
                let sig = index.sig(id);
                format!("match\t{}\t{}\t{}", sig.app, sig.txn_id, sig.dp_class)
            }
            Verdict::Unmatched => {
                self.metrics.verdict_unmatched.inc();
                span.attr("outcome", "unmatched");
                "unmatched".into()
            }
        }
    }

    /// Hot-swaps to the archive at `path` (phases: load → verify →
    /// swap → drain; see the module docs).
    pub fn swap_from_file(&self, path: &str) -> Result<SwapOutcome, SwapError> {
        let bytes = std::fs::read(path)
            .map_err(|e| SwapError::Load(ArchiveError::Io(format!("{path}: {e}"))))?;
        self.swap_archive_bytes(&bytes)
    }

    /// Hot-swaps to an in-memory archive.
    pub fn swap_archive_bytes(&self, bytes: &[u8]) -> Result<SwapOutcome, SwapError> {
        let mut span = self.trace.span_in("daemon", "index_swap");

        // Phase 1: Load — decode and structurally validate.
        let t_load = Instant::now();
        let new_index = read_archive(bytes).map_err(|e| {
            self.metrics.swap_failures_load.inc();
            span.attr("phase_failed", "load");
            SwapError::Load(e)
        })?;
        let load = t_load.elapsed();
        self.metrics.index_load_us.observe(load.as_secs_f64() * 1e6);

        // Phase 2: Verify — deterministic re-serialization must
        // reproduce the input byte-for-byte, proving decode lossless.
        let t_verify = Instant::now();
        if write_archive(&new_index) != bytes {
            self.metrics.swap_failures_verify.inc();
            span.attr("phase_failed", "verify");
            return Err(SwapError::Verify(
                "re-serialized index differs from the input archive".into(),
            ));
        }
        let verify = t_verify.elapsed();

        // Phase 3: Swap — publish atomically.
        let signatures = new_index.len();
        let old = {
            let mut slot = self.slot.write().unwrap_or_else(|e| e.into_inner());
            std::mem::replace(&mut *slot, Arc::new(new_index))
        };
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.metrics.swaps.inc();
        self.metrics.generation.set(generation as f64);

        // Phase 4: Drain — wait for in-flight requests still holding the
        // old index. `old` itself is one reference; anything beyond that
        // is a request pinned via `Daemon::index`.
        let t_drain = Instant::now();
        let mut drained = true;
        while Arc::strong_count(&old) > 1 {
            if t_drain.elapsed() > self.config.drain_timeout {
                drained = false;
                self.metrics.drain_timeouts.inc();
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let drain = t_drain.elapsed();
        span.attr("generation", generation)
            .attr("signatures", signatures as u64)
            .attr("load_us", load.as_micros() as u64)
            .attr("drained", drained);
        Ok(SwapOutcome { generation, signatures, load, verify, drained, drain })
    }

    /// Runs the line protocol over arbitrary reader/writer pairs (stdin
    /// mode; also the unit-test harness). Returns when the input ends or
    /// a `SHUTDOWN` arrives.
    pub fn run_lines<R: BufRead, W: Write>(&self, reader: R, mut writer: W) -> io::Result<()> {
        for line in reader.lines() {
            match self.process_line(&line?) {
                Reply::Empty => {}
                Reply::Line(r) => {
                    writeln!(writer, "{r}")?;
                    writer.flush()?;
                }
                Reply::Bye(r) => {
                    writeln!(writer, "{r}")?;
                    writer.flush()?;
                    break;
                }
            }
        }
        Ok(())
    }

    /// TCP mode: non-blocking accept loop, one thread per connection.
    /// A `SHUTDOWN` on any connection flips the shared flag; the accept
    /// loop stops, and every connection thread is joined before this
    /// returns — in-flight requests finish and their responses are
    /// written (the graceful drain the smoke gate asserts).
    pub fn serve_tcp(self: &Arc<Daemon>, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.metrics.connections.inc();
                    let daemon = Arc::clone(self);
                    let flag = Arc::clone(&shutdown);
                    handles.push(std::thread::spawn(move || {
                        daemon.handle_conn(stream, &flag);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(self.config.accept_poll);
                }
                Err(e) => return Err(e),
            }
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    }

    fn handle_conn(&self, stream: TcpStream, shutdown: &AtomicBool) {
        if stream.set_read_timeout(Some(self.config.read_poll)).is_err() {
            return;
        }
        let Ok(read_half) = stream.try_clone() else { return };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        let mut line = String::new();
        loop {
            // `line` is only cleared after a full line is handled: a read
            // timeout mid-line leaves the partial bytes in place and the
            // next read appends the remainder.
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    let reply = self.process_line(&line);
                    line.clear();
                    match reply {
                        Reply::Empty => {}
                        Reply::Line(r) => {
                            if writeln!(writer, "{r}").and_then(|_| writer.flush()).is_err() {
                                break;
                            }
                        }
                        Reply::Bye(r) => {
                            let _ = writeln!(writer, "{r}").and_then(|_| writer.flush());
                            shutdown.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }
}

/// Line-protocol client used by the CI smoke gate (`extractocol-serve
/// send`): streams `input` to the daemon at `addr`, returning one
/// response per non-empty request line. Fails loudly if the daemon
/// drops a response — the zero-dropped-requests assertion.
pub fn send_lines(addr: &str, input: &str) -> io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut responses = Vec::new();
    for line in input.lines() {
        let trimmed = line.trim_end_matches('\r');
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        writeln!(writer, "{trimmed}")?;
        writer.flush()?;
        let mut resp = String::new();
        if reader.read_line(&mut resp)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("daemon closed before answering: {trimmed:?}"),
            ));
        }
        responses.push(resp.trim_end_matches(['\r', '\n']).to_string());
    }
    Ok(responses)
}

/// Collects every response a concurrent writer produced — helper for
/// tests that drive [`Daemon::run_lines`] over an in-memory pipe.
#[derive(Clone, Default)]
pub struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    /// The UTF-8 contents written so far.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap_or_else(|e| e.into_inner())).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::write_archive;
    use extractocol_core::metrics::Metrics;
    use extractocol_core::pairing::Pairing;
    use extractocol_core::report::{AnalysisReport, Stats, TxnReport};
    use extractocol_core::siglang::{SigPat, TypeHint};
    use extractocol_http::HttpMethod;

    fn report(app: &str, uris: &[&str]) -> AnalysisReport {
        let transactions = uris
            .iter()
            .enumerate()
            .map(|(id, uri)| TxnReport {
                id,
                dp_class: "java.net.HttpURLConnection".into(),
                root: format!("t.C.m{id}"),
                method: HttpMethod::Get,
                uri_regex: String::new(),
                uri: SigPat::Concat(vec![SigPat::lit(uri), SigPat::Unknown(TypeHint::Num)]),
                headers: Vec::new(),
                header_sigs: Vec::new(),
                request_body: None,
                response: None,
                pairing: Pairing::Unique,
                origins: Vec::new(),
                consumptions: Vec::new(),
            })
            .collect();
        AnalysisReport {
            app: app.into(),
            transactions,
            dependencies: Vec::new(),
            stats: Stats::default(),
            metrics: Metrics::default(),
        }
    }

    fn daemon(uris: &[&str]) -> Daemon {
        let index = SignatureIndex::compile(&[report("demo", uris)]);
        Daemon::new(index, DaemonConfig::default())
    }

    #[test]
    fn traffic_lines_classify_and_controls_answer() {
        let d = daemon(&["http://h/api/a/", "http://h/api/b/"]);
        assert_eq!(
            d.process_line("GET\thttp://h/api/a/7"),
            Reply::Line("match\tdemo\t0\tjava.net.HttpURLConnection".into())
        );
        assert_eq!(d.process_line("GET\thttp://h/other"), Reply::Line("unmatched".into()));
        assert_eq!(d.process_line("PING"), Reply::Line("pong".into()));
        assert_eq!(d.process_line("# comment"), Reply::Empty);
        assert_eq!(d.process_line(""), Reply::Empty);
        assert_eq!(d.process_line("SHUTDOWN"), Reply::Bye("bye".into()));
        let stats = match d.process_line("STATS") {
            Reply::Line(s) => s,
            other => panic!("unexpected: {other:?}"),
        };
        assert!(stats.contains("generation=1"), "{stats}");
        assert!(stats.contains("signatures=2"), "{stats}");
        assert!(stats.contains("requests=2"), "{stats}");
    }

    #[test]
    fn malformed_lines_get_error_replies_not_panics() {
        let d = daemon(&["http://h/api/"]);
        for bad in ["BOGUS\thttp://h/x", "GET", "SWAP", "GET\thttp://h/x\ttext/plain"] {
            match d.process_line(bad) {
                Reply::Line(r) => assert!(r.starts_with("error\t"), "{bad:?} -> {r}"),
                other => panic!("{bad:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn swap_replaces_the_index_and_bumps_the_generation() {
        let d = daemon(&["http://h/api/old/"]);
        assert_eq!(
            d.process_line("GET\thttp://h/api/old/1"),
            Reply::Line("match\tdemo\t0\tjava.net.HttpURLConnection".into())
        );
        let new_index = SignatureIndex::compile(&[report("demo2", &["http://h/api/new/"])]);
        let outcome = d.swap_archive_bytes(&write_archive(&new_index)).expect("swap");
        assert_eq!(outcome.generation, 2);
        assert_eq!(outcome.signatures, 1);
        assert!(outcome.drained);
        assert_eq!(d.generation(), 2);
        assert_eq!(d.process_line("GET\thttp://h/api/old/1"), Reply::Line("unmatched".into()));
        assert_eq!(
            d.process_line("GET\thttp://h/api/new/1"),
            Reply::Line("match\tdemo2\t0\tjava.net.HttpURLConnection".into())
        );
        let text = d.registry.render();
        assert!(text.contains("serve_daemon_swaps_total 1"));
        assert!(text.contains("serve_daemon_index_generation 2"));
        assert!(text.contains("serve_daemon_index_load_us_count 1"));
    }

    #[test]
    fn corrupt_archive_is_refused_and_the_old_index_keeps_serving() {
        let d = daemon(&["http://h/api/old/"]);
        let new_index = SignatureIndex::compile(&[report("demo2", &["http://h/api/new/"])]);
        let mut bytes = write_archive(&new_index);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        match d.swap_archive_bytes(&bytes) {
            Err(SwapError::Load(ArchiveError::ChecksumMismatch { .. })) => {}
            other => panic!("expected load failure, got {other:?}"),
        }
        assert_eq!(d.generation(), 1);
        assert_eq!(
            d.process_line("GET\thttp://h/api/old/1"),
            Reply::Line("match\tdemo\t0\tjava.net.HttpURLConnection".into())
        );
        assert!(d.registry.render().contains("serve_daemon_swap_failures_total{phase=\"load\"} 1"));
    }

    #[test]
    fn swap_drain_waits_for_pinned_readers() {
        let d = Arc::new(daemon(&["http://h/api/old/"]));
        let pinned = d.index();
        let new_index = SignatureIndex::compile(&[report("demo2", &["http://h/api/new/"])]);
        let bytes = write_archive(&new_index);
        let swapper = {
            let d = Arc::clone(&d);
            std::thread::spawn(move || d.swap_archive_bytes(&bytes).expect("swap"))
        };
        // Give the swap time to reach the drain phase, then release the
        // pin; the swap must complete with drained=true.
        std::thread::sleep(Duration::from_millis(50));
        drop(pinned);
        let outcome = swapper.join().expect("join");
        assert!(outcome.drained);
        assert!(outcome.drain >= Duration::from_millis(25), "drain was {:?}", outcome.drain);
    }

    #[test]
    fn run_lines_answers_every_request_and_stops_on_shutdown() {
        let d = daemon(&["http://h/api/a/"]);
        let input =
            "GET\thttp://h/api/a/1\n# note\n\nGET\thttp://h/zzz\nSHUTDOWN\nGET\thttp://h/api/a/2\n";
        let out = SharedBuf::default();
        d.run_lines(io::Cursor::new(input), out.clone()).expect("run");
        let contents = out.contents();
        let lines: Vec<&str> = contents.lines().collect();
        // One response per non-empty line up to SHUTDOWN; nothing after.
        assert_eq!(lines, vec!["match\tdemo\t0\tjava.net.HttpURLConnection", "unmatched", "bye"]);
    }

    #[test]
    fn tcp_roundtrip_with_hot_swap_and_graceful_drain() {
        let index = SignatureIndex::compile(&[report("demo", &["http://h/api/a/"])]);
        let d = Arc::new(Daemon::new(index, DaemonConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = {
            let d = Arc::clone(&d);
            std::thread::spawn(move || d.serve_tcp(listener).expect("serve"))
        };
        let new_index = SignatureIndex::compile(&[report("demo2", &["http://h/api/b/"])]);
        let archive = tempfile_path("daemon_swap_test.exsv");
        crate::archive::write_archive_file(&new_index, &archive).expect("write archive");
        let input = format!(
            "GET\thttp://h/api/a/1\nSWAP\t{archive}\nGET\thttp://h/api/b/2\nSTATS\nSHUTDOWN\n"
        );
        let responses = send_lines(&addr, &input).expect("send");
        assert_eq!(responses.len(), 5, "zero dropped requests: {responses:?}");
        assert_eq!(responses[0], "match\tdemo\t0\tjava.net.HttpURLConnection");
        assert!(responses[1].starts_with("swapped\tgeneration=2"), "{}", responses[1]);
        assert_eq!(responses[2], "match\tdemo2\t0\tjava.net.HttpURLConnection");
        assert!(responses[3].contains("swaps=1"), "{}", responses[3]);
        assert_eq!(responses[4], "bye");
        server.join().expect("server thread");
        let _ = std::fs::remove_file(&archive);
        let text = d.registry.render();
        assert!(text.contains("serve_daemon_connections_total 1"));
        assert!(text.contains("serve_daemon_swaps_total 1"));
    }

    fn tempfile_path(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }
}
