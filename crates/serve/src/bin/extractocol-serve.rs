//! The `extractocol-serve` command-line tool: compile signatures into the
//! serving index and classify traffic, or benchmark the serving pipeline.
//!
//! ```bash
//! # Classify a traffic file against signatures extracted from apps:
//! extractocol-serve classify --report app.jimple --traffic requests.txt
//! extractocol-serve classify --corpus --traffic requests.txt --jobs 0
//! extractocol-serve classify --app "TED" --traffic requests.txt --json
//!
//! # Throughput benchmark over the corpus fuzzer traffic:
//! extractocol-serve bench --requests 50000 --jobs 0 --out BENCH_classify.json
//! extractocol-serve bench --requests 50000 --baseline BENCH_classify.baseline.json
//! extractocol-serve bench --metrics-out METRICS_classify.txt
//!
//! # Observability: exposition-format metrics and Chrome-trace spans
//! extractocol-serve classify --corpus --traffic requests.txt \
//!     --metrics-out metrics.txt --trace-out trace.json
//! ```
//!
//! The traffic file is line-based, one request per line —
//! `METHOD<TAB>URI[<TAB>MIME<TAB>BODY]` with `#` comments (the
//! `TrafficTrace::to_request_text` format).
//!
//! `bench --baseline` exits non-zero when measured throughput falls more
//! than 2x below the baseline's `requests_per_sec`, or when the average
//! candidate fraction exceeds the 20% pruning bar. `--metrics-out` writes
//! the serving instruments (verdict counters, candidate-fraction
//! distribution, per-verdict-class latency histograms with p50/p99, shard
//! imbalance) in the exposition text format; the timed throughput run
//! stays on the uninstrumented fast path either way.

use extractocol_core::TraceCollector;
use extractocol_serve::bench as serve_bench;
use extractocol_serve::{
    classify_batch, classify_batch_observed, ServeMetrics, SignatureIndex, Verdict,
};
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: extractocol-serve classify (--report <app.jimple> ... | --corpus | --app <name>) \
         --traffic <file> [--jobs <n>] [--json] [--metrics-out <file>] [--trace-out <file>]\n       \
         extractocol-serve bench [--requests <n>] [--jobs <n>] [--out <file>] \
         [--baseline <file>] [--metrics-out <file>]\n       \
         extractocol-serve attack [--seed <n>] [--per-class <n>] [--jobs <n>] [--out <file>] \
         [--metrics-out <file>] [--json]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("classify") => cmd_classify(args.collect()),
        Some("bench") => cmd_bench(args.collect()),
        Some("attack") => cmd_attack(args.collect()),
        Some("--help") | Some("-h") => {
            usage();
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn cmd_classify(args: Vec<String>) -> ExitCode {
    let mut report_paths: Vec<String> = Vec::new();
    let mut use_corpus = false;
    let mut app_filter: Option<String> = None;
    let mut traffic: Option<String> = None;
    let mut jobs = 1usize;
    let mut json_out = false;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--report" => match it.next() {
                Some(p) => report_paths.push(p),
                None => return usage(),
            },
            "--corpus" => use_corpus = true,
            "--app" => match it.next() {
                Some(n) => app_filter = Some(n),
                None => return usage(),
            },
            "--traffic" => match it.next() {
                Some(p) => traffic = Some(p),
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            "--json" => json_out = true,
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p),
                None => return usage(),
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(traffic_path) = traffic else { return usage() };
    if report_paths.is_empty() && !use_corpus && app_filter.is_none() {
        return usage();
    }

    // Build the report set: explicit jimple files, the whole corpus, or
    // one corpus app by name.
    let mut reports = Vec::new();
    for path in &report_paths {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("extractocol-serve: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let apk = match extractocol_ir::parser::parse_apk(&src) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("extractocol-serve: {path}: parse error at {e}");
                return ExitCode::FAILURE;
            }
        };
        reports.push(extractocol_dynamic::conformance::analyze_app(&apk, false, jobs));
    }
    if use_corpus || app_filter.is_some() {
        let mut apps = extractocol_corpus::all_apps();
        if let Some(name) = &app_filter {
            apps.retain(|a| &a.truth.name == name);
            if apps.is_empty() {
                eprintln!("extractocol-serve: no corpus app named {name:?}");
                return ExitCode::FAILURE;
            }
        }
        for app in &apps {
            reports.push(extractocol_dynamic::conformance::analyze_app(
                &app.apk,
                app.truth.open_source,
                jobs,
            ));
        }
    }
    let t_compile = Instant::now();
    let index = SignatureIndex::compile(&reports);
    let compile_dur = t_compile.elapsed();

    let text = match std::fs::read_to_string(&traffic_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("extractocol-serve: cannot read {traffic_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match extractocol_dynamic::TrafficTrace::parse_request_text("traffic", &text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("extractocol-serve: {traffic_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let requests: Vec<_> = trace.transactions.into_iter().map(|t| t.request).collect();

    // Instruments/spans only on request — the plain path stays the
    // uninstrumented classifier.
    let observed = metrics_out.is_some() || trace_out.is_some();
    let serve_metrics = ServeMetrics::new();
    let collector =
        if trace_out.is_some() { TraceCollector::enabled() } else { TraceCollector::disabled() };
    let t_classify = Instant::now();
    let (verdicts, stats) = if observed {
        classify_batch_observed(&index, &requests, jobs, &serve_metrics, &collector)
    } else {
        classify_batch(&index, &requests, jobs)
    };
    if observed {
        serve_metrics.observe_phases(compile_dur, t_classify.elapsed());
    }
    if let Some(path) = &metrics_out {
        if let Err(e) = std::fs::write(path, serve_metrics.registry.render()) {
            eprintln!("extractocol-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &trace_out {
        let spans = collector.drain();
        if let Err(e) = std::fs::write(path, extractocol_obs::chrome_trace_json(&spans)) {
            eprintln!("extractocol-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if json_out {
        use extractocol_http::JsonValue;
        let mut o = JsonValue::object();
        let rows: Vec<JsonValue> = verdicts
            .iter()
            .zip(&requests)
            .map(|(v, req)| {
                let mut row = JsonValue::object();
                row.insert("method", JsonValue::str(req.method.as_str()));
                row.insert("uri", JsonValue::str(&req.uri.raw));
                match v {
                    Verdict::Match(id) => {
                        let sig = index.sig(*id);
                        row.insert("app", JsonValue::str(&sig.app));
                        row.insert("txn", JsonValue::num(sig.txn_id as f64));
                        row.insert("dp", JsonValue::str(&sig.dp_class));
                    }
                    Verdict::Unmatched => {
                        row.insert("unmatched", JsonValue::Bool(true));
                    }
                }
                row
            })
            .collect();
        o.insert("verdicts", JsonValue::Array(rows));
        o.insert("matched", JsonValue::num(stats.matched as f64));
        o.insert("unmatched", JsonValue::num(stats.unmatched as f64));
        println!("{}", o.to_json());
    } else {
        for (v, req) in verdicts.iter().zip(&requests) {
            match v {
                Verdict::Match(id) => {
                    let sig = index.sig(*id);
                    println!(
                        "{} {} -> {} #{} ({})",
                        req.method, req.uri.raw, sig.app, sig.txn_id, sig.dp_class
                    );
                }
                Verdict::Unmatched => println!("{} {} -> unmatched", req.method, req.uri.raw),
            }
        }
        print!("{}", stats.to_text());
    }
    ExitCode::SUCCESS
}

/// `extractocol-serve attack`: the adversarial robustness bench. Runs the
/// seeded attack suite against the corpus index, prints the per-class
/// outcome table and the p99-under-attack latency, writes the attack
/// metrics families on request, and fails when the trie and brute-force
/// paths ever disagree on an adversarial input.
fn cmd_attack(args: Vec<String>) -> ExitCode {
    let mut seed = 0xE57A_AC70u64;
    let mut per_class = 64usize;
    let mut jobs = 0usize;
    let mut out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut json_out = false;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--per-class" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => per_class = n,
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p),
                None => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p),
                None => return usage(),
            },
            "--json" => json_out = true,
            _ => return usage(),
        }
    }

    let (report, metrics) = serve_bench::run_attack(seed, per_class, jobs);

    if let Some(path) = &metrics_out {
        if let Err(e) = std::fs::write(path, metrics.registry.render()) {
            eprintln!("extractocol-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let json = report.to_json().to_json();
    if json_out {
        println!("{json}");
    } else {
        println!(
            "attack suite seed={} ({} cases, {} classes): p50 {:.1}us, p99 {:.1}us",
            report.seed,
            report.cases,
            report.per_class_tally.len(),
            report.p50_latency_us,
            report.p99_latency_us,
        );
        for (name, t) in &report.per_class_tally {
            println!(
                "  {name:<18} cases {:<5} parse_err {:<5} matched {:<5} unmatched {:<5} \
                 budget_exhausted {}",
                t.cases, t.parse_errors, t.matched, t.unmatched, t.budget_exhausted
            );
        }
        println!(
            "differential: {} checked, {} disagreements",
            report.differential_checked, report.differential_disagreements
        );
    }
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("extractocol-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if report.differential_disagreements > 0 {
        eprintln!(
            "extractocol-serve: trie and brute-force verdicts disagree on {} adversarial case(s)",
            report.differential_disagreements
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_bench(args: Vec<String>) -> ExitCode {
    let mut requests = 50_000usize;
    let mut jobs = 0usize;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut metrics_out: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--requests" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => requests = n,
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p),
                None => return usage(),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(p),
                None => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    // With --metrics-out the run adds an instrumented pass (latency
    // histograms, candidate-fraction distribution, shard imbalance); the
    // timed batch behind the throughput numbers stays uninstrumented.
    let report = if let Some(path) = &metrics_out {
        let observed = serve_bench::run_observed(requests, jobs, &TraceCollector::disabled());
        if let Err(e) = std::fs::write(path, observed.metrics.registry.render()) {
            eprintln!("extractocol-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        print!("{}", observed.phases.to_text());
        observed.report
    } else {
        serve_bench::run(requests, jobs)
    };
    let json = report.to_json().to_json();
    println!(
        "classified {} requests against {} signatures: {:.0} req/s \
         (p50 {:.1}us, p99 {:.1}us, avg candidates {:.2}, candidate frac {:.4})",
        report.requests,
        report.signatures,
        report.requests_per_sec,
        report.p50_latency_us,
        report.p99_latency_us,
        report.stats.avg_candidates(),
        report.stats.avg_candidate_fraction(),
    );
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("extractocol-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if report.stats.avg_candidate_fraction() > 0.20 {
        eprintln!(
            "extractocol-serve: candidate fraction {:.4} exceeds the 20% pruning bar",
            report.stats.avg_candidate_fraction()
        );
        return ExitCode::FAILURE;
    }
    if let Some(path) = &baseline {
        let base = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("extractocol-serve: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let parsed = match extractocol_http::JsonValue::parse(&base) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("extractocol-serve: {path}: invalid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(base_rps) = parsed.get("requests_per_sec").and_then(|v| v.as_num()) else {
            eprintln!("extractocol-serve: {path}: missing requests_per_sec");
            return ExitCode::FAILURE;
        };
        if report.requests_per_sec < base_rps / 2.0 {
            eprintln!(
                "extractocol-serve: throughput {:.0} req/s regressed more than 2x below \
                 baseline {base_rps:.0} req/s",
                report.requests_per_sec
            );
            return ExitCode::FAILURE;
        }
        println!(
            "baseline check: {:.0} req/s vs baseline {base_rps:.0} req/s (gate: > {:.0})",
            report.requests_per_sec,
            base_rps / 2.0
        );
    }
    ExitCode::SUCCESS
}
