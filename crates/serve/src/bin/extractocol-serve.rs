//! The `extractocol-serve` command-line tool: compile signatures into the
//! serving index (in-memory or as a persistent archive), classify
//! traffic, run the long-lived daemon, or benchmark the pipeline.
//!
//! ```bash
//! # Compile the corpus index once into a persistent archive:
//! extractocol-serve compile --corpus --out index.exsv --jobs 0
//!
//! # Classify a traffic file — from an archive (fast) or from sources:
//! extractocol-serve classify --index index.exsv --traffic requests.txt
//! extractocol-serve classify --report app.jimple --traffic requests.txt
//! extractocol-serve classify --corpus --traffic requests.txt --jobs 0
//!
//! # Long-running daemon over TCP (or --stdin), with hot swap:
//! extractocol-serve daemon --index index.exsv --listen 127.0.0.1:0 \
//!     --port-file daemon.port --metrics-out METRICS_daemon.txt \
//!     --log-out daemon_events.log --log-level debug
//! extractocol-serve send --port-file daemon.port --traffic requests.txt
//!
//! # Live introspection of a running daemon (no restart):
//! extractocol-serve scrape --port-file daemon.port --verb METRICS \
//!     --out METRICS_live.txt
//! extractocol-serve scrape --port-file daemon.port --verb HEALTH
//!
//! # Throughput benchmark over the corpus fuzzer traffic:
//! extractocol-serve bench --requests 50000 --jobs 0 --iterations 3 \
//!     --baseline BENCH_classify.baseline.json --margin 0.5
//! ```
//!
//! The traffic file is line-based, one request per line —
//! `METHOD<TAB>URI[<TAB>MIME<TAB>BODY]` with `#` comments (the
//! `TrafficTrace::to_request_text` format). The daemon speaks the same
//! lines plus the `PING`/`STATS`/`SWAP`/`METRICS`/`HEALTH`/`SLOW`/
//! `SHUTDOWN` control verbs.
//!
//! `bench` reports best-of-`--iterations` throughput and exits non-zero
//! when it falls below `--margin` × the baseline's `requests_per_sec`,
//! when the average candidate fraction exceeds the 20% pruning bar, or
//! when loading the archive is not at least `--min-speedup` (default
//! 20x) faster than the full rebuild.

use extractocol_core::TraceCollector;
use extractocol_obs::{EventLog, Level, SinkFormat};
use extractocol_serve::bench as serve_bench;
use extractocol_serve::{
    classify_batch, classify_batch_observed, Daemon, DaemonConfig, ServeMetrics, SignatureIndex,
    Verdict,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: extractocol-serve compile (--report <app.jimple> ... | --corpus | --app <name>) \
         --out <index.exsv> [--jobs <n>]\n       \
         extractocol-serve classify (--index <index.exsv> | --report <app.jimple> ... | \
         --corpus | --app <name>) --traffic <file> [--jobs <n>] [--json] \
         [--metrics-out <file>] [--trace-out <file>]\n       \
         extractocol-serve daemon --index <index.exsv> (--stdin | --listen <addr>) \
         [--port-file <file>] [--metrics-out <file>] [--trace-out <file>] \
         [--log-out <file>] [--log-level trace|debug|info|warn|error]\n       \
         extractocol-serve send (--addr <host:port> | --port-file <file>) --traffic <file>\n       \
         extractocol-serve scrape (--addr <host:port> | --port-file <file>) \
         --verb METRICS|HEALTH|SLOW|STATS [--out <file>]\n       \
         extractocol-serve bench [--requests <n>] [--jobs <n>] [--iterations <n>] [--out <file>] \
         [--baseline <file>] [--margin <frac>] [--min-speedup <x>] [--metrics-out <file>]\n       \
         extractocol-serve attack [--index <index.exsv>] [--seed <n>] [--per-class <n>] \
         [--jobs <n>] [--out <file>] [--metrics-out <file>] [--json]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("compile") => cmd_compile(args.collect()),
        Some("classify") => cmd_classify(args.collect()),
        Some("daemon") => cmd_daemon(args.collect()),
        Some("send") => cmd_send(args.collect()),
        Some("scrape") => cmd_scrape(args.collect()),
        Some("bench") => cmd_bench(args.collect()),
        Some("attack") => cmd_attack(args.collect()),
        Some("--help") | Some("-h") => {
            usage();
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

/// Builds the report set shared by `compile` and `classify`: explicit
/// jimple files, the whole corpus, or one corpus app by name.
fn build_reports(
    report_paths: &[String],
    use_corpus: bool,
    app_filter: Option<&str>,
    jobs: usize,
) -> Result<Vec<extractocol_core::report::AnalysisReport>, ExitCode> {
    let mut reports = Vec::new();
    for path in report_paths {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("extractocol-serve: cannot read {path}: {e}");
                return Err(ExitCode::FAILURE);
            }
        };
        let apk = match extractocol_ir::parser::parse_apk(&src) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("extractocol-serve: {path}: parse error at {e}");
                return Err(ExitCode::FAILURE);
            }
        };
        reports.push(extractocol_dynamic::conformance::analyze_app(&apk, false, jobs));
    }
    if use_corpus || app_filter.is_some() {
        let mut apps = extractocol_corpus::all_apps();
        if let Some(name) = app_filter {
            apps.retain(|a| a.truth.name == name);
            if apps.is_empty() {
                eprintln!("extractocol-serve: no corpus app named {name:?}");
                return Err(ExitCode::FAILURE);
            }
        }
        for app in &apps {
            reports.push(extractocol_dynamic::conformance::analyze_app(
                &app.apk,
                app.truth.open_source,
                jobs,
            ));
        }
    }
    Ok(reports)
}

/// Loads a compiled index from a persistent archive, with the typed
/// error rendered for humans.
fn load_index(path: &str) -> Result<SignatureIndex, ExitCode> {
    match extractocol_serve::read_archive_file(path) {
        Ok(index) => Ok(index),
        Err(e) => {
            eprintln!("extractocol-serve: cannot load index {path}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// `extractocol-serve compile`: build the index once, write the archive.
fn cmd_compile(args: Vec<String>) -> ExitCode {
    let mut report_paths: Vec<String> = Vec::new();
    let mut use_corpus = false;
    let mut app_filter: Option<String> = None;
    let mut out: Option<String> = None;
    let mut jobs = 0usize;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--report" => match it.next() {
                Some(p) => report_paths.push(p),
                None => return usage(),
            },
            "--corpus" => use_corpus = true,
            "--app" => match it.next() {
                Some(n) => app_filter = Some(n),
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p),
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(out_path) = out else { return usage() };
    if report_paths.is_empty() && !use_corpus && app_filter.is_none() {
        return usage();
    }

    let t = Instant::now();
    let reports = match build_reports(&report_paths, use_corpus, app_filter.as_deref(), jobs) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let index = SignatureIndex::compile(&reports);
    let compile_secs = t.elapsed().as_secs_f64();
    if let Err(e) = extractocol_serve::write_archive_file(&index, &out_path) {
        eprintln!("extractocol-serve: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    let bytes = std::fs::metadata(&out_path).map(|m| m.len()).unwrap_or(0);
    println!(
        "compiled {} signatures ({} trie nodes) in {compile_secs:.2}s -> {out_path} ({bytes} bytes)",
        index.len(),
        index.trie_nodes(),
    );
    ExitCode::SUCCESS
}

/// `extractocol-serve daemon`: serve the line protocol until SHUTDOWN.
fn cmd_daemon(args: Vec<String>) -> ExitCode {
    let mut index_path: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut use_stdin = false;
    let mut port_file: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut log_out: Option<String> = None;
    let mut log_level = Level::Info;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--index" => match it.next() {
                Some(p) => index_path = Some(p),
                None => return usage(),
            },
            "--listen" => match it.next() {
                Some(addr) => listen = Some(addr),
                None => return usage(),
            },
            "--stdin" => use_stdin = true,
            "--port-file" => match it.next() {
                Some(p) => port_file = Some(p),
                None => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p),
                None => return usage(),
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p),
                None => return usage(),
            },
            "--log-out" => match it.next() {
                Some(p) => log_out = Some(p),
                None => return usage(),
            },
            "--log-level" => match it.next().and_then(|l| Level::parse(&l)) {
                Some(l) => log_level = l,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(index_path) = index_path else { return usage() };
    if use_stdin == listen.is_some() {
        // Exactly one transport.
        return usage();
    }

    let t_load = Instant::now();
    let index = match load_index(&index_path) {
        Ok(i) => i,
        Err(code) => return code,
    };
    let load_secs = t_load.elapsed().as_secs_f64();
    let trace =
        if trace_out.is_some() { TraceCollector::enabled() } else { TraceCollector::disabled() };
    let events = match &log_out {
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("extractocol-serve: cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Unbuffered on purpose: the CI gate greps the log while the
            // daemon is still serving, so records must hit disk at emit
            // time, not at shutdown.
            let log = EventLog::enabled(log_level);
            log.set_sink(Box::new(file), SinkFormat::Text);
            log
        }
        None => EventLog::disabled(),
    };
    let daemon = Arc::new(Daemon::with_observability(
        index,
        DaemonConfig::default(),
        extractocol_obs::Registry::new(),
        trace,
        events,
    ));
    daemon.metrics_index_load(load_secs);
    daemon
        .events
        .info("daemon", "daemon started")
        .field("signatures", daemon.index().len())
        .field("index_path", index_path.as_str())
        .emit();
    eprintln!(
        "daemon: serving {} signatures (loaded {index_path} in {:.1}ms)",
        daemon.index().len(),
        load_secs * 1e3,
    );

    let result = if use_stdin {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        daemon.run_lines(stdin.lock(), stdout.lock())
    } else {
        let addr = listen.expect("checked above");
        let listener = match std::net::TcpListener::bind(&addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("extractocol-serve: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let local = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
        if let Some(path) = &port_file {
            let port = local.rsplit(':').next().unwrap_or("");
            if let Err(e) = std::fs::write(path, format!("{port}\n")) {
                eprintln!("extractocol-serve: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("daemon: listening on {local}");
        daemon.serve_tcp(listener)
    };
    if let Err(e) = result {
        eprintln!("extractocol-serve: daemon: {e}");
        return ExitCode::FAILURE;
    }

    if let Some(path) = &metrics_out {
        if let Err(e) = std::fs::write(path, daemon.registry.render()) {
            eprintln!("extractocol-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &trace_out {
        let spans = daemon.trace.drain();
        if let Err(e) = std::fs::write(path, extractocol_obs::chrome_trace_json(&spans)) {
            eprintln!("extractocol-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("daemon: drained and shut down ({})", daemon.stats_line().replace('\t', " "));
    ExitCode::SUCCESS
}

/// `extractocol-serve send`: line-protocol client. Streams a traffic
/// file to a running daemon and prints one response per request line;
/// exits non-zero if the daemon drops any response.
fn cmd_send(args: Vec<String>) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut traffic: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v),
                None => return usage(),
            },
            "--port-file" => match it.next() {
                Some(p) => port_file = Some(p),
                None => return usage(),
            },
            "--traffic" => match it.next() {
                Some(p) => traffic = Some(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(traffic_path) = traffic else { return usage() };
    let addr = match (addr, port_file) {
        (Some(a), _) => a,
        (None, Some(path)) => match std::fs::read_to_string(&path) {
            Ok(port) => format!("127.0.0.1:{}", port.trim()),
            Err(e) => {
                eprintln!("extractocol-serve: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => return usage(),
    };
    let input = match std::fs::read_to_string(&traffic_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("extractocol-serve: cannot read {traffic_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match extractocol_serve::daemon::send_lines(&addr, &input) {
        Ok(responses) => {
            for r in &responses {
                println!("{r}");
            }
            eprintln!("send: {} request(s), {} response(s)", responses.len(), responses.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("extractocol-serve: send: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `extractocol-serve scrape`: one-shot live introspection. Sends a
/// single control verb to a running daemon and prints (or writes) the
/// reply payload — the Prometheus exposition for `METRICS`, the health
/// line for `HEALTH`, the exemplar dump for `SLOW`.
fn cmd_scrape(args: Vec<String>) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut verb: Option<String> = None;
    let mut out: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v),
                None => return usage(),
            },
            "--port-file" => match it.next() {
                Some(p) => port_file = Some(p),
                None => return usage(),
            },
            "--verb" => match it.next() {
                Some(v) => verb = Some(v),
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(verb) = verb else { return usage() };
    // Only introspection verbs: scrape must never mutate daemon state.
    if !matches!(verb.as_str(), "METRICS" | "HEALTH" | "SLOW" | "STATS" | "PING") {
        eprintln!("extractocol-serve: scrape verb must be METRICS|HEALTH|SLOW|STATS|PING");
        return usage();
    }
    let addr = match (addr, port_file) {
        (Some(a), _) => a,
        (None, Some(path)) => match std::fs::read_to_string(&path) {
            Ok(port) => format!("127.0.0.1:{}", port.trim()),
            Err(e) => {
                eprintln!("extractocol-serve: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => return usage(),
    };
    match extractocol_serve::daemon::scrape(&addr, &verb) {
        Ok(payload) => {
            if let Some(path) = &out {
                if let Err(e) = std::fs::write(path, &payload) {
                    eprintln!("extractocol-serve: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            } else {
                print!("{payload}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("extractocol-serve: scrape: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_classify(args: Vec<String>) -> ExitCode {
    let mut report_paths: Vec<String> = Vec::new();
    let mut use_corpus = false;
    let mut app_filter: Option<String> = None;
    let mut index_path: Option<String> = None;
    let mut traffic: Option<String> = None;
    let mut jobs = 1usize;
    let mut json_out = false;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--report" => match it.next() {
                Some(p) => report_paths.push(p),
                None => return usage(),
            },
            "--corpus" => use_corpus = true,
            "--app" => match it.next() {
                Some(n) => app_filter = Some(n),
                None => return usage(),
            },
            "--index" => match it.next() {
                Some(p) => index_path = Some(p),
                None => return usage(),
            },
            "--traffic" => match it.next() {
                Some(p) => traffic = Some(p),
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            "--json" => json_out = true,
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p),
                None => return usage(),
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(traffic_path) = traffic else { return usage() };
    let have_sources = !report_paths.is_empty() || use_corpus || app_filter.is_some();
    if index_path.is_none() && !have_sources {
        return usage();
    }

    // Index source: a persistent archive (fast path), or compile from
    // jimple files / the corpus.
    let t_compile = Instant::now();
    let index = if let Some(path) = &index_path {
        if have_sources {
            eprintln!("extractocol-serve: --index excludes --report/--corpus/--app");
            return usage();
        }
        match load_index(path) {
            Ok(i) => i,
            Err(code) => return code,
        }
    } else {
        let reports = match build_reports(&report_paths, use_corpus, app_filter.as_deref(), jobs) {
            Ok(r) => r,
            Err(code) => return code,
        };
        SignatureIndex::compile(&reports)
    };
    let compile_dur = t_compile.elapsed();

    let text = match std::fs::read_to_string(&traffic_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("extractocol-serve: cannot read {traffic_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match extractocol_dynamic::TrafficTrace::parse_request_text("traffic", &text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("extractocol-serve: {traffic_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let requests: Vec<_> = trace.transactions.into_iter().map(|t| t.request).collect();

    // Instruments/spans only on request — the plain path stays the
    // uninstrumented classifier.
    let observed = metrics_out.is_some() || trace_out.is_some();
    let serve_metrics = ServeMetrics::new();
    let collector =
        if trace_out.is_some() { TraceCollector::enabled() } else { TraceCollector::disabled() };
    let t_classify = Instant::now();
    let (verdicts, stats) = if observed {
        classify_batch_observed(&index, &requests, jobs, &serve_metrics, &collector)
    } else {
        classify_batch(&index, &requests, jobs)
    };
    if observed {
        serve_metrics.observe_phases(compile_dur, t_classify.elapsed());
    }
    if let Some(path) = &metrics_out {
        if let Err(e) = std::fs::write(path, serve_metrics.registry.render()) {
            eprintln!("extractocol-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &trace_out {
        let spans = collector.drain();
        if let Err(e) = std::fs::write(path, extractocol_obs::chrome_trace_json(&spans)) {
            eprintln!("extractocol-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if json_out {
        use extractocol_http::JsonValue;
        let mut o = JsonValue::object();
        let rows: Vec<JsonValue> = verdicts
            .iter()
            .zip(&requests)
            .map(|(v, req)| {
                let mut row = JsonValue::object();
                row.insert("method", JsonValue::str(req.method.as_str()));
                row.insert("uri", JsonValue::str(&req.uri.raw));
                match v {
                    Verdict::Match(id) => {
                        let sig = index.sig(*id);
                        row.insert("app", JsonValue::str(&sig.app));
                        row.insert("txn", JsonValue::num(sig.txn_id as f64));
                        row.insert("dp", JsonValue::str(&sig.dp_class));
                    }
                    Verdict::Unmatched => {
                        row.insert("unmatched", JsonValue::Bool(true));
                    }
                }
                row
            })
            .collect();
        o.insert("verdicts", JsonValue::Array(rows));
        o.insert("matched", JsonValue::num(stats.matched as f64));
        o.insert("unmatched", JsonValue::num(stats.unmatched as f64));
        println!("{}", o.to_json());
    } else {
        for (v, req) in verdicts.iter().zip(&requests) {
            match v {
                Verdict::Match(id) => {
                    let sig = index.sig(*id);
                    println!(
                        "{} {} -> {} #{} ({})",
                        req.method, req.uri.raw, sig.app, sig.txn_id, sig.dp_class
                    );
                }
                Verdict::Unmatched => println!("{} {} -> unmatched", req.method, req.uri.raw),
            }
        }
        print!("{}", stats.to_text());
    }
    ExitCode::SUCCESS
}

/// `extractocol-serve attack`: the adversarial robustness bench. Runs the
/// seeded attack suite against the corpus index, prints the per-class
/// outcome table and the p99-under-attack latency, writes the attack
/// metrics families on request, and fails when the trie and brute-force
/// paths ever disagree on an adversarial input.
fn cmd_attack(args: Vec<String>) -> ExitCode {
    let mut seed = 0xE57A_AC70u64;
    let mut per_class = 64usize;
    let mut jobs = 0usize;
    let mut index_path: Option<String> = None;
    let mut out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut json_out = false;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--index" => match it.next() {
                Some(p) => index_path = Some(p),
                None => return usage(),
            },
            "--per-class" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => per_class = n,
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p),
                None => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p),
                None => return usage(),
            },
            "--json" => json_out = true,
            _ => return usage(),
        }
    }

    let (report, metrics) = match &index_path {
        Some(path) => match load_index(path) {
            Ok(index) => serve_bench::run_attack_on(index, seed, per_class),
            Err(code) => return code,
        },
        None => serve_bench::run_attack(seed, per_class, jobs),
    };

    if let Some(path) = &metrics_out {
        if let Err(e) = std::fs::write(path, metrics.registry.render()) {
            eprintln!("extractocol-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let json = report.to_json().to_json();
    if json_out {
        println!("{json}");
    } else {
        println!(
            "attack suite seed={} ({} cases, {} classes): p50 {:.1}us, p99 {:.1}us",
            report.seed,
            report.cases,
            report.per_class_tally.len(),
            report.p50_latency_us,
            report.p99_latency_us,
        );
        for (name, t) in &report.per_class_tally {
            println!(
                "  {name:<18} cases {:<5} parse_err {:<5} matched {:<5} unmatched {:<5} \
                 budget_exhausted {}",
                t.cases, t.parse_errors, t.matched, t.unmatched, t.budget_exhausted
            );
        }
        println!(
            "differential: {} checked, {} disagreements",
            report.differential_checked, report.differential_disagreements
        );
    }
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("extractocol-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if report.differential_disagreements > 0 {
        eprintln!(
            "extractocol-serve: trie and brute-force verdicts disagree on {} adversarial case(s)",
            report.differential_disagreements
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_bench(args: Vec<String>) -> ExitCode {
    let mut requests = 50_000usize;
    let mut jobs = 0usize;
    let mut iterations = 3usize;
    let mut margin = 0.5f64;
    let mut min_speedup = 20.0f64;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut metrics_out: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--requests" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => requests = n,
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            "--iterations" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => iterations = n,
                None => return usage(),
            },
            "--margin" => match it.next().and_then(|n| n.parse().ok()) {
                Some(f) if (0.0..=1.0).contains(&f) => margin = f,
                _ => return usage(),
            },
            "--min-speedup" => match it.next().and_then(|n| n.parse().ok()) {
                Some(f) => min_speedup = f,
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p),
                None => return usage(),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(p),
                None => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    // With --metrics-out the run adds an instrumented pass (latency
    // histograms, candidate-fraction distribution, shard imbalance); the
    // timed batch behind the throughput numbers stays uninstrumented.
    let report = if let Some(path) = &metrics_out {
        let observed =
            serve_bench::run_observed(requests, jobs, iterations, &TraceCollector::disabled());
        if let Err(e) = std::fs::write(path, observed.metrics.registry.render()) {
            eprintln!("extractocol-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        print!("{}", observed.phases.to_text());
        observed.report
    } else {
        serve_bench::run(requests, jobs, iterations)
    };
    let json = report.to_json().to_json();
    println!(
        "classified {} requests against {} signatures: {:.0} req/s best of {} \
         (p50 {:.1}us, p99 {:.1}us, avg candidates {:.2}, candidate frac {:.4})",
        report.requests,
        report.signatures,
        report.requests_per_sec,
        report.iterations,
        report.p50_latency_us,
        report.p99_latency_us,
        report.stats.avg_candidates(),
        report.stats.avg_candidate_fraction(),
    );
    println!(
        "index rebuild {:.2}s vs archive load {:.1}ms: {:.0}x speedup",
        report.rebuild_secs,
        report.archive_load_secs * 1e3,
        report.archive_speedup,
    );
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("extractocol-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if report.stats.avg_candidate_fraction() > 0.20 {
        eprintln!(
            "extractocol-serve: candidate fraction {:.4} exceeds the 20% pruning bar",
            report.stats.avg_candidate_fraction()
        );
        return ExitCode::FAILURE;
    }
    if report.archive_speedup < min_speedup {
        eprintln!(
            "extractocol-serve: archive load is only {:.1}x faster than a rebuild \
             (bar: {min_speedup:.0}x)",
            report.archive_speedup
        );
        return ExitCode::FAILURE;
    }
    if let Some(path) = &baseline {
        let base = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("extractocol-serve: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let parsed = match extractocol_http::JsonValue::parse(&base) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("extractocol-serve: {path}: invalid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(base_rps) = parsed.get("requests_per_sec").and_then(|v| v.as_num()) else {
            eprintln!("extractocol-serve: {path}: missing requests_per_sec");
            return ExitCode::FAILURE;
        };
        let floor = base_rps * margin;
        if report.requests_per_sec < floor {
            eprintln!(
                "extractocol-serve: best-of-{} throughput {:.0} req/s fell below \
                 {margin:.2} x baseline {base_rps:.0} req/s",
                report.iterations, report.requests_per_sec
            );
            return ExitCode::FAILURE;
        }
        println!(
            "baseline check: {:.0} req/s (best of {}) vs baseline {base_rps:.0} req/s \
             (gate: >= {floor:.0})",
            report.requests_per_sec, report.iterations
        );
    }
    ExitCode::SUCCESS
}
