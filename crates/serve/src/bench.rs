//! Corpus-driven throughput benchmark for the serving pipeline.
//!
//! Builds the full 34-app signature index (static analysis of every
//! corpus app), harvests the perfect-fuzzer request set, tiles it out to
//! the requested request count, and measures:
//!
//! * batch throughput (requests/sec) on the trie-pruned path,
//! * single-request p50/p99 latency (sequential, no pool overhead),
//! * candidate-set telemetry (avg/max, candidate and structural-eval
//!   fractions) — the numbers backing the "≤ 20% of signatures reach the
//!   structural matcher" acceptance bar.
//!
//! The emitted JSON (`BENCH_classify.json`) is what CI regression-gates
//! against the checked-in baseline.

use crate::classify::{classify_batch, classify_batch_observed, ClassifyStats};
use crate::index::SignatureIndex;
use crate::metrics::ServeMetrics;
use extractocol_core::report::AnalysisReport;
use extractocol_core::{PhaseTimings, TraceCollector};
use extractocol_http::{JsonValue, Request};
use std::time::Instant;

/// Analyzes every corpus app and returns the reports in corpus order
/// (deterministic, so the compiled index is too).
pub fn corpus_reports(jobs: usize) -> Vec<AnalysisReport> {
    extractocol_corpus::all_apps()
        .iter()
        .map(|app| {
            extractocol_dynamic::conformance::analyze_app(&app.apk, app.truth.open_source, jobs)
        })
        .collect()
}

/// The perfect-fuzzer request set of every corpus app, in corpus order.
pub fn corpus_requests() -> Vec<Request> {
    extractocol_corpus::all_apps()
        .iter()
        .flat_map(|app| {
            extractocol_dynamic::run_perfect_fuzzer(app).transactions.into_iter().map(|t| t.request)
        })
        .collect()
}

/// Result of one benchmark run.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Requests classified in the timed batch run.
    pub requests: usize,
    /// Compiled signatures in the index.
    pub signatures: usize,
    /// Trie nodes in the index.
    pub trie_nodes: usize,
    /// Worker count used for the batch run.
    pub jobs: usize,
    /// Timed batch repetitions; the reported throughput is the best of
    /// them, so one scheduler hiccup can't flap the CI gate.
    pub iterations: usize,
    /// Batch wall-clock in seconds (fastest iteration).
    pub elapsed_secs: f64,
    /// Requests per second over the batch run (fastest iteration).
    pub requests_per_sec: f64,
    /// Full index rebuild wall-clock: corpus static analysis + compile —
    /// what every invocation paid before archives existed.
    pub rebuild_secs: f64,
    /// Archive decode + validate wall-clock for the same index.
    pub archive_load_secs: f64,
    /// `rebuild_secs / archive_load_secs` — the persistent-index payoff
    /// (acceptance bar: ≥ 20x).
    pub archive_speedup: f64,
    /// Single-request latency, 50th percentile (microseconds).
    pub p50_latency_us: f64,
    /// Single-request latency, 99th percentile (microseconds).
    pub p99_latency_us: f64,
    /// Batch stats (candidate telemetry, match counts).
    pub stats: ClassifyStats,
}

impl BenchReport {
    /// Serializes the report for `BENCH_classify.json`.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.insert("requests", JsonValue::num(self.requests as f64));
        o.insert("signatures", JsonValue::num(self.signatures as f64));
        o.insert("trie_nodes", JsonValue::num(self.trie_nodes as f64));
        o.insert("jobs", JsonValue::num(self.jobs as f64));
        o.insert("iterations", JsonValue::num(self.iterations as f64));
        o.insert("elapsed_secs", JsonValue::num(self.elapsed_secs));
        o.insert("requests_per_sec", JsonValue::num(self.requests_per_sec));
        o.insert("rebuild_secs", JsonValue::num(self.rebuild_secs));
        o.insert("archive_load_secs", JsonValue::num(self.archive_load_secs));
        o.insert("archive_speedup", JsonValue::num(self.archive_speedup));
        o.insert("p50_latency_us", JsonValue::num(self.p50_latency_us));
        o.insert("p99_latency_us", JsonValue::num(self.p99_latency_us));
        o.insert("avg_candidates", JsonValue::num(self.stats.avg_candidates()));
        o.insert("max_candidates", JsonValue::num(self.stats.max_candidates as f64));
        o.insert("avg_candidate_fraction", JsonValue::num(self.stats.avg_candidate_fraction()));
        o.insert("avg_eval_fraction", JsonValue::num(self.stats.avg_eval_fraction()));
        o.insert("matched", JsonValue::num(self.stats.matched as f64));
        o.insert("unmatched", JsonValue::num(self.stats.unmatched as f64));
        o.insert("budget_exhausted", JsonValue::num(self.stats.budget_exhausted as f64));
        o
    }
}

/// Tiles the corpus request set out to exactly `n` requests.
pub fn tile_requests(base: &[Request], n: usize) -> Vec<Request> {
    assert!(!base.is_empty(), "no base requests to tile");
    base.iter().cycle().take(n).cloned().collect()
}

/// Runs the benchmark: compiles the corpus index (timing the rebuild and
/// the archive-load path for comparison), classifies `requests_n` tiled
/// fuzzer requests on `jobs` workers taking the best of `iterations`
/// timed batches, and samples single-request latency over (up to) 10k
/// requests.
pub fn run(requests_n: usize, jobs: usize, iterations: usize) -> BenchReport {
    let t_rebuild = Instant::now();
    let reports = corpus_reports(jobs);
    let index = SignatureIndex::compile(&reports);
    let rebuild_secs = t_rebuild.elapsed().as_secs_f64();
    let base = corpus_requests();
    let requests = tile_requests(&base, requests_n);
    let mut report = bench_index(&index, &requests, jobs, iterations);
    fill_archive_timings(&index, rebuild_secs, &mut report);
    report
}

/// Times the persistent-index path against the rebuild the caller just
/// paid: serialize, then measure decode+validate of the archive bytes.
fn fill_archive_timings(index: &SignatureIndex, rebuild_secs: f64, report: &mut BenchReport) {
    let archive = crate::archive::write_archive(index);
    let t = Instant::now();
    let loaded = crate::archive::read_archive(&archive).expect("self-written archive loads");
    let archive_load_secs = t.elapsed().as_secs_f64();
    std::hint::black_box(&loaded);
    report.rebuild_secs = rebuild_secs;
    report.archive_load_secs = archive_load_secs;
    report.archive_speedup =
        if archive_load_secs > 0.0 { rebuild_secs / archive_load_secs } else { f64::INFINITY };
}

/// [`run`] plus the instrument bundle behind `bench --metrics-out`.
#[derive(Clone)]
pub struct ObservedBench {
    /// The throughput report from the *uninstrumented* timed batch — the
    /// numbers the baseline gate compares stay free of metric overhead.
    pub report: BenchReport,
    /// Classifier instruments filled by a second, instrumented pass over
    /// the same request set (latency histograms, candidate-fraction
    /// distribution, shard imbalance, phase seconds).
    pub metrics: ServeMetrics,
    /// Serve-side phase wall-clocks (`serve_compile` / `serve_classify`).
    pub phases: PhaseTimings,
}

/// Runs the benchmark with instruments: the timed batch stays on the
/// uninstrumented fast path (so throughput numbers are comparable to the
/// baseline), then an instrumented pass over the same requests fills the
/// latency/candidate-fraction histograms, shard telemetry, and the
/// `serve_compile`/`serve_classify` [`PhaseTimings`] slots.
pub fn run_observed(
    requests_n: usize,
    jobs: usize,
    iterations: usize,
    trace: &TraceCollector,
) -> ObservedBench {
    let metrics = ServeMetrics::new();
    let mut phases = PhaseTimings::default();

    let t_rebuild = Instant::now();
    let reports = corpus_reports(jobs);
    let t = Instant::now();
    let index = {
        let mut s = trace.span_in("phase", "serve_compile");
        let index = SignatureIndex::compile(&reports);
        s.attr("signatures", index.len()).attr("trie_nodes", index.trie_nodes());
        index
    };
    phases.serve_compile = t.elapsed();
    let rebuild_secs = t_rebuild.elapsed().as_secs_f64();
    let base = corpus_requests();
    let requests = tile_requests(&base, requests_n);

    let mut report = bench_index(&index, &requests, jobs, iterations);
    fill_archive_timings(&index, rebuild_secs, &mut report);
    let report = report;

    let t = Instant::now();
    {
        let mut s = trace.span_in("phase", "serve_classify");
        s.attr("requests", requests.len()).attr("jobs", jobs);
        classify_batch_observed(&index, &requests, jobs, &metrics, trace);
    }
    phases.serve_classify = t.elapsed();
    metrics.observe_phases(phases.serve_compile, phases.serve_classify);
    ObservedBench { report, metrics, phases }
}

/// Measures one compiled index against one request set: best-of-N timed
/// batch runs plus sequential latency sampling. Verdicts and stats are
/// deterministic across iterations, so only the wall-clock varies — the
/// fastest run is the least-noise estimate of real throughput.
fn bench_index(
    index: &SignatureIndex,
    requests: &[Request],
    jobs: usize,
    iterations: usize,
) -> BenchReport {
    let iterations = iterations.max(1);
    let mut elapsed = f64::INFINITY;
    let mut stats = ClassifyStats::default();
    for _ in 0..iterations {
        let t = Instant::now();
        let (_, s) = classify_batch(index, requests, jobs);
        elapsed = elapsed.min(t.elapsed().as_secs_f64());
        stats = s;
    }

    // Latency sampling: sequential, one timer per request.
    let sample = &requests[..requests.len().min(10_000)];
    let mut lat_us: Vec<f64> = sample
        .iter()
        .map(|req| {
            let t = Instant::now();
            std::hint::black_box(index.classify(req));
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    lat_us.sort_unstable_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if lat_us.is_empty() {
            return 0.0;
        }
        let i = ((lat_us.len() - 1) as f64 * p).round() as usize;
        lat_us[i]
    };

    BenchReport {
        requests: requests.len(),
        signatures: index.len(),
        trie_nodes: index.trie_nodes(),
        jobs,
        iterations,
        elapsed_secs: elapsed,
        requests_per_sec: if elapsed > 0.0 { requests.len() as f64 / elapsed } else { 0.0 },
        rebuild_secs: 0.0,
        archive_load_secs: 0.0,
        archive_speedup: 0.0,
        p50_latency_us: pct(0.50),
        p99_latency_us: pct(0.99),
        stats,
    }
}

// ---------------------------------------------------------------------------
// Adversarial bench (`extractocol-serve attack`)
// ---------------------------------------------------------------------------

/// Per-attack-class outcome tally for the printed table / JSON output.
#[derive(Clone, Debug, Default)]
pub struct AttackClassTally {
    pub cases: usize,
    pub parse_errors: usize,
    pub matched: usize,
    pub unmatched: usize,
    pub budget_exhausted: usize,
}

/// Result of one adversarial bench run.
#[derive(Clone, Debug)]
pub struct AttackBenchReport {
    pub seed: u64,
    pub per_class: usize,
    pub cases: usize,
    pub per_class_tally: Vec<(&'static str, AttackClassTally)>,
    /// Parse+classify latency percentiles over all cases (µs).
    pub p50_latency_us: f64,
    pub p99_latency_us: f64,
    pub elapsed_secs: f64,
    /// Cases re-checked through the brute-force path.
    pub differential_checked: usize,
    /// Trie vs brute-force verdict disagreements (must be 0).
    pub differential_disagreements: usize,
}

impl AttackBenchReport {
    /// Serializes the report for `ATTACK_bench.json`.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.insert("seed", JsonValue::num(self.seed as f64));
        o.insert("per_class", JsonValue::num(self.per_class as f64));
        o.insert("cases", JsonValue::num(self.cases as f64));
        o.insert("p50_latency_us", JsonValue::num(self.p50_latency_us));
        o.insert("p99_latency_us", JsonValue::num(self.p99_latency_us));
        o.insert("elapsed_secs", JsonValue::num(self.elapsed_secs));
        o.insert("differential_checked", JsonValue::num(self.differential_checked as f64));
        o.insert(
            "differential_disagreements",
            JsonValue::num(self.differential_disagreements as f64),
        );
        let mut classes = JsonValue::object();
        for (name, t) in &self.per_class_tally {
            let mut c = JsonValue::object();
            c.insert("cases", JsonValue::num(t.cases as f64));
            c.insert("parse_errors", JsonValue::num(t.parse_errors as f64));
            c.insert("matched", JsonValue::num(t.matched as f64));
            c.insert("unmatched", JsonValue::num(t.unmatched as f64));
            c.insert("budget_exhausted", JsonValue::num(t.budget_exhausted as f64));
            classes.insert(name, c);
        }
        o.insert("classes", classes);
        o
    }
}

/// Runs the adversarial bench: compiles the corpus index, generates the
/// seeded attack suite over real fuzzer traffic as base material, then
/// parses + classifies every case sequentially (timing each), filling
/// the [`AttackMetrics`](crate::metrics::AttackMetrics) families on the
/// returned [`ServeMetrics`] registry. A spread subsample of parsed
/// cases is re-classified through the brute-force path; any verdict
/// disagreement is reported (and must fail the caller).
pub fn run_attack(seed: u64, per_class: usize, jobs: usize) -> (AttackBenchReport, ServeMetrics) {
    let reports = corpus_reports(jobs);
    run_attack_on(SignatureIndex::compile(&reports), seed, per_class)
}

/// [`run_attack`] against a caller-supplied index (e.g. one loaded from
/// a compiled archive via `attack --index`).
pub fn run_attack_on(
    index: SignatureIndex,
    seed: u64,
    per_class: usize,
) -> (AttackBenchReport, ServeMetrics) {
    use extractocol_dynamic::{generate_attacks, AdversarialConfig, AttackClass};

    let base = corpus_requests();
    let metrics = ServeMetrics::new();
    metrics.observe_index(index.len(), index.trie_nodes());
    let attack_metrics = crate::metrics::AttackMetrics::on(&metrics.registry);

    let config = AdversarialConfig { seed, per_class };
    let cases = generate_attacks(&config, &base);

    let mut tallies: Vec<(&'static str, AttackClassTally)> =
        AttackClass::ALL.iter().map(|c| (c.name(), AttackClassTally::default())).collect();
    let tally_idx = |class: AttackClass| AttackClass::ALL.iter().position(|c| *c == class).unwrap();

    // A spread subsample for the brute-force differential check: full
    // brute force on every giant probe would dominate the bench without
    // adding signal (the exhaustive check lives in tests/adversarial.rs).
    let check_budget = 150usize.min(cases.len()).max(1);
    let check_step = cases.len().div_ceil(check_budget).max(1);

    let run_started = Instant::now();
    let mut lat_us: Vec<f64> = Vec::with_capacity(cases.len());
    let mut differential_checked = 0usize;
    let mut differential_disagreements = 0usize;
    for case in &cases {
        let tally = &mut tallies[tally_idx(case.class)].1;
        tally.cases += 1;
        let t = Instant::now();
        let parsed = case.parse();
        match parsed {
            Err(_) => {
                let d = t.elapsed();
                tally.parse_errors += 1;
                attack_metrics.observe_parse_error(case.class, Some(d));
                lat_us.push(d.as_secs_f64() * 1e6);
            }
            Ok(None) => {
                // Truncation degenerated the line into a blank — nothing
                // to classify, nothing to count beyond the case itself.
            }
            Ok(Some(req)) => {
                let (verdict, probe) = index.classify(&req);
                let d = t.elapsed();
                match verdict {
                    crate::index::Verdict::Match(_) => tally.matched += 1,
                    crate::index::Verdict::Unmatched => tally.unmatched += 1,
                }
                tally.budget_exhausted += probe.budget_exhausted;
                attack_metrics.observe_classified(case.class, &verdict, &probe, Some(d));
                lat_us.push(d.as_secs_f64() * 1e6);
                if case.id % check_step == 0 {
                    differential_checked += 1;
                    if index.classify_brute(&req).0 != verdict {
                        differential_disagreements += 1;
                    }
                }
            }
        }
    }
    let elapsed = run_started.elapsed().as_secs_f64();

    lat_us.sort_unstable_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if lat_us.is_empty() {
            return 0.0;
        }
        let i = ((lat_us.len() - 1) as f64 * p).round() as usize;
        lat_us[i]
    };

    let report = AttackBenchReport {
        seed,
        per_class,
        cases: cases.len(),
        per_class_tally: tallies,
        p50_latency_us: pct(0.50),
        p99_latency_us: pct(0.99),
        elapsed_secs: elapsed,
        differential_checked,
        differential_disagreements,
    };
    (report, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiling_repeats_the_base_set() {
        let base = vec![Request::get("http://h/a"), Request::get("http://h/b")];
        let tiled = tile_requests(&base, 5);
        assert_eq!(tiled.len(), 5);
        assert_eq!(tiled[0].uri.raw, "http://h/a");
        assert_eq!(tiled[4].uri.raw, "http://h/a");
    }

    #[test]
    fn bench_report_json_is_well_formed() {
        let report = BenchReport {
            requests: 100,
            signatures: 10,
            trie_nodes: 42,
            jobs: 2,
            iterations: 3,
            elapsed_secs: 0.5,
            requests_per_sec: 200.0,
            rebuild_secs: 2.0,
            archive_load_secs: 0.01,
            archive_speedup: 200.0,
            p50_latency_us: 3.0,
            p99_latency_us: 9.0,
            stats: ClassifyStats::default(),
        };
        let text = report.to_json().to_json();
        let parsed = JsonValue::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("requests_per_sec").and_then(|v| v.as_num()), Some(200.0));
        assert_eq!(parsed.get("iterations").and_then(|v| v.as_num()), Some(3.0));
        assert_eq!(parsed.get("archive_speedup").and_then(|v| v.as_num()), Some(200.0));
        assert!(parsed.get("avg_eval_fraction").is_some());
    }
}
