//! Persistent, versioned binary archive for a compiled [`SignatureIndex`].
//!
//! `extractocol-serve` used to recompile the index from analysis reports
//! on every invocation — seconds of static analysis to answer a
//! millisecond question. The archive turns the index into a deployable
//! artifact: `extractocol-serve compile` writes it once, every other
//! subcommand (and the daemon's hot-swap path) loads it near-instantly.
//!
//! # Layout (version 1)
//!
//! ```text
//! header (32 bytes):
//!   magic            8 bytes  "EXSERVIX"
//!   version          u32 LE   (1)
//!   reserved         u32 LE   (0)
//!   payload_len      u64 LE   byte length of everything after the header
//!   payload_checksum u64 LE   FNV-1a 64 over the payload bytes
//! payload: two length-prefixed sections, in fixed order:
//!   section = tag (u32 LE) + byte_len (u64 LE) + bytes
//!     "SIGS" — the flat signature table (id = position)
//!     "NODE" — the flat trie-node table (index = position)
//! ```
//!
//! All integers are little-endian; strings are `u64` byte length +
//! UTF-8 bytes; recursive patterns ([`SigPat`], [`JsonSig`], [`XmlSig`])
//! are tag-byte trees with a hard decode-depth cap.
//!
//! # Guarantees
//!
//! * **Deterministic**: the same index serializes to byte-identical
//!   archives (every container is ordered — `Vec`s by construction,
//!   JSON object keys via `BTreeMap`), so `write(read(write(i))) ==
//!   write(i)` and archives diff cleanly.
//! * **Validated on load**: besides the checksum, the flat layouts are
//!   structurally verified — child edges sorted and forward-pointing
//!   (the trie is append-ordered, so cycles are impossible to encode),
//!   every bucket id in range and used exactly once, and every
//!   signature's stored prefix re-derivable from its URI pattern and
//!   resolvable to the node holding it. A loaded index is
//!   verdict-identical to a freshly compiled one (pinned corpus-wide by
//!   `tests/serve_archive.rs`).
//! * **Typed rejection**: corruption, truncation, and version skew each
//!   surface as a distinct [`ArchiveError`] variant — never a panic,
//!   never a silently wrong index.

use crate::index::{CompiledSig, SignatureIndex, TrieNode};
use extractocol_core::sigbuild::BodySig;
use extractocol_core::siglang::{JsonSig, SigPat, TypeHint, XmlSig};
use extractocol_http::HttpMethod;
use std::fmt;

/// The 8-byte archive magic.
pub const ARCHIVE_MAGIC: &[u8; 8] = b"EXSERVIX";
/// Current (and only) archive format version.
pub const ARCHIVE_VERSION: u32 = 1;
/// Maximum nesting depth accepted when decoding pattern trees. Corpus
/// signatures are a few levels deep; this only bounds hostile archives.
const MAX_PATTERN_DEPTH: usize = 256;

const SECTION_SIGS: u32 = u32::from_le_bytes(*b"SIGS");
const SECTION_NODES: u32 = u32::from_le_bytes(*b"NODE");

/// Why an archive was rejected. Every variant is a deterministic verdict
/// on the input bytes — loading never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArchiveError {
    /// Filesystem failure on the `_file` entry points.
    Io(String),
    /// The first 8 bytes are not [`ARCHIVE_MAGIC`].
    BadMagic,
    /// Written by a different format version than this reader supports.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this reader supports.
        supported: u32,
    },
    /// Input ended before a declared length was satisfied.
    Truncated {
        /// What was being decoded.
        context: &'static str,
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Payload bytes do not hash to the header checksum.
    ChecksumMismatch {
        /// Checksum stored in the header.
        expected: u64,
        /// FNV-1a 64 of the payload actually read.
        actual: u64,
    },
    /// A section tag other than the one required at that position.
    BadSection {
        /// Tag found in the stream.
        found: u32,
        /// Tag required here.
        expected: u32,
    },
    /// An enum tag byte outside the encodable range.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field holding invalid UTF-8.
    BadUtf8 {
        /// What was being decoded.
        context: &'static str,
    },
    /// A pattern tree nested beyond [`MAX_PATTERN_DEPTH`].
    TooDeep {
        /// What was being decoded.
        context: &'static str,
    },
    /// Bytes left over after the last declared section.
    TrailingBytes {
        /// How many undeclared bytes remain.
        count: usize,
    },
    /// The decoded flat layout is internally inconsistent.
    Invalid(String),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "io: {e}"),
            ArchiveError::BadMagic => write!(f, "not a signature-index archive (bad magic)"),
            ArchiveError::VersionMismatch { found, supported } => {
                write!(f, "archive version {found} unsupported (reader supports {supported})")
            }
            ArchiveError::Truncated { context, needed, available } => {
                write!(f, "truncated {context}: needed {needed} bytes, {available} available")
            }
            ArchiveError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "payload checksum mismatch: header {expected:#018x}, actual {actual:#018x}"
                )
            }
            ArchiveError::BadSection { found, expected } => {
                write!(f, "bad section tag {found:#010x} (expected {expected:#010x})")
            }
            ArchiveError::BadTag { context, tag } => write!(f, "bad {context} tag {tag:#04x}"),
            ArchiveError::BadUtf8 { context } => write!(f, "invalid UTF-8 in {context}"),
            ArchiveError::TooDeep { context } => {
                write!(f, "{context} nested deeper than {MAX_PATTERN_DEPTH}")
            }
            ArchiveError::TrailingBytes { count } => {
                write!(f, "{count} trailing byte(s) after the last section")
            }
            ArchiveError::Invalid(msg) => write!(f, "invalid index layout: {msg}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

/// FNV-1a 64 over a byte slice — the payload checksum. Re-exported from
/// the shared [`extractocol_ir::hash`] util so every archive format (and
/// the incremental engine's method content hashes) uses one implementation.
pub use extractocol_ir::hash::fnv1a64;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_method(out: &mut Vec<u8>, m: HttpMethod) {
    out.push(match m {
        HttpMethod::Get => 0,
        HttpMethod::Post => 1,
        HttpMethod::Put => 2,
        HttpMethod::Delete => 3,
    });
}

fn put_sigpat(out: &mut Vec<u8>, p: &SigPat) {
    match p {
        SigPat::Const(s) => {
            out.push(0);
            put_str(out, s);
        }
        SigPat::Unknown(h) => {
            out.push(1);
            out.push(match h {
                TypeHint::Num => 0,
                TypeHint::Bool => 1,
                TypeHint::Str => 2,
            });
        }
        SigPat::Concat(parts) => {
            out.push(2);
            put_u64(out, parts.len() as u64);
            for part in parts {
                put_sigpat(out, part);
            }
        }
        SigPat::Rep(inner) => {
            out.push(3);
            put_sigpat(out, inner);
        }
        SigPat::Or(arms) => {
            out.push(4);
            put_u64(out, arms.len() as u64);
            for arm in arms {
                put_sigpat(out, arm);
            }
        }
        SigPat::Json(j) => {
            out.push(5);
            put_jsonsig(out, j);
        }
        SigPat::Xml(x) => {
            out.push(6);
            put_xmlsig(out, x);
        }
    }
}

fn put_jsonsig(out: &mut Vec<u8>, j: &JsonSig) {
    match j {
        JsonSig::Object(map) => {
            out.push(0);
            put_u64(out, map.len() as u64);
            for (k, v) in map {
                put_str(out, k);
                put_jsonsig(out, v);
            }
        }
        JsonSig::Array(elem) => {
            out.push(1);
            put_jsonsig(out, elem);
        }
        JsonSig::Value(p) => {
            out.push(2);
            put_sigpat(out, p);
        }
        JsonSig::Unknown => out.push(3),
    }
}

fn put_xmlsig(out: &mut Vec<u8>, x: &XmlSig) {
    put_str(out, &x.name);
    put_u64(out, x.attrs.len() as u64);
    for (k, v) in &x.attrs {
        put_str(out, k);
        put_sigpat(out, v);
    }
    put_u64(out, x.children.len() as u64);
    for c in &x.children {
        put_xmlsig(out, c);
    }
    match &x.text {
        None => out.push(0),
        Some(p) => {
            out.push(1);
            put_sigpat(out, p);
        }
    }
}

fn put_bodysig(out: &mut Vec<u8>, b: &BodySig) {
    match b {
        BodySig::Form(pairs) => {
            out.push(0);
            put_u64(out, pairs.len() as u64);
            for (k, v) in pairs {
                put_sigpat(out, k);
                put_sigpat(out, v);
            }
        }
        BodySig::Json(j) => {
            out.push(1);
            put_jsonsig(out, j);
        }
        BodySig::Xml(x) => {
            out.push(2);
            put_xmlsig(out, x);
        }
        BodySig::Text(p) => {
            out.push(3);
            put_sigpat(out, p);
        }
    }
}

fn put_sig(out: &mut Vec<u8>, sig: &CompiledSig) {
    put_str(out, &sig.app);
    put_u64(out, sig.txn_id as u64);
    put_str(out, &sig.dp_class);
    put_method(out, sig.method);
    put_sigpat(out, &sig.uri);
    match &sig.body {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            put_bodysig(out, b);
        }
    }
    put_str(out, &sig.prefix);
}

fn put_node(out: &mut Vec<u8>, node: &TrieNode) {
    put_u64(out, node.children.len() as u64);
    for (label, child) in &node.children {
        out.push(*label);
        put_u32(out, *child);
    }
    put_u64(out, node.bucket.len() as u64);
    for id in &node.bucket {
        put_u32(out, *id);
    }
}

/// Serializes a compiled index into archive bytes. Deterministic: the
/// same index always produces byte-identical output.
pub fn write_archive(index: &SignatureIndex) -> Vec<u8> {
    let mut sigs = Vec::new();
    put_u64(&mut sigs, index.sigs.len() as u64);
    for sig in &index.sigs {
        put_sig(&mut sigs, sig);
    }
    let mut nodes = Vec::new();
    put_u64(&mut nodes, index.nodes.len() as u64);
    for node in &index.nodes {
        put_node(&mut nodes, node);
    }

    let mut payload = Vec::with_capacity(sigs.len() + nodes.len() + 48);
    put_u32(&mut payload, SECTION_SIGS);
    put_u64(&mut payload, sigs.len() as u64);
    payload.extend_from_slice(&sigs);
    put_u32(&mut payload, SECTION_NODES);
    put_u64(&mut payload, nodes.len() as u64);
    payload.extend_from_slice(&nodes);

    let mut out = Vec::with_capacity(32 + payload.len());
    out.extend_from_slice(ARCHIVE_MAGIC);
    put_u32(&mut out, ARCHIVE_VERSION);
    put_u32(&mut out, 0); // reserved
    put_u64(&mut out, payload.len() as u64);
    put_u64(&mut out, fnv1a64(&payload));
    out.extend_from_slice(&payload);
    out
}

/// [`write_archive`] to a file.
pub fn write_archive_file(
    index: &SignatureIndex,
    path: impl AsRef<std::path::Path>,
) -> Result<(), ArchiveError> {
    std::fs::write(path.as_ref(), write_archive(index))
        .map_err(|e| ArchiveError::Io(format!("{}: {e}", path.as_ref().display())))
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// Bounds-checked byte cursor with typed errors.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ArchiveError> {
        if self.remaining() < n {
            return Err(ArchiveError::Truncated {
                context,
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, ArchiveError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, ArchiveError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, ArchiveError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// A declared element count. Rejected when it exceeds the bytes left
    /// (every element costs ≥ 1 byte), so hostile length fields cannot
    /// drive huge allocations.
    fn count(&mut self, context: &'static str) -> Result<usize, ArchiveError> {
        let n = self.u64(context)?;
        if n > self.remaining() as u64 {
            return Err(ArchiveError::Truncated {
                context,
                needed: n as usize,
                available: self.remaining(),
            });
        }
        Ok(n as usize)
    }

    fn str(&mut self, context: &'static str) -> Result<String, ArchiveError> {
        let n = self.count(context)?;
        let bytes = self.take(n, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ArchiveError::BadUtf8 { context })
    }
}

fn get_method(cur: &mut Cur<'_>) -> Result<HttpMethod, ArchiveError> {
    match cur.u8("method")? {
        0 => Ok(HttpMethod::Get),
        1 => Ok(HttpMethod::Post),
        2 => Ok(HttpMethod::Put),
        3 => Ok(HttpMethod::Delete),
        tag => Err(ArchiveError::BadTag { context: "method", tag }),
    }
}

fn get_sigpat(cur: &mut Cur<'_>, depth: usize) -> Result<SigPat, ArchiveError> {
    if depth > MAX_PATTERN_DEPTH {
        return Err(ArchiveError::TooDeep { context: "SigPat" });
    }
    match cur.u8("SigPat")? {
        0 => Ok(SigPat::Const(cur.str("SigPat::Const")?)),
        1 => match cur.u8("TypeHint")? {
            0 => Ok(SigPat::Unknown(TypeHint::Num)),
            1 => Ok(SigPat::Unknown(TypeHint::Bool)),
            2 => Ok(SigPat::Unknown(TypeHint::Str)),
            tag => Err(ArchiveError::BadTag { context: "TypeHint", tag }),
        },
        2 => {
            let n = cur.count("SigPat::Concat")?;
            let mut parts = Vec::with_capacity(n);
            for _ in 0..n {
                parts.push(get_sigpat(cur, depth + 1)?);
            }
            Ok(SigPat::Concat(parts))
        }
        3 => Ok(SigPat::Rep(Box::new(get_sigpat(cur, depth + 1)?))),
        4 => {
            let n = cur.count("SigPat::Or")?;
            let mut arms = Vec::with_capacity(n);
            for _ in 0..n {
                arms.push(get_sigpat(cur, depth + 1)?);
            }
            Ok(SigPat::Or(arms))
        }
        5 => Ok(SigPat::Json(get_jsonsig(cur, depth + 1)?)),
        6 => Ok(SigPat::Xml(Box::new(get_xmlsig(cur, depth + 1)?))),
        tag => Err(ArchiveError::BadTag { context: "SigPat", tag }),
    }
}

fn get_jsonsig(cur: &mut Cur<'_>, depth: usize) -> Result<JsonSig, ArchiveError> {
    if depth > MAX_PATTERN_DEPTH {
        return Err(ArchiveError::TooDeep { context: "JsonSig" });
    }
    match cur.u8("JsonSig")? {
        0 => {
            let n = cur.count("JsonSig::Object")?;
            let mut map = std::collections::BTreeMap::new();
            for _ in 0..n {
                let k = cur.str("JsonSig key")?;
                map.insert(k, get_jsonsig(cur, depth + 1)?);
            }
            Ok(JsonSig::Object(map))
        }
        1 => Ok(JsonSig::Array(Box::new(get_jsonsig(cur, depth + 1)?))),
        2 => Ok(JsonSig::Value(Box::new(get_sigpat(cur, depth + 1)?))),
        3 => Ok(JsonSig::Unknown),
        tag => Err(ArchiveError::BadTag { context: "JsonSig", tag }),
    }
}

fn get_xmlsig(cur: &mut Cur<'_>, depth: usize) -> Result<XmlSig, ArchiveError> {
    if depth > MAX_PATTERN_DEPTH {
        return Err(ArchiveError::TooDeep { context: "XmlSig" });
    }
    let name = cur.str("XmlSig name")?;
    let n_attrs = cur.count("XmlSig attrs")?;
    let mut attrs = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        let k = cur.str("XmlSig attr key")?;
        attrs.push((k, get_sigpat(cur, depth + 1)?));
    }
    let n_children = cur.count("XmlSig children")?;
    let mut children = Vec::with_capacity(n_children);
    for _ in 0..n_children {
        children.push(get_xmlsig(cur, depth + 1)?);
    }
    let text = match cur.u8("XmlSig text")? {
        0 => None,
        1 => Some(get_sigpat(cur, depth + 1)?),
        tag => return Err(ArchiveError::BadTag { context: "XmlSig text", tag }),
    };
    Ok(XmlSig { name, attrs, children, text })
}

fn get_bodysig(cur: &mut Cur<'_>) -> Result<BodySig, ArchiveError> {
    match cur.u8("BodySig")? {
        0 => {
            let n = cur.count("BodySig::Form")?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let k = get_sigpat(cur, 0)?;
                let v = get_sigpat(cur, 0)?;
                pairs.push((k, v));
            }
            Ok(BodySig::Form(pairs))
        }
        1 => Ok(BodySig::Json(get_jsonsig(cur, 0)?)),
        2 => Ok(BodySig::Xml(get_xmlsig(cur, 0)?)),
        3 => Ok(BodySig::Text(get_sigpat(cur, 0)?)),
        tag => Err(ArchiveError::BadTag { context: "BodySig", tag }),
    }
}

fn get_sig(cur: &mut Cur<'_>) -> Result<CompiledSig, ArchiveError> {
    let app = cur.str("sig app")?;
    let txn_id = cur.u64("sig txn_id")? as usize;
    let dp_class = cur.str("sig dp_class")?;
    let method = get_method(cur)?;
    let uri = get_sigpat(cur, 0)?;
    let body = match cur.u8("sig body")? {
        0 => None,
        1 => Some(get_bodysig(cur)?),
        tag => return Err(ArchiveError::BadTag { context: "sig body", tag }),
    };
    let prefix = cur.str("sig prefix")?;
    Ok(CompiledSig { app, txn_id, dp_class, method, uri, body, prefix })
}

fn get_node(cur: &mut Cur<'_>) -> Result<TrieNode, ArchiveError> {
    let n_children = cur.count("node children")?;
    let mut children = Vec::with_capacity(n_children);
    for _ in 0..n_children {
        let label = cur.u8("child label")?;
        let child = cur.u32("child index")?;
        children.push((label, child));
    }
    let n_bucket = cur.count("node bucket")?;
    let mut bucket = Vec::with_capacity(n_bucket);
    for _ in 0..n_bucket {
        bucket.push(cur.u32("bucket id")?);
    }
    Ok(TrieNode { children, bucket })
}

fn expect_section<'a>(cur: &mut Cur<'a>, expected: u32) -> Result<Cur<'a>, ArchiveError> {
    let found = cur.u32("section tag")?;
    if found != expected {
        return Err(ArchiveError::BadSection { found, expected });
    }
    let len = cur.count("section length")?;
    Ok(Cur::new(cur.take(len, "section bytes")?))
}

/// Deserializes and validates archive bytes back into a
/// [`SignatureIndex`]. Every failure mode is a typed [`ArchiveError`].
pub fn read_archive(bytes: &[u8]) -> Result<SignatureIndex, ArchiveError> {
    let mut cur = Cur::new(bytes);
    let magic = cur.take(8, "magic")?;
    if magic != ARCHIVE_MAGIC {
        return Err(ArchiveError::BadMagic);
    }
    let version = cur.u32("version")?;
    if version != ARCHIVE_VERSION {
        return Err(ArchiveError::VersionMismatch { found: version, supported: ARCHIVE_VERSION });
    }
    let _reserved = cur.u32("reserved")?;
    let payload_len = cur.u64("payload length")? as usize;
    let expected_sum = cur.u64("payload checksum")?;
    let payload = cur.take(payload_len, "payload")?;
    if cur.remaining() > 0 {
        return Err(ArchiveError::TrailingBytes { count: cur.remaining() });
    }
    let actual_sum = fnv1a64(payload);
    if actual_sum != expected_sum {
        return Err(ArchiveError::ChecksumMismatch { expected: expected_sum, actual: actual_sum });
    }

    let mut pcur = Cur::new(payload);
    let mut sigs_cur = expect_section(&mut pcur, SECTION_SIGS)?;
    let n_sigs = sigs_cur.count("signature count")?;
    let mut sigs = Vec::with_capacity(n_sigs);
    for _ in 0..n_sigs {
        sigs.push(get_sig(&mut sigs_cur)?);
    }
    if sigs_cur.remaining() > 0 {
        return Err(ArchiveError::TrailingBytes { count: sigs_cur.remaining() });
    }
    let mut nodes_cur = expect_section(&mut pcur, SECTION_NODES)?;
    let n_nodes = nodes_cur.count("node count")?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        nodes.push(get_node(&mut nodes_cur)?);
    }
    if nodes_cur.remaining() > 0 {
        return Err(ArchiveError::TrailingBytes { count: nodes_cur.remaining() });
    }
    if pcur.remaining() > 0 {
        return Err(ArchiveError::TrailingBytes { count: pcur.remaining() });
    }

    let index = SignatureIndex { sigs, nodes };
    validate_layout(&index)?;
    Ok(index)
}

/// [`read_archive`] from a file.
pub fn read_archive_file(
    path: impl AsRef<std::path::Path>,
) -> Result<SignatureIndex, ArchiveError> {
    let bytes = std::fs::read(path.as_ref())
        .map_err(|e| ArchiveError::Io(format!("{}: {e}", path.as_ref().display())))?;
    read_archive(&bytes)
}

/// Structural validation of the decoded flat layouts — the guarantees
/// [`SignatureIndex::classify`] relies on and a hostile or bit-rotted
/// archive could otherwise violate.
fn validate_layout(index: &SignatureIndex) -> Result<(), ArchiveError> {
    let bad = |msg: String| Err(ArchiveError::Invalid(msg));
    if index.nodes.is_empty() {
        return bad("no trie root".into());
    }
    let n_sigs = index.sigs.len();
    let n_nodes = index.nodes.len();
    let mut bucketed = vec![false; n_sigs];
    for (i, node) in index.nodes.iter().enumerate() {
        for w in node.children.windows(2) {
            if w[0].0 >= w[1].0 {
                return bad(format!("node {i}: child labels not strictly increasing"));
            }
        }
        for &(label, child) in &node.children {
            let child = child as usize;
            if child >= n_nodes {
                return bad(format!("node {i}: child {child} out of range ({n_nodes} nodes)"));
            }
            if child <= i {
                return bad(format!(
                    "node {i}: child {child} not forward-pointing (label {label:#04x})"
                ));
            }
        }
        for w in node.bucket.windows(2) {
            if w[0] >= w[1] {
                return bad(format!("node {i}: bucket ids not strictly increasing"));
            }
        }
        for &id in &node.bucket {
            let id = id as usize;
            if id >= n_sigs {
                return bad(format!("node {i}: bucket id {id} out of range ({n_sigs} sigs)"));
            }
            if bucketed[id] {
                return bad(format!("signature {id} appears in more than one bucket"));
            }
            bucketed[id] = true;
        }
    }
    if let Some(id) = bucketed.iter().position(|b| !b) {
        return bad(format!("signature {id} missing from every trie bucket"));
    }
    for (id, sig) in index.sigs.iter().enumerate() {
        if sig.prefix != sig.uri.literal_prefix() {
            return bad(format!("signature {id}: stored prefix diverges from its URI pattern"));
        }
        // The prefix must walk to a node whose bucket holds this id.
        let mut node = 0usize;
        for &b in sig.prefix.as_bytes() {
            match index.nodes[node].children.binary_search_by_key(&b, |e| e.0) {
                Ok(i) => node = index.nodes[node].children[i].1 as usize,
                Err(_) => return bad(format!("signature {id}: prefix walks off the trie")),
            }
        }
        if !index.nodes[node].bucket.contains(&(id as u32)) {
            return bad(format!("signature {id}: prefix node does not bucket it"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_core::metrics::Metrics;
    use extractocol_core::pairing::Pairing;
    use extractocol_core::report::{AnalysisReport, Stats, TxnReport};
    use extractocol_http::Request;

    fn small_index() -> SignatureIndex {
        let mut body = JsonSig::object();
        body.put("id", JsonSig::Value(Box::new(SigPat::Unknown(TypeHint::Num))));
        let txns = vec![
            TxnReport {
                id: 0,
                dp_class: "java.net.HttpURLConnection".into(),
                root: "t.C.go".into(),
                method: HttpMethod::Get,
                uri_regex: String::new(),
                uri: SigPat::Concat(vec![
                    SigPat::lit("http://h/api/"),
                    SigPat::Unknown(TypeHint::Num),
                    SigPat::Rep(Box::new(SigPat::lit("/x"))),
                ]),
                headers: Vec::new(),
                header_sigs: Vec::new(),
                request_body: None,
                response: None,
                pairing: Pairing::Unique,
                origins: Vec::new(),
                consumptions: Vec::new(),
            },
            TxnReport {
                id: 1,
                dp_class: "org.apache.http.client.HttpClient".into(),
                root: "t.C.post".into(),
                method: HttpMethod::Post,
                uri_regex: String::new(),
                uri: SigPat::lit("http://h/api/login"),
                headers: Vec::new(),
                header_sigs: Vec::new(),
                request_body: Some(BodySig::Json(body)),
                response: None,
                pairing: Pairing::Unique,
                origins: Vec::new(),
                consumptions: Vec::new(),
            },
        ];
        SignatureIndex::compile(&[AnalysisReport {
            app: "demo".into(),
            transactions: txns,
            dependencies: Vec::new(),
            stats: Stats::default(),
            metrics: Metrics::default(),
        }])
    }

    #[test]
    fn round_trip_preserves_the_index() {
        let index = small_index();
        let bytes = write_archive(&index);
        let loaded = read_archive(&bytes).expect("load");
        assert_eq!(loaded.len(), index.len());
        assert_eq!(loaded.trie_nodes(), index.trie_nodes());
        for (a, b) in index.sigs().iter().zip(loaded.sigs()) {
            assert_eq!(a.app, b.app);
            assert_eq!(a.txn_id, b.txn_id);
            assert_eq!(a.method, b.method);
            assert_eq!(a.uri, b.uri);
            assert_eq!(a.body, b.body);
            assert_eq!(a.prefix, b.prefix);
        }
        // Re-serialization is byte-identical (lossless decode).
        assert_eq!(write_archive(&loaded), bytes);
    }

    #[test]
    fn verdicts_survive_the_round_trip() {
        let index = small_index();
        let loaded = read_archive(&write_archive(&index)).expect("load");
        for req in [
            Request::get("http://h/api/42/x/x"),
            Request::get("http://h/api/nope"),
            Request::post("http://h/api/login", extractocol_http::Body::Empty),
        ] {
            assert_eq!(index.classify(&req), loaded.classify(&req));
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = write_archive(&small_index());
        bytes[0] ^= 0xFF;
        assert!(matches!(read_archive(&bytes), Err(ArchiveError::BadMagic)));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = write_archive(&small_index());
        bytes[8] = 99; // version field, LE low byte
        assert!(matches!(
            read_archive(&bytes),
            Err(ArchiveError::VersionMismatch { found: 99, supported: ARCHIVE_VERSION })
        ));
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut bytes = write_archive(&small_index());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        match read_archive(&bytes) {
            Err(ArchiveError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_cut() {
        let bytes = write_archive(&small_index());
        // Any strict prefix must fail with a typed error, never panic.
        for cut in 0..bytes.len() {
            match read_archive(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("truncated archive ({cut}/{} bytes) loaded", bytes.len()),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = write_archive(&small_index());
        bytes.push(0x00);
        assert!(matches!(read_archive(&bytes), Err(ArchiveError::TrailingBytes { count: 1 })));
    }

    #[test]
    fn empty_index_round_trips() {
        let index = SignatureIndex::compile(&[]);
        let loaded = read_archive(&write_archive(&index)).expect("load");
        assert!(loaded.is_empty());
        assert_eq!(loaded.trie_nodes(), 1);
    }

    #[test]
    fn hostile_count_fields_cannot_drive_allocation() {
        // A declared element count larger than the remaining payload is
        // rejected before any allocation happens.
        let index = small_index();
        let mut bytes = write_archive(&index);
        // The signature-count u64 sits right after the SIGS section
        // header (32-byte file header + 4-byte tag + 8-byte length).
        let count_at = 32 + 4 + 8;
        bytes[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        match read_archive(&bytes) {
            // Checksum catches the mutation first unless recomputed.
            Err(ArchiveError::ChecksumMismatch { .. }) => {}
            other => panic!("expected typed rejection, got {other:?}"),
        }
        // Recompute the checksum so the count field itself is exercised.
        let payload_start = 32;
        let sum = fnv1a64(&bytes[payload_start..]);
        bytes[24..32].copy_from_slice(&sum.to_le_bytes());
        match read_archive(&bytes) {
            Err(ArchiveError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn layout_validation_rejects_inconsistent_tables() {
        let index = small_index();
        // Drop a signature from its bucket: rebuild with an empty root
        // bucket and a dangling signature.
        let mut broken = index.clone();
        for node in &mut broken.nodes {
            node.bucket.clear();
        }
        let bytes = write_archive(&broken);
        match read_archive(&bytes) {
            Err(ArchiveError::Invalid(msg)) => {
                assert!(msg.contains("missing from every trie bucket"), "{msg}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }
}
