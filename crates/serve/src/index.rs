//! The compiled signature index: an immutable, deterministic structure
//! that answers "which reconstructed transaction does this request belong
//! to?" in far less work than a linear scan over every signature.
//!
//! # Layout
//!
//! Compilation flattens an [`AnalysisReport`] corpus into one global
//! signature table (`Vec<CompiledSig>`, id = position) and a **byte-trie**
//! over each URI signature's *mandatory literal prefix*
//! ([`SigPat::literal_prefix`]): host plus leading path segments, stopping
//! at the first variable part and at `%`-escaped bytes. Every signature
//! lives in exactly one trie bucket — the node its prefix spells out;
//! signatures with no literal prefix (variable hosts, top-level
//! disjunctions, dynamically derived `GET (.*)` URIs) land in the **root
//! fallback bucket** and are candidates for every request.
//!
//! # Candidate pruning
//!
//! Classification walks the trie along the request URI's bytes, unioning
//! the buckets it passes. Anchored matching makes this sound: a signature
//! can only match a URI that starts with its literal prefix, and every
//! such prefix node lies on the walked path — so the candidate set is a
//! superset of all possibly-matching signatures. Only the survivors reach
//! the structural matcher ([`SigPat::matches_budgeted`]) and, for requests
//! carrying a body against a body-constrained signature, the tree-sig
//! check ([`request_body_matches`]).
//!
//! # Determinism
//!
//! * Signature ids are assigned in input order (report order, then
//!   transaction order within a report); compiling the same reports in
//!   the same order yields a byte-identical index.
//! * Candidates are evaluated in ascending id order and the first full
//!   match wins, which is exactly the brute-force linear-scan rule —
//!   [`SignatureIndex::classify`] and [`SignatureIndex::classify_brute`]
//!   agree on every input (property-tested corpus-wide).
//! * Running out of match budget counts as a non-match for that candidate
//!   (recorded in [`Probe::budget_exhausted`]) under *both* strategies, so
//!   pruning can never flip a verdict.

use extractocol_core::conformance::request_body_matches_budgeted;
use extractocol_core::report::AnalysisReport;
use extractocol_core::sigbuild::BodySig;
use extractocol_core::siglang::SigPat;
use extractocol_http::regexlite::DEFAULT_MATCH_BUDGET;
use extractocol_http::{HttpMethod, Request};

/// One signature compiled into the index, with full provenance.
#[derive(Clone, Debug)]
pub struct CompiledSig {
    /// App the signature was extracted from.
    pub app: String,
    /// `TxnReport::id` within that app's report.
    pub txn_id: usize,
    /// Demarcation-point class of the transaction.
    pub dp_class: String,
    /// Request method the signature constrains.
    pub method: HttpMethod,
    /// The URI signature (normalized).
    pub uri: SigPat,
    /// Request-body signature, enforced when the classified request
    /// carries a body.
    pub body: Option<BodySig>,
    /// The trie key: the URI's mandatory literal prefix.
    pub prefix: String,
}

/// One trie node: sorted byte-labelled edges plus the bucket of signatures
/// whose literal prefix ends exactly here. Crate-visible so the archive
/// codec ([`crate::archive`]) can flatten and rebuild the layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct TrieNode {
    /// Sorted by byte label; resolved with binary search.
    pub(crate) children: Vec<(u8, u32)>,
    /// Signature ids whose prefix spells the path to this node.
    pub(crate) bucket: Vec<u32>,
}

/// Classification outcome. `Match` carries the winning signature id —
/// resolve provenance through [`SignatureIndex::sig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The lowest-id signature that fully matched.
    Match(u32),
    /// No compiled signature matched — a deterministic verdict, not an
    /// error (raw-socket ad/analytics traffic is statically invisible by
    /// design).
    Unmatched,
}

/// Per-request work counters (the pruning-effectiveness telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Probe {
    /// Candidate-set size after trie pruning (before the method filter).
    pub candidates: usize,
    /// Structural-matcher invocations actually performed.
    pub structural_evals: usize,
    /// Candidates whose match ran out of step budget (counted as
    /// non-matches).
    pub budget_exhausted: usize,
}

/// The immutable signature index. Cheap to share across worker threads
/// (`&SignatureIndex` is `Sync`); all classification is read-only.
#[derive(Clone, Debug)]
pub struct SignatureIndex {
    pub(crate) sigs: Vec<CompiledSig>,
    pub(crate) nodes: Vec<TrieNode>,
}

impl SignatureIndex {
    /// Compiles a report corpus. Ids are assigned in input order; the
    /// result is byte-identical for identical input order.
    pub fn compile(reports: &[AnalysisReport]) -> SignatureIndex {
        let mut index = SignatureIndex { sigs: Vec::new(), nodes: vec![TrieNode::default()] };
        for report in reports {
            for txn in &report.transactions {
                let uri = txn.uri.clone().normalize();
                let prefix = uri.literal_prefix();
                let id = index.sigs.len() as u32;
                index.sigs.push(CompiledSig {
                    app: report.app.clone(),
                    txn_id: txn.id,
                    dp_class: txn.dp_class.clone(),
                    method: txn.method,
                    uri,
                    body: txn.request_body.clone(),
                    prefix: prefix.clone(),
                });
                let mut node = 0usize;
                for &b in prefix.as_bytes() {
                    node = match index.nodes[node].children.binary_search_by_key(&b, |e| e.0) {
                        Ok(i) => index.nodes[node].children[i].1 as usize,
                        Err(i) => {
                            let next = index.nodes.len();
                            index.nodes.push(TrieNode::default());
                            index.nodes[node].children.insert(i, (b, next as u32));
                            next
                        }
                    };
                }
                index.nodes[node].bucket.push(id);
            }
        }
        index
    }

    /// Number of compiled signatures.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// True when no signature was compiled.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// The compiled signature behind a [`Verdict::Match`] id.
    pub fn sig(&self, id: u32) -> &CompiledSig {
        &self.sigs[id as usize]
    }

    /// All compiled signatures, in id order.
    pub fn sigs(&self) -> &[CompiledSig] {
        &self.sigs
    }

    /// Trie node count (root included) — index-size telemetry.
    pub fn trie_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The pruned candidate set for a URI: every signature whose literal
    /// prefix is a prefix of `uri`, in ascending id order.
    pub fn candidates(&self, uri: &str) -> Vec<u32> {
        let mut out: Vec<u32> = self.nodes[0].bucket.clone();
        let mut node = 0usize;
        for &b in uri.as_bytes() {
            match self.nodes[node].children.binary_search_by_key(&b, |e| e.0) {
                Ok(i) => {
                    node = self.nodes[node].children[i].1 as usize;
                    out.extend_from_slice(&self.nodes[node].bucket);
                }
                Err(_) => break,
            }
        }
        // Buckets are visited shallow-to-deep; ids interleave across
        // depths, and the first-match rule needs ascending order.
        out.sort_unstable();
        out
    }

    /// Classifies one request through the trie-pruned path: first full
    /// match in ascending id order, or `Unmatched`.
    pub fn classify(&self, req: &Request) -> (Verdict, Probe) {
        let cands = self.candidates(&req.uri.raw);
        let mut probe = Probe { candidates: cands.len(), ..Probe::default() };
        for id in cands {
            if self.eval_candidate(id, req, &mut probe) {
                return (Verdict::Match(id), probe);
            }
        }
        (Verdict::Unmatched, probe)
    }

    /// The reference strategy: linear scan over *all* compiled signatures,
    /// same per-candidate check, same first-match rule. `classify` must
    /// agree with this on every input — the differential property test
    /// holds the two together.
    pub fn classify_brute(&self, req: &Request) -> (Verdict, Probe) {
        let mut probe = Probe { candidates: self.sigs.len(), ..Probe::default() };
        for id in 0..self.sigs.len() as u32 {
            if self.eval_candidate(id, req, &mut probe) {
                return (Verdict::Match(id), probe);
            }
        }
        (Verdict::Unmatched, probe)
    }

    /// Full per-candidate check: method, structural URI match, and — when
    /// both sides have one — the request-body tree signature.
    fn eval_candidate(&self, id: u32, req: &Request, probe: &mut Probe) -> bool {
        let sig = &self.sigs[id as usize];
        if sig.method != req.method {
            return false;
        }
        probe.structural_evals += 1;
        match sig.uri.matches_budgeted(&req.uri.raw, DEFAULT_MATCH_BUDGET) {
            Ok(true) => {}
            Ok(false) => return false,
            Err(_) => {
                probe.budget_exhausted += 1;
                return false;
            }
        }
        if let Some(body_sig) = &sig.body {
            if !req.body.is_empty() {
                match request_body_matches_budgeted(body_sig, &req.body, DEFAULT_MATCH_BUDGET) {
                    Ok(true) => {}
                    Ok(false) => return false,
                    Err(_) => {
                        probe.budget_exhausted += 1;
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_core::metrics::Metrics;
    use extractocol_core::pairing::Pairing;
    use extractocol_core::report::{Stats, TxnReport};
    use extractocol_core::siglang::{JsonSig, TypeHint};
    use extractocol_http::Body;

    fn txn(id: usize, method: HttpMethod, uri: SigPat) -> TxnReport {
        TxnReport {
            id,
            dp_class: "org.apache.http.client.HttpClient".into(),
            root: "t.C.go".into(),
            method,
            uri_regex: uri.to_regex(),
            uri,
            headers: Vec::new(),
            header_sigs: Vec::new(),
            request_body: None,
            response: None,
            pairing: Pairing::Unique,
            origins: Vec::new(),
            consumptions: Vec::new(),
        }
    }

    fn report(app: &str, txns: Vec<TxnReport>) -> AnalysisReport {
        AnalysisReport {
            app: app.into(),
            transactions: txns,
            dependencies: Vec::new(),
            stats: Stats::default(),
            metrics: Metrics::default(),
        }
    }

    fn demo_index() -> SignatureIndex {
        let a = report(
            "alpha",
            vec![
                txn(
                    0,
                    HttpMethod::Get,
                    SigPat::Concat(vec![
                        SigPat::lit("http://a.example/talks/"),
                        SigPat::Unknown(TypeHint::Num),
                        SigPat::lit("/ad.json"),
                    ]),
                ),
                txn(
                    1,
                    HttpMethod::Get,
                    SigPat::Concat(vec![
                        SigPat::lit("http://a.example/search?q="),
                        SigPat::any_str(),
                    ]),
                ),
            ],
        );
        let b = report(
            "beta",
            vec![
                // Variable host: must live in the root fallback bucket.
                txn(
                    0,
                    HttpMethod::Get,
                    SigPat::Concat(vec![SigPat::any_str(), SigPat::lit("/status.json")]),
                ),
                txn(1, HttpMethod::Post, SigPat::lit("http://b.example/api/login")),
            ],
        );
        SignatureIndex::compile(&[a, b])
    }

    #[test]
    fn compile_assigns_ids_in_input_order() {
        let idx = demo_index();
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.sig(0).app, "alpha");
        assert_eq!(idx.sig(0).txn_id, 0);
        assert_eq!(idx.sig(2).app, "beta");
        assert_eq!(idx.sig(2).prefix, "", "variable host has no literal prefix");
        assert_eq!(idx.sig(3).prefix, "http://b.example/api/login");
        assert!(idx.trie_nodes() > 1);
    }

    #[test]
    fn variable_host_signatures_classify_via_root_bucket() {
        let idx = demo_index();
        // No literal prefix in common with any trie path.
        let req = Request::get("https://cdn.elsewhere.net/status.json");
        let (verdict, probe) = idx.classify(&req);
        assert_eq!(verdict, Verdict::Match(2));
        // Only the root bucket survives pruning for this host.
        assert_eq!(probe.candidates, 1);
    }

    #[test]
    fn pruning_shrinks_candidates_without_changing_verdicts() {
        let idx = demo_index();
        let reqs = [
            Request::get("http://a.example/talks/2406/ad.json"),
            Request::get("http://a.example/search?q=cats"),
            Request::get("http://a.example/search"), // shares the prefix path, matches nothing
            Request::get("http://unrelated.example/x"),
            Request::post("http://b.example/api/login", Body::Empty),
        ];
        for req in &reqs {
            let (fast, probe) = idx.classify(req);
            let (brute, brute_probe) = idx.classify_brute(req);
            assert_eq!(fast, brute, "verdicts diverge on {}", req.uri.raw);
            assert!(probe.candidates <= brute_probe.candidates);
            assert!(probe.structural_evals <= brute_probe.structural_evals);
        }
        // The pruned path never touches the b.example signature for an
        // a.example request: root bucket (1) + the matching branch.
        let (_, probe) = idx.classify(&Request::get("http://a.example/talks/1/ad.json"));
        assert_eq!(probe.candidates, 2);
    }

    #[test]
    fn first_match_rule_is_lowest_id() {
        // Two signatures matching the same request: the earlier compiled
        // one wins, under both strategies.
        let r = report(
            "dup",
            vec![
                txn(
                    0,
                    HttpMethod::Get,
                    SigPat::Concat(vec![SigPat::lit("http://h/"), SigPat::any_str()]),
                ),
                txn(1, HttpMethod::Get, SigPat::lit("http://h/exact")),
            ],
        );
        let idx = SignatureIndex::compile(&[r]);
        let req = Request::get("http://h/exact");
        assert_eq!(idx.classify(&req).0, Verdict::Match(0));
        assert_eq!(idx.classify_brute(&req).0, Verdict::Match(0));
    }

    #[test]
    fn body_constrained_signature_rejects_wrong_bodies() {
        let mut t = txn(0, HttpMethod::Post, SigPat::lit("http://h/api"));
        let mut j = JsonSig::object();
        j.put("id", JsonSig::Value(Box::new(SigPat::Unknown(TypeHint::Num))));
        t.request_body = Some(BodySig::Json(j));
        let idx = SignatureIndex::compile(&[report("bodied", vec![t])]);

        let ok = Request::post(
            "http://h/api",
            Body::Json(extractocol_http::JsonValue::parse(r#"{"id":"42"}"#).unwrap()),
        );
        assert_eq!(idx.classify(&ok).0, Verdict::Match(0));
        let wrong = Request::post(
            "http://h/api",
            Body::Json(extractocol_http::JsonValue::parse(r#"{"other":true}"#).unwrap()),
        );
        assert_eq!(idx.classify(&wrong).0, Verdict::Unmatched);
        // A bodyless request against a body-constrained signature still
        // matches on the URI (the signature describes what the app sends
        // when it sends one).
        let empty = Request::post("http://h/api", Body::Empty);
        assert_eq!(idx.classify(&empty).0, Verdict::Match(0));
        // Brute force agrees on all three.
        for req in [&ok, &wrong, &empty] {
            assert_eq!(idx.classify(req).0, idx.classify_brute(req).0);
        }
    }

    #[test]
    fn method_mismatch_never_reaches_the_matcher() {
        let idx = demo_index();
        let req = Request::post("http://a.example/search?q=cats", Body::Empty);
        let (verdict, probe) = idx.classify(&req);
        assert_eq!(verdict, Verdict::Unmatched);
        // Candidates include the GET signatures (pruning is URI-only) but
        // none are structurally evaluated except same-method ones.
        assert_eq!(probe.structural_evals, 0);
    }

    #[test]
    fn empty_index_classifies_deterministically() {
        let idx = SignatureIndex::compile(&[]);
        assert!(idx.is_empty());
        let (v, p) = idx.classify(&Request::get("http://h/x"));
        assert_eq!(v, Verdict::Unmatched);
        assert_eq!(p, Probe::default());
    }
}
