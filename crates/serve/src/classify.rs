//! Batch/streaming classification over the compiled index, driven by the
//! `core::par` worker pool.
//!
//! Requests are split into **fixed-size shards** (512 requests) regardless
//! of the jobs count, each shard is classified independently, and the
//! per-shard stats are merged with order-independent operations (sums,
//! max, and a `BTreeMap` for per-app counts). Because the shard
//! boundaries don't depend on the worker count, `jobs=1` and `jobs=8`
//! produce **byte-identical** verdict vectors *and* stats — pinned by the
//! corpus-wide differential test.

use crate::index::{SignatureIndex, Verdict};
use crate::metrics::ServeMetrics;
use extractocol_core::par::parallel_map;
use extractocol_core::TraceCollector;
use extractocol_http::Request;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Shard size for batch classification. Fixed (not derived from `jobs`)
/// so stats aggregation is invariant under the worker count.
pub const SHARD_SIZE: usize = 512;

/// Aggregated, order-independent statistics of one batch run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassifyStats {
    /// Requests classified.
    pub requests: usize,
    /// Signatures in the index the batch ran against.
    pub signatures: usize,
    /// Requests that matched some signature.
    pub matched: usize,
    /// Requests with a deterministic `Unmatched` verdict.
    pub unmatched: usize,
    /// Sum of candidate-set sizes over all requests.
    pub candidates_total: usize,
    /// Sum of structural-matcher invocations over all requests.
    pub structural_evals: usize,
    /// Candidates that exhausted the match budget (counted as non-matches).
    pub budget_exhausted: usize,
    /// Largest single-request candidate set seen.
    pub max_candidates: usize,
    /// Matches attributed per app, sorted by app name.
    pub per_app: BTreeMap<String, usize>,
}

impl ClassifyStats {
    /// Merges another shard's stats in (order-independent).
    pub fn merge(&mut self, other: &ClassifyStats) {
        self.requests += other.requests;
        self.matched += other.matched;
        self.unmatched += other.unmatched;
        self.candidates_total += other.candidates_total;
        self.structural_evals += other.structural_evals;
        self.budget_exhausted += other.budget_exhausted;
        self.max_candidates = self.max_candidates.max(other.max_candidates);
        for (app, n) in &other.per_app {
            *self.per_app.entry(app.clone()).or_insert(0) += n;
        }
    }

    /// Mean candidate-set size per request.
    pub fn avg_candidates(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.candidates_total as f64 / self.requests as f64
        }
    }

    /// Mean fraction of the index's signatures that reach the structural
    /// matcher per request — the pruning-effectiveness headline (the
    /// acceptance bar is ≤ 0.20).
    pub fn avg_eval_fraction(&self) -> f64 {
        if self.requests == 0 || self.signatures == 0 {
            0.0
        } else {
            self.structural_evals as f64 / (self.requests * self.signatures) as f64
        }
    }

    /// Mean fraction of signatures surviving trie pruning per request.
    pub fn avg_candidate_fraction(&self) -> f64 {
        if self.requests == 0 || self.signatures == 0 {
            0.0
        } else {
            self.candidates_total as f64 / (self.requests * self.signatures) as f64
        }
    }

    /// Human-readable rendering for the CLI.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "requests:          {}", self.requests);
        let _ = writeln!(out, "signatures:        {}", self.signatures);
        let _ = writeln!(out, "matched:           {}", self.matched);
        let _ = writeln!(out, "unmatched:         {}", self.unmatched);
        let _ = writeln!(out, "avg candidates:    {:.2}", self.avg_candidates());
        let _ = writeln!(out, "max candidates:    {}", self.max_candidates);
        let _ = writeln!(
            out,
            "candidate frac:    {:.4} (structural-eval frac {:.4})",
            self.avg_candidate_fraction(),
            self.avg_eval_fraction()
        );
        let _ = writeln!(out, "budget exhausted:  {}", self.budget_exhausted);
        for (app, n) in &self.per_app {
            let _ = writeln!(out, "  {app}: {n}");
        }
        out
    }
}

/// Classifies a batch of requests on `jobs` workers. Verdicts come back
/// in input order; stats are identical for any `jobs` value.
pub fn classify_batch(
    index: &SignatureIndex,
    requests: &[Request],
    jobs: usize,
) -> (Vec<Verdict>, ClassifyStats) {
    let shards: Vec<&[Request]> = requests.chunks(SHARD_SIZE).collect();
    let shard_results = parallel_map(&shards, jobs, |_, shard| classify_shard(index, shard));
    let mut verdicts = Vec::with_capacity(requests.len());
    let mut stats = ClassifyStats { signatures: index.len(), ..ClassifyStats::default() };
    for (vs, shard_stats) in shard_results {
        verdicts.extend(vs);
        stats.merge(&shard_stats);
    }
    (verdicts, stats)
}

/// [`classify_batch`] with instruments and spans: per-request counters,
/// the candidate-fraction distribution, per-verdict latency histograms,
/// and shard-imbalance telemetry into `metrics`; a `shard → request →
/// trie_probe/structural_match` span tree into `trace` when it records.
///
/// Verdicts and stats are identical to the plain path — only the
/// per-request timer and the metric updates ride along. Throughput
/// benchmarks keep using [`classify_batch`] for the timed run so the
/// gate measures the uninstrumented fast path.
pub fn classify_batch_observed(
    index: &SignatureIndex,
    requests: &[Request],
    jobs: usize,
    metrics: &ServeMetrics,
    trace: &TraceCollector,
) -> (Vec<Verdict>, ClassifyStats) {
    metrics.observe_index(index.len(), index.trie_nodes());
    let shards: Vec<&[Request]> = requests.chunks(SHARD_SIZE).collect();
    let shard_results = parallel_map(&shards, jobs, |i, shard| {
        let mut span = trace.span_in("shard", format!("shard:{i}"));
        span.attr("shard", i).attr("requests", shard.len());
        let t = Instant::now();
        let out = classify_shard_observed(index, shard, metrics, trace);
        (out, t.elapsed())
    });
    let mut verdicts = Vec::with_capacity(requests.len());
    let mut stats = ClassifyStats { signatures: index.len(), ..ClassifyStats::default() };
    let mut shard_durs = Vec::with_capacity(shard_results.len());
    for ((vs, shard_stats), dur) in shard_results {
        verdicts.extend(vs);
        stats.merge(&shard_stats);
        shard_durs.push(dur);
    }
    metrics.observe_shards(&shard_durs);
    (verdicts, stats)
}

/// Sequentially classifies one shard, feeding `metrics` and `trace`.
fn classify_shard_observed(
    index: &SignatureIndex,
    shard: &[Request],
    metrics: &ServeMetrics,
    trace: &TraceCollector,
) -> (Vec<Verdict>, ClassifyStats) {
    let mut verdicts = Vec::with_capacity(shard.len());
    let mut stats = ClassifyStats::default();
    for req in shard {
        let mut rspan = trace.span_in("request", "request");
        // The trie probe runs once more under its own span when tracing;
        // the metric path below times the real (single) classify call.
        if rspan.is_recording() {
            let mut ps = trace.span_in("step", "trie_probe");
            ps.attr("candidates", index.candidates(&req.uri.raw).len());
        }
        let t = Instant::now();
        let (verdict, probe) = {
            let mut ms = trace.span_in("step", "structural_match");
            let (verdict, probe) = index.classify(req);
            if ms.is_recording() {
                ms.attr("structural_evals", probe.structural_evals)
                    .attr("matched", matches!(verdict, Verdict::Match(_)));
            }
            (verdict, probe)
        };
        let latency = t.elapsed();
        metrics.observe_request(&verdict, &probe, index.len(), Some(latency));
        if rspan.is_recording() {
            rspan.attr("method", req.method.as_str()).attr("candidates", probe.candidates);
            if let Verdict::Match(id) = verdict {
                rspan.attr("sig_id", id as u64);
            }
        }
        stats.requests += 1;
        stats.candidates_total += probe.candidates;
        stats.structural_evals += probe.structural_evals;
        stats.budget_exhausted += probe.budget_exhausted;
        stats.max_candidates = stats.max_candidates.max(probe.candidates);
        match verdict {
            Verdict::Match(id) => {
                stats.matched += 1;
                *stats.per_app.entry(index.sig(id).app.clone()).or_insert(0) += 1;
            }
            Verdict::Unmatched => stats.unmatched += 1,
        }
        verdicts.push(verdict);
    }
    (verdicts, stats)
}

/// Sequentially classifies one shard.
fn classify_shard(index: &SignatureIndex, shard: &[Request]) -> (Vec<Verdict>, ClassifyStats) {
    let mut verdicts = Vec::with_capacity(shard.len());
    let mut stats = ClassifyStats::default();
    for req in shard {
        let (verdict, probe) = index.classify(req);
        stats.requests += 1;
        stats.candidates_total += probe.candidates;
        stats.structural_evals += probe.structural_evals;
        stats.budget_exhausted += probe.budget_exhausted;
        stats.max_candidates = stats.max_candidates.max(probe.candidates);
        match verdict {
            Verdict::Match(id) => {
                stats.matched += 1;
                *stats.per_app.entry(index.sig(id).app.clone()).or_insert(0) += 1;
            }
            Verdict::Unmatched => stats.unmatched += 1,
        }
        verdicts.push(verdict);
    }
    (verdicts, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_core::metrics::Metrics;
    use extractocol_core::pairing::Pairing;
    use extractocol_core::report::{AnalysisReport, Stats, TxnReport};
    use extractocol_core::siglang::SigPat;
    use extractocol_http::HttpMethod;

    fn small_index() -> SignatureIndex {
        let txns = (0..8)
            .map(|i| TxnReport {
                id: i,
                dp_class: "java.net.HttpURLConnection".into(),
                root: "t.C.go".into(),
                method: HttpMethod::Get,
                uri_regex: String::new(),
                uri: SigPat::Concat(vec![
                    SigPat::lit(&format!("http://h/api/{i}/")),
                    SigPat::any_str(),
                ]),
                headers: Vec::new(),
                header_sigs: Vec::new(),
                request_body: None,
                response: None,
                pairing: Pairing::Unique,
                origins: Vec::new(),
                consumptions: Vec::new(),
            })
            .collect();
        SignatureIndex::compile(&[AnalysisReport {
            app: "demo".into(),
            transactions: txns,
            dependencies: Vec::new(),
            stats: Stats::default(),
            metrics: Metrics::default(),
        }])
    }

    #[test]
    fn batch_stats_are_jobs_invariant() {
        let idx = small_index();
        let reqs: Vec<Request> = (0..1500)
            .map(|i| Request::get(&format!("http://h/api/{}/item{}", i % 10, i)))
            .collect();
        let (v1, s1) = classify_batch(&idx, &reqs, 1);
        let (v8, s8) = classify_batch(&idx, &reqs, 8);
        assert_eq!(v1, v8);
        assert_eq!(s1, s8);
        assert_eq!(s1.requests, 1500);
        assert_eq!(s1.matched + s1.unmatched, 1500);
        // 8 of every 10 request shapes exist in the index.
        assert_eq!(
            s1.matched,
            reqs.iter()
                .filter(|r| !r.uri.raw.contains("/8/") && !r.uri.raw.contains("/9/"))
                .count()
        );
        assert_eq!(s1.per_app.get("demo"), Some(&s1.matched));
    }

    #[test]
    fn observed_batch_matches_the_plain_path() {
        let idx = small_index();
        let reqs: Vec<Request> =
            (0..700).map(|i| Request::get(&format!("http://h/api/{}/item{}", i % 10, i))).collect();
        let (v, s) = classify_batch(&idx, &reqs, 2);
        let metrics = ServeMetrics::new();
        let trace = TraceCollector::enabled();
        let (vo, so) = classify_batch_observed(&idx, &reqs, 1, &metrics, &trace);
        assert_eq!(v, vo);
        assert_eq!(s, so);
        let det = metrics.registry.render_deterministic();
        assert!(det.contains(&format!("serve_classify_requests_total {}", s.requests)));
        assert!(det
            .contains(&format!("serve_classify_verdict_total{{verdict=\"match\"}} {}", s.matched)));
        // jobs=1 runs shards inline: request spans nest under shard spans,
        // probe/match steps under requests.
        let spans = trace.drain();
        let shard = spans.iter().find(|r| r.cat == "shard").expect("shard span");
        assert_eq!(shard.depth, 0);
        assert!(spans.iter().any(|r| r.cat == "request" && r.depth == 1));
        assert!(spans.iter().any(|r| r.cat == "step" && r.name == "trie_probe" && r.depth == 2));
        assert!(spans
            .iter()
            .any(|r| r.cat == "step" && r.name == "structural_match" && r.depth == 2));
    }

    #[test]
    fn observed_metrics_are_jobs_invariant() {
        let idx = small_index();
        let reqs: Vec<Request> = (0..1200)
            .map(|i| Request::get(&format!("http://h/api/{}/item{}", i % 10, i)))
            .collect();
        let snapshot = |jobs: usize| {
            let metrics = ServeMetrics::new();
            classify_batch_observed(&idx, &reqs, jobs, &metrics, &TraceCollector::disabled());
            metrics.registry.render_deterministic()
        };
        assert_eq!(snapshot(1), snapshot(8));
    }

    #[test]
    fn empty_batch_yields_default_stats() {
        let idx = small_index();
        let (v, s) = classify_batch(&idx, &[], 4);
        assert!(v.is_empty());
        assert_eq!(s.requests, 0);
        assert_eq!(s.signatures, 8);
        assert_eq!(s.avg_candidates(), 0.0);
    }

    #[test]
    fn stats_text_mentions_the_headline_numbers() {
        let idx = small_index();
        let reqs = vec![Request::get("http://h/api/3/x")];
        let (_, s) = classify_batch(&idx, &reqs, 1);
        let text = s.to_text();
        assert!(text.contains("requests:          1"));
        assert!(text.contains("demo: 1"));
    }
}
