//! # extractocol-bench
//!
//! The benchmark harness: one report binary per table/figure of the
//! paper's evaluation (run with `cargo run -p extractocol-bench --bin
//! <id> --release`) plus dependency-free timing/ablation benches (`cargo
//! bench` — each bench is a plain `main` built on [`timing`], so no
//! external harness crate is needed and the workspace builds offline).
//! EXPERIMENTS.md records the paper-vs-measured comparison each binary
//! prints.

use extractocol_corpus::{AppSpec, RowCounts};
use extractocol_dynamic::eval::AppEval;
use std::fmt::Write as _;

pub mod timing {
    //! A minimal wall-clock benchmark harness (criterion replacement):
    //! warm up, run a fixed number of timed iterations, report
    //! min/median/mean. Deliberately tiny — the benches here compare
    //! *shapes* (small ≪ large, sequential vs parallel), not nanoseconds.

    use std::time::{Duration, Instant};

    /// Timing summary over the measured iterations.
    #[derive(Clone, Copy, Debug)]
    pub struct Sample {
        pub min: Duration,
        pub median: Duration,
        pub mean: Duration,
        pub iters: u32,
    }

    impl Sample {
        /// `self.mean / other.mean` — e.g. sequential-vs-parallel speedup.
        pub fn speedup_over(&self, other: &Sample) -> f64 {
            if other.mean.as_nanos() == 0 {
                return 1.0;
            }
            self.mean.as_secs_f64() / other.mean.as_secs_f64()
        }
    }

    /// Runs `f` for `warmup` untimed and `iters` timed iterations.
    pub fn measure<T>(warmup: u32, iters: u32, mut f: impl FnMut() -> T) -> Sample {
        for _ in 0..warmup {
            std::hint::black_box(f());
        }
        let mut times: Vec<Duration> = Vec::with_capacity(iters as usize);
        for _ in 0..iters.max(1) {
            let t = Instant::now();
            std::hint::black_box(f());
            times.push(t.elapsed());
        }
        times.sort_unstable();
        let total: Duration = times.iter().sum();
        Sample {
            min: times[0],
            median: times[times.len() / 2],
            mean: total / times.len() as u32,
            iters: times.len() as u32,
        }
    }

    /// Measures and prints one labelled benchmark line.
    pub fn bench<T>(label: &str, warmup: u32, iters: u32, f: impl FnMut() -> T) -> Sample {
        let s = measure(warmup, iters, f);
        println!(
            "{label:<56} min {:>10.3?}  median {:>10.3?}  mean {:>10.3?}  ({} iters)",
            s.min, s.median, s.mean, s.iters
        );
        s
    }
}

/// Formats a Table 1 cell triple.
pub fn cell(e: usize, m: usize, t: usize) -> String {
    format!("{e} / {m} / {t}")
}

/// Renders a `RowCounts` as the 8 Table 1 columns.
pub fn row_cells(c: &RowCounts) -> [usize; 8] {
    [c.get, c.post, c.put, c.delete, c.query, c.json, c.xml, c.pairs]
}

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ =
                    write!(line, "{:<width$}  ", c, width = widths.get(i).copied().unwrap_or(0));
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r, &widths));
        }
        out
    }
}

/// Evaluates one app and returns the eval plus measured counts.
pub fn eval_app(app: &AppSpec) -> AppEval {
    AppEval::run(app)
}

/// Checks how closely the measured Extractocol counts track the corpus
/// ground truth; returns per-field absolute deviations.
pub fn deviation(measured: &RowCounts, truth: &RowCounts) -> usize {
    measured.get.abs_diff(truth.get)
        + measured.post.abs_diff(truth.post)
        + measured.put.abs_diff(truth.put)
        + measured.delete.abs_diff(truth.delete)
        + measured.pairs.abs_diff(truth.pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_app(app: &extractocol_corpus::AppSpec) {
        let eval = eval_app(app);
        let measured = eval.extractocol_counts();
        // The paper's configuration disables the async heuristic for
        // open-source apps (§5.1), losing async-gated request bodies.
        let truth = app.truth.static_counts_with(!app.truth.open_source);
        assert_eq!(
            (measured.get, measured.post, measured.put, measured.delete),
            (truth.get, truth.post, truth.put, truth.delete),
            "{}: methods\n{}",
            app.truth.name,
            eval.report.to_table()
        );
        assert_eq!(measured.pairs, truth.pairs, "{}: pairs", app.truth.name);
        assert_eq!(measured.json, truth.json, "{}: json", app.truth.name);
        assert_eq!(measured.xml, truth.xml, "{}: xml", app.truth.name);
        assert!(
            eval.validity.orphan_lines.is_empty(),
            "{}: unexplained trace lines {:?}",
            app.truth.name,
            eval.validity.orphan_lines
        );
    }

    /// The core calibration check: on every corpus app, the measured
    /// method counts equal the ground truth (what a perfect analysis of
    /// the model yields). This is the internal consistency behind every
    /// table.
    #[test]
    fn analysis_tracks_ground_truth_on_open_source_corpus() {
        for app in extractocol_corpus::open_source_apps() {
            check_app(&app);
        }
    }

    #[test]
    fn analysis_tracks_ground_truth_on_closed_source_corpus() {
        for app in extractocol_corpus::closed_source_apps() {
            check_app(&app);
        }
    }
}
