//! Fig. 5: request/response pairing under code reuse. Two transactions
//! share a demarcation point through a common helper; disjoint sub-slice
//! preprocessing pairs each request with its own response handler.

use extractocol_analysis::{CallGraph, CallbackRegistry};
use extractocol_core::{demarcation, pairing, semantics::SemanticModel, slicing};
use extractocol_ir::{ApkBuilder, ProgramIndex, Type, Value};

fn main() {
    // The Fig. 5 fixture: requestA/requestB -> common2(DP) -> responseA/B.
    let mut b = ApkBuilder::new("fig5", "t");
    extractocol_core::stubs::install(&mut b);
    b.class("t.Net", |c| {
        c.static_method("common2", vec![Type::string()], Type::string(), |m| {
            let url = m.arg(0, "url");
            let req = m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
            let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
            let resp = m.vcall(
                client,
                "org.apache.http.client.HttpClient",
                "execute",
                vec![Value::Local(req)],
                Type::object("org.apache.http.HttpResponse"),
            );
            let ent = m.vcall(
                resp,
                "org.apache.http.HttpResponse",
                "getEntity",
                vec![],
                Type::object("org.apache.http.HttpEntity"),
            );
            let body = m.scall(
                "org.apache.http.util.EntityUtils",
                "toString",
                vec![Value::Local(ent)],
                Type::string(),
            );
            m.ret(body);
        });
        for (name, path, key) in
            [("A", "http://svc/a.json", "alpha"), ("B", "http://svc/b.json", "beta")]
        {
            let req_m = format!("request{name}");
            let resp_m = format!("response{name}");
            let resp_m2 = resp_m.clone();
            c.static_method(&req_m, vec![], Type::Void, move |m| {
                let url = m.temp(Type::string());
                m.cstr(url, path);
                let body = m.scall("t.Net", "common2", vec![Value::Local(url)], Type::string());
                m.scall_void("t.Net", &resp_m2, vec![Value::Local(body)]);
                m.ret_void();
            });
            let key = key.to_string();
            c.static_method(&resp_m, vec![Type::string()], Type::Void, move |m| {
                let body = m.arg(0, "body");
                let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
                let v = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str(&key)],
                    Type::string(),
                );
                let _ = v;
                m.ret_void();
            });
        }
    });
    let apk = b.build();
    let prog = ProgramIndex::new(&apk);
    let model = SemanticModel::standard();
    let graph = CallGraph::build(&prog, &CallbackRegistry::android_defaults());
    let sites = demarcation::scan(&prog, &model);
    println!("demarcation points: {} (shared by both transactions)", sites.len());
    let slices = slicing::slice_all(&prog, &graph, &model, &sites, &Default::default());
    let txns = pairing::pair(&prog, &graph, &slices);
    println!("transaction candidates: {}", txns.len());
    for t in &txns {
        let root = prog.method(t.root).name.clone();
        let resp_methods: Vec<String> = {
            let mut v: Vec<String> = t
                .response_stmts
                .iter()
                .map(|(m, _)| prog.method(*m).name.clone())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            v.sort();
            v
        };
        println!("  {root} -> pairing {:?}, response code in {resp_methods:?}", t.pairing);
    }
    assert_eq!(sites.len(), 1);
    assert_eq!(txns.len(), 2);
    println!("\npaper: \"we can pair A's request with A's response slice and not");
    println!("with B's response slice\" — one-to-one pairing recovered.");
}
