//! Table 1: signatures identified for open-source and closed-source apps.
//!
//! Each cell is `Extractocol / manual fuzzing / third`, where the third
//! method is source-code ground truth for open-source apps and automatic
//! UI fuzzing (PUMA) for closed-source ones. "paper:" lines reproduce the
//! published row for comparison.
//!
//! Usage: `cargo run -p extractocol-bench --release --bin table1
//! [--closed] [--open] [--obfuscate]`

use extractocol_bench::{cell, row_cells, Table};
use extractocol_dynamic::eval::AppEval;
use extractocol_dynamic::run_perfect_fuzzer;
use extractocol_ir::obfuscate::{obfuscate, ObfuscationOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let only_open = args.iter().any(|a| a == "--open");
    let only_closed = args.iter().any(|a| a == "--closed");
    let obfuscate_apps = args.iter().any(|a| a == "--obfuscate");

    let apps: Vec<_> = extractocol_corpus::all_apps()
        .into_iter()
        .filter(|a| {
            (!only_open && !only_closed)
                || (only_open && a.truth.open_source)
                || (only_closed && !a.truth.open_source)
        })
        .collect();

    let mut table = Table::new(&[
        "App", "Proto", "GET", "POST", "PUT", "DELETE", "Query", "JSON", "XML", "#Pair",
    ]);
    let mut total_pairs = 0usize;

    for mut app in apps {
        if obfuscate_apps {
            // §5.1: "we obfuscate their APKs using ProGuard and verify that
            // the same results hold as non-obfuscated APKs".
            let (obf, _) = obfuscate(&app.apk, &ObfuscationOptions::default());
            app.apk = obf;
        }
        let eval = AppEval::run(&app);
        let e = eval.extractocol_counts();
        let m = AppEval::trace_counts(&eval.manual, &app.truth);
        let t = if app.truth.open_source {
            // Source-code ground truth: the full corpus model.
            AppEval::trace_counts(&run_perfect_fuzzer(&app), &app.truth)
        } else {
            AppEval::trace_counts(&eval.auto, &app.truth)
        };
        total_pairs += e.pairs;

        let ec = row_cells(&e);
        let mc = row_cells(&m);
        let tc = row_cells(&t);
        let mut cells = vec![eval.name.clone(), app.truth.protocol.to_string()];
        cells.extend((0..8).map(|i| cell(ec[i], mc[i], tc[i])));
        table.row(cells);

        // Published row for the paper-vs-measured comparison.
        let p = app.truth.paper_row;
        let pe = row_cells(&p.extractocol);
        let pm = row_cells(&p.manual);
        let pt = row_cells(&p.third);
        let mut cells = vec!["  paper:".to_string(), String::new()];
        cells.extend((0..8).map(|i| cell(pe[i], pm[i], pt[i])));
        table.row(cells);
    }
    println!("{}", table.render());
    println!(
        "total reconstructed request/response pairs: {total_pairs} (paper: 971 over its corpus)"
    );
}
