//! Fig. 3: Diode's request/response slices — the slicing example. The
//! branchy `doInBackground` yields nine URI patterns combined into one
//! regex (one of which is the /search/.json?q=(.*)&sort=(.*) form), and
//! the slices cover a small fraction of the program (paper: 6.3%).

use extractocol_dynamic::eval::AppEval;
use extractocol_http::Regex;

fn main() {
    let app = extractocol_corpus::app("Diode").expect("Diode in corpus");
    let eval = AppEval::run(&app);
    let listing = eval
        .report
        .transactions
        .iter()
        .find(|t| t.root.contains("doInBackground") || t.uri_regex.contains("search"))
        .expect("the Fig. 3 listing transaction");
    println!("listing URI signature:\n  {}", listing.uri.display());
    println!("\nexpanded URI patterns: {} (paper: nine)", listing.uri_pattern_count());
    let re = Regex::new(&listing.uri_regex).expect("compilable regex");
    let probe = "http://www.reddit.com/search/.json?q=cats&sort=hot";
    assert!(re.is_match(probe), "the paper's example pattern matches: {probe}");
    println!("matches {probe}");
    println!(
        "\nslice fraction: {:.1}% of {} statements (paper: 6.3%)",
        100.0 * eval.report.stats.slice_fraction(),
        eval.report.stats.total_stmts
    );
}
