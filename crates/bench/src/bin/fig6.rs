//! Fig. 6: total unique URI / request body+query-string / response body
//! signature counts per method, open-source vs closed-source.
//!
//! Paper series — open source: URI 98/95/98, request 92/91/92,
//! response 48/48/48 (Extractocol / manual fuzzing / source code);
//! closed source: URI 1058/586/402, request 732/240/314,
//! response 216/141/222 (Extractocol / manual / automatic).

use extractocol_bench::Table;
use extractocol_dynamic::eval::AppEval;
use extractocol_dynamic::run_perfect_fuzzer;
use extractocol_http::Body;

#[derive(Default)]
struct Counts {
    uri: usize,
    request: usize,
    response: usize,
}

fn static_counts(eval: &AppEval) -> Counts {
    let mut c = Counts::default();
    for t in &eval.report.transactions {
        c.uri += 1;
        if t.has_query_string() || t.request_body.is_some() {
            c.request += 1;
        }
        if t.response.is_some() {
            c.response += 1;
        }
    }
    c
}

fn trace_counts(trace: &extractocol_dynamic::TrafficTrace) -> Counts {
    use std::collections::BTreeSet;
    let mut uri = BTreeSet::new();
    let mut req = BTreeSet::new();
    let mut resp = BTreeSet::new();
    for t in &trace.transactions {
        let key = format!("{} {}", t.request.method, t.request.uri.to_uri_string());
        uri.insert(key.clone());
        if !t.request.uri.query.is_empty() || !matches!(t.request.body, Body::Empty) {
            req.insert(key.clone());
        }
        if !matches!(t.response.body, Body::Empty) {
            resp.insert(key);
        }
    }
    Counts { uri: uri.len(), request: req.len(), response: resp.len() }
}

fn main() {
    let mut rows: Vec<(&str, Counts, Counts, Counts)> = Vec::new();
    for open in [true, false] {
        let apps: Vec<_> = extractocol_corpus::all_apps()
            .into_iter()
            .filter(|a| a.truth.open_source == open)
            .collect();
        let mut stat = Counts::default();
        let mut man = Counts::default();
        let mut third = Counts::default();
        for app in &apps {
            let eval = AppEval::run(app);
            let s = static_counts(&eval);
            stat.uri += s.uri;
            stat.request += s.request;
            stat.response += s.response;
            let m = trace_counts(&eval.manual);
            man.uri += m.uri;
            man.request += m.request;
            man.response += m.response;
            let t = if open {
                trace_counts(&run_perfect_fuzzer(app))
            } else {
                trace_counts(&eval.auto)
            };
            third.uri += t.uri;
            third.request += t.request;
            third.response += t.response;
        }
        rows.push((if open { "open-source" } else { "closed-source" }, stat, man, third));
    }

    let mut table = Table::new(&[
        "Corpus",
        "Series",
        "Extractocol",
        "Manual fuzzing",
        "Source code | Auto fuzzing",
    ]);
    for (name, s, m, t) in &rows {
        table.row(vec![
            name.to_string(),
            "URI".into(),
            s.uri.to_string(),
            m.uri.to_string(),
            t.uri.to_string(),
        ]);
        table.row(vec![
            String::new(),
            "Request body/query".into(),
            s.request.to_string(),
            m.request.to_string(),
            t.request.to_string(),
        ]);
        table.row(vec![
            String::new(),
            "Response body".into(),
            s.response.to_string(),
            m.response.to_string(),
            t.response.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper (open):   URI 98/95/98, request 92/91/92, response 48/48/48");
    println!("paper (closed): URI 1058/586/402, request 732/240/314, response 216/141/222");
}
