//! Table 5: a summary of the Kayak API analysis — eight URI-prefix
//! categories, and §5.3's headline numbers (46 transactions; the three
//! previously-known flight APIs plus 14× more; the gated User-Agent).

use extractocol_bench::Table;
use extractocol_core::{Extractocol, Options};
use extractocol_corpus::apps::kayak::{CATEGORIES, USER_AGENT};

fn main() {
    let app = extractocol_corpus::app("KAYAK").expect("KAYAK in corpus");
    // §5.3: "We only scope the analysis to com.kayak classes".
    let opts = Options { scope_prefix: Some("com.kayak".into()), ..Options::default() };
    let report = Extractocol::with_options(opts).analyze(&app.apk);

    let mut table =
        Table::new(&["Category", "Method", "URI prefix", "#APIs (measured)", "#APIs (paper)"]);
    for (name, method, prefix, paper_n) in CATEGORIES {
        // Assign each transaction to its most specific category prefix.
        let n = report
            .transactions
            .iter()
            .filter(|t| {
                t.method.as_str() == *method
                    && t.uri_regex.contains(prefix)
                    && !CATEGORIES.iter().any(|(_, m2, p2, _)| {
                        m2 == method && p2.len() > prefix.len() && t.uri_regex.contains(p2)
                    })
            })
            .count();
        table.row(vec![
            name.to_string(),
            method.to_string(),
            format!("https://www.kayak.com{prefix}"),
            n.to_string(),
            paper_n.to_string(),
        ]);
    }
    println!("{}", table.render());
    let gets = report
        .transactions
        .iter()
        .filter(|t| t.method == extractocol_http::HttpMethod::Get)
        .count();
    let posts = report.transactions.len() - gets;
    println!(
        "total transactions: {} ({} GET, {} POST) — paper: 46 (39 GET, 7 POST; its",
        report.transactions.len(),
        gets,
        posts
    );
    println!("Table 5 itself sums to 43 across 10 POST APIs — the model follows Table 5)");
    let ua = report
        .transactions
        .iter()
        .flat_map(|t| t.headers.iter())
        .find(|(k, _)| k == "User-Agent")
        .expect("User-Agent identified");
    println!(
        "app-specific header identified: User-Agent: {} (paper: {USER_AGENT})",
        ua.1.replace('\\', "")
    );
}
