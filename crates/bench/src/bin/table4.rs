//! Table 4 / Fig. 1: TED's notable transactions and dependency graph —
//! the ad chain (#3 ad query → #4 VAST XML → #5 ad video to the media
//! player: the prefetchable sequence of Fig. 1) and the SQLite-mediated
//! thumbnail/video fetches.

use extractocol_dynamic::eval::AppEval;

fn main() {
    let app = extractocol_corpus::app("TED").expect("TED in corpus");
    let eval = AppEval::run(&app);
    println!("{}", eval.report.to_table());
    println!("paper Table 4 (notable transactions):");
    println!("  #1 speakers.json?limit=2000&api-key=(.*)  -> JSON into SQLite DB");
    println!("  #2 GET https://graph.facebook.com/me/photos");
    println!("  #3 talks/(.*)/android_ad.json?api-key=(.*) -> JSON with ad query URI");
    println!("  #4 GET (.*) ad query URI from #3 (D)      -> XML with ad resource URIs");
    println!("  #5 GET (.*) ad video URI from #4 (D)      -> binary, to media player (Fig. 1)");
    println!("  #6 talk_catalogs/android_v1.json?api-key=(.*) -> thumbnail/video URIs into DB");
    println!("  #7 GET (.*) thumbnail URI from DB (D)");
    println!("  #8 GET (.*) audio/video URI from DB (D)");
    // Assert the headline dependencies are present.
    let has = |needle: &str| {
        eval.report.dependencies.iter().any(|d| format!("{}", d.via).contains(needle))
    };
    assert!(has("mAdQueryUri"), "#3 -> #4 via the ad query URI field");
    assert!(has("mAdVideoUri"), "#4 -> #5 via the ad video URI field");
    assert!(has("db talks"), "#6 -> #7/#8 via the SQLite talks table");
    println!("\nall Table 4 dependency channels confirmed (field + SQLite).");
}
