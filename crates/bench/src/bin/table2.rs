//! Table 2: matched byte count % on actual traffic.
//!
//! Paper: open-source request body/query string Rk/Rv/Rn = 47/52/1%,
//! response 7/48/45%; closed-source request 48/31/21%, response 16/35/49%.

use extractocol_bench::Table;
use extractocol_dynamic::eval::AppEval;
use extractocol_dynamic::trace::ByteFractions;

fn main() {
    let mut table = Table::new(&["Corpus", "Message part", "Rk %", "Rv %", "Rn %"]);
    for open in [true, false] {
        let apps: Vec<_> = extractocol_corpus::all_apps()
            .into_iter()
            .filter(|a| a.truth.open_source == open)
            .collect();
        let mut req = ByteFractions::default();
        let mut resp = ByteFractions::default();
        for app in &apps {
            let eval = AppEval::run(app);
            let (r, p) = eval.byte_fractions();
            req.keyword_bytes += r.keyword_bytes;
            req.value_bytes += r.value_bytes;
            req.wildcard_bytes += r.wildcard_bytes;
            resp.keyword_bytes += p.keyword_bytes;
            resp.value_bytes += p.value_bytes;
            resp.wildcard_bytes += p.wildcard_bytes;
        }
        let corpus = if open { "open-source" } else { "closed-source" };
        let (rk, rv, rn) = req.percentages();
        table.row(vec![
            corpus.to_string(),
            "request body/query string".into(),
            format!("{rk:.0}"),
            format!("{rv:.0}"),
            format!("{rn:.0}"),
        ]);
        let (rk, rv, rn) = resp.percentages();
        table.row(vec![
            String::new(),
            "response body".into(),
            format!("{rk:.0}"),
            format!("{rv:.0}"),
            format!("{rn:.0}"),
        ]);
    }
    println!("{}", table.render());
    println!("paper (open):   request 47/52/1, response 7/48/45");
    println!("paper (closed): request 48/31/21, response 16/35/49");
}
