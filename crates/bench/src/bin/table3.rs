//! Table 3: reconstructed HTTP transactions and dependency graph for
//! radio reddit — six transactions; the login response's modhash/cookie
//! feed the save/vote requests (`uh` field, `Cookie` header); the status
//! response's relay URI feeds the media stream.

use extractocol_dynamic::eval::AppEval;

fn main() {
    let app = extractocol_corpus::app("radio reddit").expect("radio reddit in corpus");
    let eval = AppEval::run(&app);
    println!("{}", eval.report.to_table());
    println!("paper Table 3:");
    println!("  #1 GET  http://www.reddit.com/api/info.json?");
    println!(
        "  #2 GET  http://www.radioreddit.com/(.*)(status.json) -> relay/listeners/playlist JSON"
    );
    println!("  #3 POST https://ssl.reddit.com/api/login  (user=.*&passwd=&api_type=json)");
    println!("          -> modhash/cookie/need_https JSON");
    println!("  #4 POST http://www.reddit.com/api/(unsave|save)  id=.*&uh=.*  + Cookie header");
    println!("  #5 POST http://www.reddit.com/api/vote  id=.*&dir=.*&uh=.*   + Cookie header");
    println!("  #6 GET  (.*)  — the relay stream to MediaPlayer");
    println!("  deps: 1->4,5 (id=fullname); 3->4,5 (uh=modhash, Cookie=cookie); 2->6 (relay URI)");

    // Fig. 8 check: the status.json signature covers 16 of the 18 keys.
    let status = eval
        .report
        .transactions
        .iter()
        .find(|t| t.uri_regex.contains("status"))
        .expect("status txn");
    let keys = status.response_keywords();
    println!("\nFig. 8: status.json keys read by the app: {} (paper: 16 of 18)", keys.len());
    for missing in ["album", "score"] {
        assert!(!keys.contains(&missing.to_string()), "`{missing}` is served but never parsed");
    }
    println!("unparsed keys (served but absent from the signature): album, score");
}
