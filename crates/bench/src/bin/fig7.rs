//! Fig. 7: constant keywords identified, per method, open vs closed.
//!
//! Paper series — open source: request 144/145/145 (Extractocol misses the
//! one RRD async-chain keyword with the heuristic off), response
//! 372/616/372 (apps don't inspect ~40% of served keys); closed source:
//! request 7793/3507/505, response 14120/13554/2912.
//!
//! Pass `--async` to enable the §3.4 heuristic for open-source apps too
//! (recovering the missed keyword, as §5.1 reports).

use extractocol_bench::Table;
use extractocol_core::{Extractocol, Options};
use extractocol_dynamic::eval::AppEval;
use extractocol_dynamic::trace::TrafficTrace;
use extractocol_dynamic::{run_auto_fuzzer, run_manual_fuzzer, run_perfect_fuzzer};
use std::collections::BTreeSet;

fn trace_request_keywords(t: &TrafficTrace) -> BTreeSet<String> {
    t.request_keywords()
}

fn main() {
    let force_async = std::env::args().any(|a| a == "--async");
    let mut table =
        Table::new(&["Corpus", "Series", "Extractocol", "Manual fuzzing", "Source | Auto"]);
    for open in [true, false] {
        let apps: Vec<_> = extractocol_corpus::all_apps()
            .into_iter()
            .filter(|a| a.truth.open_source == open)
            .collect();
        let (mut s_req, mut s_resp) = (0usize, 0usize);
        let (mut m_req, mut m_resp) = (0usize, 0usize);
        let (mut t_req, mut t_resp) = (0usize, 0usize);
        for app in &apps {
            let opts = Options {
                slice: extractocol_core::slicing::SliceOptions {
                    async_heuristic: !open || force_async,
                    ..Default::default()
                },
                ..Options::default()
            };
            let report = Extractocol::with_options(opts).analyze(&app.apk);
            let eval = AppEval {
                name: app.truth.name.clone(),
                open_source: open,
                report,
                manual: run_manual_fuzzer(app),
                auto: run_auto_fuzzer(app),
                validity: Default::default(),
            };
            s_req += eval.static_request_keywords().len();
            s_resp += eval.static_response_keywords().len();
            m_req += trace_request_keywords(&eval.manual).len();
            m_resp += eval.manual.response_keywords().len();
            let third = if open { run_perfect_fuzzer(app) } else { eval.auto.clone() };
            // For open-source apps the third column is source-code ground
            // truth: the keywords the app's code actually names.
            if open {
                let gt_req: BTreeSet<String> = app
                    .truth
                    .txns
                    .iter()
                    .flat_map(|t| {
                        t.query_keys.iter().chain(&t.body_json_keys).chain(&t.form_keys).cloned()
                    })
                    .collect();
                t_req += gt_req.len();
                let gt_resp: BTreeSet<String> = app
                    .truth
                    .txns
                    .iter()
                    .flat_map(|t| match &t.resp {
                        extractocol_corpus::RespTruth::Json(k) => k.clone(),
                        // XML lists lead with the document root, which the
                        // source never names (it reads child tags).
                        extractocol_corpus::RespTruth::Xml(k) => {
                            k.iter().skip(1).cloned().collect()
                        }
                        _ => Vec::new(),
                    })
                    .collect();
                t_resp += gt_resp.len();
            } else {
                t_req += trace_request_keywords(&third).len();
                t_resp += third.response_keywords().len();
            }
        }
        let corpus = if open { "open-source" } else { "closed-source" };
        table.row(vec![
            corpus.to_string(),
            "request body/query keywords".into(),
            s_req.to_string(),
            m_req.to_string(),
            t_req.to_string(),
        ]);
        table.row(vec![
            String::new(),
            "response body keywords".into(),
            s_resp.to_string(),
            m_resp.to_string(),
            t_resp.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper (open):   request 144/145/145, response 372/616/372");
    println!("paper (closed): request 7793/3507/505, response 14120/13554/2912");
    if !force_async {
        println!("(re-run with --async to recover the RRD async-chain keyword, §5.1)");
    }
}
