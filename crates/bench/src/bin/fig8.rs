//! Fig. 8: the radio reddit status.json traffic trace, annotated with the
//! keywords the app's signature covers (16 of the 18 served keys; `album`
//! and `score` are never parsed).

use extractocol_dynamic::eval::AppEval;
use extractocol_dynamic::trace::matching_transactions;
use extractocol_http::Body;

fn main() {
    let app = extractocol_corpus::app("radio reddit").expect("radio reddit in corpus");
    let eval = AppEval::run(&app);
    let status = eval
        .report
        .transactions
        .iter()
        .find(|t| t.uri_regex.contains("status"))
        .expect("status txn");
    let hits = matching_transactions(status, &eval.manual);
    let hit = hits.first().expect("trace line for status.json");
    println!("HTTP Response URI\nGET {}", hit.request.uri);
    let Body::Json(body) = &hit.response.body else { panic!("expected JSON body") };
    println!("\nHTTP Response Body\n{}", body.to_json());
    let sig_keys = status.response_keywords();
    let served: Vec<&str> = body.all_keys();
    let covered: Vec<&str> =
        served.iter().copied().filter(|k| sig_keys.contains(&k.to_string())).collect();
    let uncovered: Vec<&str> =
        served.iter().copied().filter(|k| !sig_keys.contains(&k.to_string())).collect();
    println!("\nkeywords covered by the signature ({}): {covered:?}", covered.len());
    println!("keywords served but never parsed ({}): {uncovered:?}", uncovered.len());
    println!("paper: 16 of 18 keywords covered; album and score unparsed.");
}
