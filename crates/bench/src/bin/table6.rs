//! Table 6: selected Kayak request signatures — authajax registration,
//! flight/start, flight/poll — plus the §5.3 replay: a client built from
//! the signatures alone retrieves flight fares (and is rejected without
//! the recovered User-Agent).

use extractocol_core::{Extractocol, Options};
use extractocol_dynamic::replay::replay_kayak_flight_search;

fn main() {
    let app = extractocol_corpus::app("KAYAK").expect("KAYAK in corpus");
    let opts = Options { scope_prefix: Some("com.kayak".into()), ..Options::default() };
    let report = Extractocol::with_options(opts).analyze(&app.apk);

    println!("recovered signatures (paper Table 6):\n");
    for fragment in ["authajax", "flight/start", "flight/poll"] {
        let t = report
            .transactions
            .iter()
            .find(|t| t.uri_regex.contains(fragment))
            .unwrap_or_else(|| panic!("{fragment} signature"));
        println!("{} {}", t.method, t.uri.display());
        println!();
    }
    println!("paper Table 6:");
    println!("  /k/authajax: action=registerandroid&uuid=.*&hash=.*&model=.*&platform=android&os=.*&locale=.*&tz=.*");
    println!("  /flight/start: cabin=.*&travelers=.*&origin=.*&...&_sid_=.*");
    println!("  /flight/poll: searchid=.*&nc=.*&c=.*&s=.*&d=up&currency=.*&includeopaques=true&includeSplit=false");

    // §5.3 replay.
    let outcome = replay_kayak_flight_search(&report, &app.server);
    println!("\nreplay: auth_ok={} fares_retrieved={}", outcome.auth_ok, outcome.fares_retrieved);
    assert!(outcome.fares_retrieved, "the signature-derived client must retrieve fares");
    println!("replay trace:");
    for t in &outcome.trace.transactions {
        println!("  {} {} -> {}", t.request.method, t.request.uri, t.response.status);
    }
    println!("paper: \"We verify that it successfully retrieves flight fare information.\"");
}
