//! Fig. 1: the TED application-acceleration example — the analysis alone
//! reveals that the android_ad.json response carries an ad URL which is
//! then requested and streamed into the media player, enabling an
//! automatic prefetcher.

use extractocol_dynamic::eval::AppEval;

fn main() {
    let app = extractocol_corpus::app("TED").expect("TED in corpus");
    let eval = AppEval::run(&app);
    let ad = eval
        .report
        .transactions
        .iter()
        .find(|t| t.uri_regex.contains("android_ad"))
        .expect("ad query transaction");
    println!("request 1: GET {}", ad.uri.display());
    match &ad.response {
        Some(extractocol_core::sigbuild::ResponseSig::Json(j)) => {
            println!("response 1: {}", j.display());
            assert!(j.keys().contains(&"url"), "the ad URL key is identified");
        }
        other => panic!("expected JSON ad response, got {other:?}"),
    }
    // The dependent request and its media consumption.
    let dep = eval
        .report
        .dependencies
        .iter()
        .find(|d| format!("{}", d.via).contains("mAdQueryUri"))
        .expect("ad URI dependency");
    let follow = &eval.report.transactions[dep.to];
    println!("request 2: GET {} (dynamically derived)", follow.uri.display());
    assert!(follow.is_dynamic_uri());
    println!("paper: \"Because Extractocol automatically identifies this, one can");
    println!("generate a prefetcher that prefetches advertisements.\" — chain found.");
}
