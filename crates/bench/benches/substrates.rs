//! Substrate micro-benches: the regex-lite engine (signature matching
//! throughput over traces) and the taint engine on growing programs.

use extractocol_analysis::{
    AccessPath, CallGraph, CallbackRegistry, ConservativeModel, Direction, Seed, TaintEngine,
    TaintOptions,
};
use extractocol_bench::timing;
use extractocol_http::Regex;
use extractocol_ir::{ApkBuilder, ProgramIndex, Type, Value};

fn regex_matching() {
    let sig =
        Regex::new("https://app-api\\.ted\\.com/v1/talks/[0-9]*/android_ad\\.json\\?api-key=.*")
            .unwrap();
    let hits = "https://app-api.ted.com/v1/talks/2406/android_ad.json?api-key=x9";
    let misses = "https://app-api.ted.com/v1/speakers.json?limit=2000&api-key=x9";
    timing::bench("regexlite_match_hit", 100, 10_000, || {
        assert!(sig.is_match(std::hint::black_box(hits)))
    });
    timing::bench("regexlite_match_miss", 100, 10_000, || {
        assert!(!sig.is_match(std::hint::black_box(misses)))
    });
}

/// A synthetic call chain of `n` methods copying a tainted string through.
fn chain_apk(n: usize) -> extractocol_ir::Apk {
    let mut b = ApkBuilder::new("chain", "t");
    b.class("t.C", |c| {
        for i in 0..n {
            let next = format!("m{}", i + 1);
            let last = i + 1 == n;
            c.static_method(&format!("m{i}"), vec![Type::string()], Type::string(), move |m| {
                let p = m.arg(0, "p");
                if last {
                    m.ret(p);
                } else {
                    let r = m.scall("t.C", &next, vec![Value::Local(p)], Type::string());
                    m.ret(r);
                }
            });
        }
    });
    b.build()
}

fn taint_scaling() {
    for n in [10usize, 50, 200] {
        let apk = chain_apk(n);
        let prog = ProgramIndex::new(&apk);
        let graph = CallGraph::build(&prog, &CallbackRegistry::empty());
        let engine = TaintEngine::new(&prog, &graph, &ConservativeModel, TaintOptions::default());
        let m0 = prog.resolve_method("t.C", "m0", 1).unwrap();
        let p0 = extractocol_ir::Local(0);
        timing::bench(&format!("taint_chain/{n}"), 2, 50, || {
            engine.run(
                Direction::Forward,
                &[Seed { method: m0, stmt: 0, fact: AccessPath::local(p0) }],
            )
        });
    }
}

fn main() {
    regex_matching();
    taint_scaling();
}
