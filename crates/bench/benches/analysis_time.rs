//! Analysis wall-clock time (§5.1): "Extractocol takes 4 minutes to
//! analyze an open source app on average. For closed-source apps, the time
//! varies widely from 11 minutes (for a small app) up to 3 hours (for a
//! large app)."
//!
//! Our corpus models are far smaller than real APKs, so absolute times
//! differ by construction; the *shape* that must hold is
//! small-open ≪ large-closed, scaling with app size and DP count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use extractocol_core::Extractocol;

fn analysis_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_time");
    group.sample_size(10);
    for name in [
        "Weather Notification", // tiny open-source
        "radio reddit",         // small open-source
        "Diode",                // mid open-source (the Fig. 3 app)
        "TED",                  // mid closed-source
        "KAYAK",                // larger closed-source
        "Pinterest",            // largest closed-source (148 transactions)
    ] {
        let app = extractocol_corpus::app(name).expect("corpus app");
        let stmts = app.apk.total_statements();
        group.bench_with_input(
            BenchmarkId::new("analyze", format!("{name} ({stmts} stmts)")),
            &app,
            |b, app| {
                let analyzer = Extractocol::new();
                b.iter(|| analyzer.analyze(&app.apk));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, analysis_time);
criterion_main!(benches);
