//! Analysis wall-clock time (§5.1): "Extractocol takes 4 minutes to
//! analyze an open source app on average. For closed-source apps, the time
//! varies widely from 11 minutes (for a small app) up to 3 hours (for a
//! large app)."
//!
//! Our corpus models are far smaller than real APKs, so absolute times
//! differ by construction; the *shape* that must hold is
//! small-open ≪ large-closed, scaling with app size and DP count.
//!
//! Also reports sequential (`jobs = 1`) vs parallel (`jobs = auto`) wall
//! time per app, plus the method-summary cache hit rate, so the pipeline
//! parallelization is measurable.

use extractocol_bench::timing;
use extractocol_core::{Extractocol, Options};

fn main() {
    let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("== analysis_time (host parallelism: {parallelism}) ==");
    for name in [
        "Weather Notification", // tiny open-source
        "radio reddit",         // small open-source
        "Diode",                // mid open-source (the Fig. 3 app)
        "TED",                  // mid closed-source
        "KAYAK",                // larger closed-source
        "Pinterest",            // largest closed-source (148 transactions)
    ] {
        let app = extractocol_corpus::app(name).expect("corpus app");
        let stmts = app.apk.total_statements();
        let sequential = Extractocol::with_options(Options { jobs: 1, ..Options::default() });
        let parallel = Extractocol::with_options(Options { jobs: 0, ..Options::default() });
        let seq = timing::bench(&format!("analyze/{name} ({stmts} stmts) jobs=1"), 1, 10, || {
            sequential.analyze(&app.apk)
        });
        let par =
            timing::bench(&format!("analyze/{name} ({stmts} stmts) jobs=auto"), 1, 10, || {
                parallel.analyze(&app.apk)
            });
        let report = parallel.analyze(&app.apk);
        let m = &report.metrics;
        println!(
            "  -> speedup {:.2}x  summary-cache {} hits / {} misses ({:.1}% hit rate)\n",
            seq.speedup_over(&par),
            m.cache.hits,
            m.cache.misses,
            m.cache.hit_rate() * 100.0,
        );
    }
}
