//! Ablation benches for the design choices DESIGN.md calls out:
//! access-path depth in the taint engine, object-aware augmentation, the
//! asynchronous-event heuristic, CHA vs points-to call-graph
//! construction, and library de-obfuscation cost.

use extractocol_bench::timing;
use extractocol_core::slicing::SliceOptions;
use extractocol_core::{Extractocol, Options};

fn with_slice(slice: SliceOptions) -> Extractocol {
    Extractocol::with_options(Options { slice, ..Options::default() })
}

fn taint_depth() {
    let app = extractocol_corpus::app("radio reddit").unwrap();
    for depth in [1usize, 2, 3, 4] {
        let analyzer = with_slice(SliceOptions { max_field_depth: depth, ..Default::default() });
        timing::bench(&format!("ablation_taint_depth/{depth}"), 1, 10, || {
            analyzer.analyze(&app.apk)
        });
    }
}

fn augmentation() {
    let app = extractocol_corpus::app("TED").unwrap();
    for on in [true, false] {
        let analyzer = with_slice(SliceOptions { augmentation: on, ..Default::default() });
        timing::bench(&format!("ablation_augment/{on}"), 1, 10, || analyzer.analyze(&app.apk));
    }
}

fn async_heuristic() {
    let app = extractocol_corpus::app("Weather Notification").unwrap();
    for on in [true, false] {
        let analyzer = with_slice(SliceOptions { async_heuristic: on, ..Default::default() });
        timing::bench(&format!("ablation_async/{on}"), 1, 10, || analyzer.analyze(&app.apk));
    }
}

fn cha_vs_pta() {
    // Diode carries the corpus's polymorphic dispatch site: CHA keeps
    // every `TextFilter` implementor, points-to prunes to the one that is
    // constructed. Measures the solver's cost against the slicing time it
    // buys back.
    let app = extractocol_corpus::app("Diode").unwrap();
    for pointsto in [false, true] {
        let analyzer = Extractocol::with_options(Options { pointsto, ..Options::default() });
        let label = if pointsto { "pta" } else { "cha" };
        timing::bench(&format!("ablation_callgraph/{label}"), 1, 10, || analyzer.analyze(&app.apk));
    }
}

fn deobfuscation() {
    use extractocol_ir::obfuscate::{obfuscate, ObfuscationOptions};
    let app = extractocol_corpus::app("blippex").unwrap();
    let (obf, _) = obfuscate(
        &app.apk,
        &ObfuscationOptions { obfuscate_libraries: true, extra_keep_prefixes: vec![] },
    );
    let analyzer = Extractocol::new();
    timing::bench("ablation_deobf/plain", 1, 10, || analyzer.analyze(&app.apk));
    timing::bench("ablation_deobf/obfuscated_libraries", 1, 10, || analyzer.analyze(&obf));
}

fn main() {
    taint_depth();
    augmentation();
    async_heuristic();
    cha_vs_pta();
    deobfuscation();
}
