//! Ablation benches for the design choices DESIGN.md calls out:
//! access-path depth in the taint engine, object-aware augmentation, the
//! asynchronous-event heuristic, and library de-obfuscation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use extractocol_core::slicing::SliceOptions;
use extractocol_core::{Extractocol, Options};

fn with_slice(slice: SliceOptions) -> Extractocol {
    Extractocol::with_options(Options { slice, ..Options::default() })
}

fn taint_depth(c: &mut Criterion) {
    let app = extractocol_corpus::app("radio reddit").unwrap();
    let mut group = c.benchmark_group("ablation_taint_depth");
    for depth in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            let analyzer = with_slice(SliceOptions { max_field_depth: d, ..Default::default() });
            b.iter(|| analyzer.analyze(&app.apk));
        });
    }
    group.finish();
}

fn augmentation(c: &mut Criterion) {
    let app = extractocol_corpus::app("TED").unwrap();
    let mut group = c.benchmark_group("ablation_augment");
    for on in [true, false] {
        group.bench_with_input(BenchmarkId::from_parameter(on), &on, |b, &on| {
            let analyzer = with_slice(SliceOptions { augmentation: on, ..Default::default() });
            b.iter(|| analyzer.analyze(&app.apk));
        });
    }
    group.finish();
}

fn async_heuristic(c: &mut Criterion) {
    let app = extractocol_corpus::app("Weather Notification").unwrap();
    let mut group = c.benchmark_group("ablation_async");
    for on in [true, false] {
        group.bench_with_input(BenchmarkId::from_parameter(on), &on, |b, &on| {
            let analyzer = with_slice(SliceOptions { async_heuristic: on, ..Default::default() });
            b.iter(|| analyzer.analyze(&app.apk));
        });
    }
    group.finish();
}

fn deobfuscation(c: &mut Criterion) {
    use extractocol_ir::obfuscate::{obfuscate, ObfuscationOptions};
    let app = extractocol_corpus::app("blippex").unwrap();
    let (obf, _) = obfuscate(
        &app.apk,
        &ObfuscationOptions { obfuscate_libraries: true, extra_keep_prefixes: vec![] },
    );
    let mut group = c.benchmark_group("ablation_deobf");
    group.bench_function("plain", |b| {
        let analyzer = Extractocol::new();
        b.iter(|| analyzer.analyze(&app.apk));
    });
    group.bench_function("obfuscated_libraries", |b| {
        let analyzer = Extractocol::new();
        b.iter(|| analyzer.analyze(&obf));
    });
    group.finish();
}

criterion_group!(benches, taint_depth, augmentation, async_heuristic, deobfuscation);
criterion_main!(benches);
