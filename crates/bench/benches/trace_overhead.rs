//! Observability overhead (ISSUE 5 acceptance bar: ≤ 10% with tracing
//! off-by-default). Three configurations per app:
//!
//! * `plain`    — `analyze`, no collector anywhere near the run,
//! * `trace=off` — `analyze_traced` with a *disabled* collector: every
//!   span site costs exactly one `Option` branch,
//! * `trace=on`  — `analyze_traced` with an enabled collector: the real
//!   cost of recording the full span tree.
//!
//! Plus the serving side: `classify_batch` vs `classify_batch_observed`
//! (instruments always on, trace off) — the cost of the per-request
//! timer and atomic counter updates, which is why the bench throughput
//! gate keeps its timed batch on the uninstrumented path.

use extractocol_bench::timing;
use extractocol_core::{Extractocol, Options, TraceCollector};
use extractocol_serve::{classify_batch, classify_batch_observed, ServeMetrics, SignatureIndex};

fn main() {
    println!("== trace_overhead (pipeline) ==");
    for name in ["radio reddit", "TED", "Pinterest"] {
        let app = extractocol_corpus::app(name).expect("corpus app");
        let analyzer = Extractocol::with_options(Options { jobs: 1, ..Options::default() });
        let plain =
            timing::bench(&format!("analyze/{name} plain"), 1, 10, || analyzer.analyze(&app.apk));
        let disabled = TraceCollector::disabled();
        let off = timing::bench(&format!("analyze/{name} trace=off"), 1, 10, || {
            analyzer.analyze_traced(&app.apk, &disabled)
        });
        let enabled = TraceCollector::enabled();
        let on = timing::bench(&format!("analyze/{name} trace=on"), 1, 10, || {
            let r = analyzer.analyze_traced(&app.apk, &enabled);
            enabled.drain();
            r
        });
        println!(
            "  -> overhead: trace=off {:+.1}%  trace=on {:+.1}%\n",
            100.0 * (off.speedup_over(&plain) - 1.0),
            100.0 * (on.speedup_over(&plain) - 1.0),
        );
    }

    println!("== trace_overhead (serving) ==");
    let app = extractocol_corpus::app("radio reddit").expect("corpus app");
    let report = extractocol_dynamic::conformance::analyze_app(&app.apk, app.truth.open_source, 0);
    let index = SignatureIndex::compile(std::slice::from_ref(&report));
    let base: Vec<_> = extractocol_dynamic::run_perfect_fuzzer(&app)
        .transactions
        .into_iter()
        .map(|t| t.request)
        .collect();
    let requests = extractocol_serve::bench::tile_requests(&base, 20_000);
    let plain = timing::bench("classify/20k plain", 1, 10, || classify_batch(&index, &requests, 0));
    let disabled = TraceCollector::disabled();
    let observed = timing::bench("classify/20k observed (trace off)", 1, 10, || {
        classify_batch_observed(&index, &requests, 0, &ServeMetrics::new(), &disabled)
    });
    println!(
        "  -> instrumented-pass overhead {:+.1}%",
        100.0 * (observed.speedup_over(&plain) - 1.0),
    );
}
