//! Serving-pipeline throughput bench (ISSUE 4): compiles the 34-app
//! corpus signature index and classifies tiled perfect-fuzzer traffic,
//! comparing the trie-pruned path against brute-force linear scan and
//! sequential against pooled batch classification. Writes
//! `BENCH_classify.json` (the artifact CI regression-gates) when invoked
//! with an output path argument.
//!
//! Run: `cargo bench -p extractocol-bench --bench classify [-- <out.json>]`

use extractocol_bench::timing;
use extractocol_serve::{bench as serve_bench, classify_batch, SignatureIndex};

fn main() {
    let out = std::env::args().nth(1);

    let reports = serve_bench::corpus_reports(0);
    let index = SignatureIndex::compile(&reports);
    let base = serve_bench::corpus_requests();
    let requests = serve_bench::tile_requests(&base, 20_000);
    println!(
        "index: {} signatures, {} trie nodes; {} base requests tiled to {}",
        index.len(),
        index.trie_nodes(),
        base.len(),
        requests.len()
    );

    // Trie-pruned vs brute-force single-request paths (over the base set,
    // sequential — isolates the pruning win from pool throughput).
    let pruned = timing::bench("classify/pruned_seq", 1, 5, || {
        base.iter().map(|r| index.classify(r).0).collect::<Vec<_>>()
    });
    let brute = timing::bench("classify/brute_seq", 1, 5, || {
        base.iter().map(|r| index.classify_brute(r).0).collect::<Vec<_>>()
    });
    println!("pruning speedup over brute force: {:.2}x", brute.speedup_over(&pruned));

    // Batch path: sequential vs pooled.
    let seq = timing::bench("classify/batch_jobs1", 1, 5, || classify_batch(&index, &requests, 1));
    let par = timing::bench("classify/batch_jobs0", 1, 5, || classify_batch(&index, &requests, 0));
    println!("pool speedup (jobs=auto over jobs=1): {:.2}x", seq.speedup_over(&par));

    // The full benchmark report (the CI artifact).
    let report = serve_bench::run(20_000, 0);
    println!(
        "throughput: {:.0} req/s, p50 {:.1}us, p99 {:.1}us, candidate frac {:.4}",
        report.requests_per_sec,
        report.p50_latency_us,
        report.p99_latency_us,
        report.stats.avg_candidate_fraction()
    );
    if let Some(path) = out {
        std::fs::write(&path, format!("{}\n", report.to_json().to_json()))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
