//! Snapshot diffing: the engine behind `extractocol-obs-diff`.
//!
//! A [`Snapshot`] is a flat `series name → value` map parsed from either
//! a Prometheus-text exposition (as rendered by
//! [`crate::Registry::render`]) or a `BENCH_*.json` report. Each series
//! belongs to a *family* carrying a [`Volatility`]:
//!
//! * exposition text declares it via the non-standard
//!   `# VOLATILITY <name> deterministic|perrun` comment the registry
//!   renderer emits (foreign scrapes without the comment default to
//!   per-run — the safe side);
//! * bench JSON fields are classified by name: anything wall-clock
//!   shaped (`*_secs`, `*latency*`, `*per_sec*`, `*speedup*`) is
//!   per-run, the rest (request/signature/verdict counts, candidate
//!   statistics) is deterministic.
//!
//! [`diff`] then applies the two-tier contract from the metrics module:
//! deterministic series must match **exactly** — any value change,
//! missing series, or new series is a regression — while per-run series
//! are compared against a symmetric relative threshold
//! (`|a-b| / max(|a|,|b|)`), with missing/new series demoted to
//! warnings. [`DiffConfig::ignore_per_run`] drops the per-run tier
//! entirely, which is how CI diffs a live scrape against the checked-in
//! `METRICS_classify.baseline.txt` across machines.

use crate::metrics::Volatility;
use extractocol_http::JsonValue;
use std::collections::BTreeMap;

/// Family metadata recovered from `# HELP`/`# TYPE`/`# VOLATILITY`
/// comment lines.
#[derive(Clone, Debug)]
pub struct FamilyMeta {
    /// The `# HELP` text (empty if absent).
    pub help: String,
    /// The `# TYPE` (counter/gauge/histogram; empty if absent).
    pub typ: String,
    /// Determinism contract; `None` when the snapshot did not declare it.
    pub volatility: Option<Volatility>,
}

/// One parsed snapshot: series values plus per-family metadata.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `name{labels}` (or bare `name`) → sample value.
    pub series: BTreeMap<String, f64>,
    /// Family name → metadata.
    pub families: BTreeMap<String, FamilyMeta>,
}

impl Snapshot {
    /// The family name of a series key: the part before `{`, with
    /// histogram suffixes (`_bucket`/`_sum`/`_count`) folded into their
    /// base family when that base is known.
    pub fn family_of(&self, series: &str) -> String {
        let name = series.split('{').next().unwrap_or(series);
        if !self.families.contains_key(name) {
            for suffix in ["_bucket", "_sum", "_count"] {
                if let Some(base) = name.strip_suffix(suffix) {
                    if self.families.contains_key(base) {
                        return base.to_string();
                    }
                }
            }
        }
        name.to_string()
    }

    /// The declared volatility of a series (`None` if undeclared).
    pub fn volatility_of(&self, series: &str) -> Option<Volatility> {
        self.families.get(&self.family_of(series)).and_then(|m| m.volatility)
    }
}

fn family_meta_mut<'a>(snap: &'a mut Snapshot, name: &str) -> &'a mut FamilyMeta {
    snap.families.entry(name.to_string()).or_insert_with(|| FamilyMeta {
        help: String::new(),
        typ: String::new(),
        volatility: None,
    })
}

/// Splits a sample line into `(series_key, value)`, honouring quoted —
/// possibly escaped — label values that may contain spaces or braces.
fn split_sample(line: &str) -> Result<(String, f64), String> {
    let bytes = line.as_bytes();
    let key_end = if let Some(open) = line.find('{') {
        let mut in_quotes = false;
        let mut escaped = false;
        let mut end = None;
        for (i, &b) in bytes.iter().enumerate().skip(open + 1) {
            if escaped {
                escaped = false;
                continue;
            }
            match b {
                b'\\' if in_quotes => escaped = true,
                b'"' => in_quotes = !in_quotes,
                b'}' if !in_quotes => {
                    end = Some(i + 1);
                    break;
                }
                _ => {}
            }
        }
        end.ok_or_else(|| format!("unterminated label set: {line:?}"))?
    } else {
        line.find(char::is_whitespace).ok_or_else(|| format!("no value on line: {line:?}"))?
    };
    let key = line[..key_end].to_string();
    let rest = line[key_end..].trim();
    // Prometheus allows an optional trailing timestamp; take token one.
    let value_tok =
        rest.split_whitespace().next().ok_or_else(|| format!("no value on line: {line:?}"))?;
    let value = value_tok
        .parse::<f64>()
        .map_err(|_| format!("bad sample value {value_tok:?} on line: {line:?}"))?;
    Ok((key, value))
}

/// Parses a Prometheus text exposition into a [`Snapshot`].
pub fn parse_prometheus(text: &str) -> Result<Snapshot, String> {
    let mut snap = Snapshot::default();
    for raw in text.lines() {
        let line = raw.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut it = comment.trim_start().splitn(3, ' ');
            let kind = it.next().unwrap_or("");
            let name = it.next().unwrap_or("");
            let rest = it.next().unwrap_or("");
            match kind {
                "HELP" if !name.is_empty() => {
                    family_meta_mut(&mut snap, name).help = rest.to_string();
                }
                "TYPE" if !name.is_empty() => {
                    family_meta_mut(&mut snap, name).typ = rest.to_string();
                }
                "VOLATILITY" if !name.is_empty() => {
                    let vol = match rest.trim() {
                        "deterministic" => Volatility::Deterministic,
                        "perrun" => Volatility::PerRun,
                        other => {
                            return Err(format!("unknown volatility {other:?} for {name}"));
                        }
                    };
                    family_meta_mut(&mut snap, name).volatility = Some(vol);
                }
                // EXEMPLAR and foreign comments are ignored.
                _ => {}
            }
            continue;
        }
        let (key, value) = split_sample(line)?;
        snap.series.insert(key, value);
    }
    Ok(snap)
}

/// Bench-JSON field classification: wall-clock-shaped names are per-run,
/// everything else (counts, fractions of deterministic sets) is
/// deterministic.
fn bench_field_volatility(name: &str) -> Volatility {
    const PER_RUN_MARKERS: &[&str] =
        &["secs", "seconds", "latency", "per_sec", "speedup", "overhead", "_ns", "_ms"];
    if PER_RUN_MARKERS.iter().any(|m| name.contains(m)) {
        Volatility::PerRun
    } else {
        Volatility::Deterministic
    }
}

fn flatten_json(prefix: &str, v: &JsonValue, snap: &mut Snapshot) {
    match v {
        JsonValue::Number(n) => {
            snap.series.insert(prefix.to_string(), *n);
            family_meta_mut(snap, prefix).volatility = Some(bench_field_volatility(prefix));
            family_meta_mut(snap, prefix).typ = "gauge".to_string();
        }
        JsonValue::Bool(b) => {
            snap.series.insert(prefix.to_string(), if *b { 1.0 } else { 0.0 });
            family_meta_mut(snap, prefix).volatility = Some(bench_field_volatility(prefix));
            family_meta_mut(snap, prefix).typ = "gauge".to_string();
        }
        JsonValue::Object(map) => {
            for (k, child) in map {
                let key = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten_json(&key, child, snap);
            }
        }
        // Strings/arrays/null carry no comparable numeric value.
        _ => {}
    }
}

/// Parses a `BENCH_*.json` report into a [`Snapshot`] by flattening
/// numeric fields (nested objects join with `.`).
pub fn parse_bench_json(text: &str) -> Result<Snapshot, String> {
    let v = JsonValue::parse(text).map_err(|e| format!("bench json: {e}"))?;
    let mut snap = Snapshot::default();
    flatten_json("", &v, &mut snap);
    Ok(snap)
}

/// Auto-detecting parse: leading `{` means bench JSON, anything else is
/// treated as a Prometheus exposition.
pub fn parse_snapshot(text: &str) -> Result<Snapshot, String> {
    if text.trim_start().starts_with('{') {
        parse_bench_json(text)
    } else {
        parse_prometheus(text)
    }
}

/// Diff tuning knobs.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Maximum symmetric relative difference tolerated on a per-run
    /// series before it counts as a regression.
    pub per_run_threshold: f64,
    /// Skip the per-run tier entirely (cross-machine baseline gates).
    pub ignore_per_run: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig { per_run_threshold: 0.25, ignore_per_run: false }
    }
}

/// The outcome of one snapshot comparison.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Contract violations: any one of these fails the gate.
    pub regressions: Vec<String>,
    /// Advisory drift (per-run series appearing/disappearing).
    pub warnings: Vec<String>,
    /// Series compared (union of both snapshots).
    pub compared: usize,
}

impl DiffReport {
    /// True when the gate must fail.
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Human-readable report, one finding per line plus a summary.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.regressions {
            let _ = writeln!(out, "REGRESSION {r}");
        }
        for w in &self.warnings {
            let _ = writeln!(out, "WARN {w}");
        }
        let _ = writeln!(
            out,
            "obs-diff: {} series compared, {} regression(s), {} warning(s)",
            self.compared,
            self.regressions.len(),
            self.warnings.len()
        );
        out
    }
}

/// Symmetric relative difference in `[0, 1]`: `0` for equal values,
/// `1` when one side is zero and the other is not.
fn rel_diff(a: f64, b: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

/// Compares `current` against `baseline` under the two-tier contract.
///
/// A series' volatility is taken from whichever snapshot declares it
/// (current wins); undeclared series default to per-run so that foreign
/// scrapes can never fail the exact tier by accident.
pub fn diff(baseline: &Snapshot, current: &Snapshot, cfg: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();
    let mut keys: Vec<&String> = baseline.series.keys().collect();
    for k in current.series.keys() {
        if !baseline.series.contains_key(k) {
            keys.push(k);
        }
    }
    keys.sort();
    report.compared = keys.len();
    for key in keys {
        let vol = current
            .volatility_of(key)
            .or_else(|| baseline.volatility_of(key))
            .unwrap_or(Volatility::PerRun);
        let base = baseline.series.get(key).copied();
        let cur = current.series.get(key).copied();
        match vol {
            Volatility::Deterministic => match (base, cur) {
                (Some(b), Some(c)) if b == c => {}
                (Some(b), Some(c)) => {
                    report
                        .regressions
                        .push(format!("deterministic series {key} changed: {b} -> {c}"));
                }
                (Some(b), None) => {
                    report.regressions.push(format!(
                        "deterministic series {key} missing from current (baseline {b})"
                    ));
                }
                (None, Some(c)) => {
                    report.regressions.push(format!(
                        "deterministic series {key} absent from baseline (current {c}); \
                         regenerate the baseline"
                    ));
                }
                (None, None) => unreachable!("key came from one of the snapshots"),
            },
            Volatility::PerRun => {
                if cfg.ignore_per_run {
                    continue;
                }
                match (base, cur) {
                    (Some(b), Some(c)) => {
                        let d = rel_diff(b, c);
                        if d > cfg.per_run_threshold {
                            report.regressions.push(format!(
                                "per-run series {key} drifted {:.1}% (> {:.1}%): {b} -> {c}",
                                d * 100.0,
                                cfg.per_run_threshold * 100.0
                            ));
                        }
                    }
                    (Some(b), None) => {
                        report
                            .warnings
                            .push(format!("per-run series {key} missing from current ({b})"));
                    }
                    (None, Some(c)) => {
                        report.warnings.push(format!("per-run series {key} new in current ({c})"));
                    }
                    (None, None) => unreachable!("key came from one of the snapshots"),
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter(
            "verdicts_total",
            &[("verdict", "match")],
            Volatility::Deterministic,
            "per-verdict counts",
        )
        .add(7);
        reg.counter(
            "verdicts_total",
            &[("verdict", "un\"quoted\\odd")],
            Volatility::Deterministic,
            "per-verdict counts",
        )
        .add(3);
        let h = reg.histogram("lat_us", &[], Volatility::PerRun, "latency", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        reg
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let reg = sample_registry();
        let text = reg.render();
        let snap = parse_prometheus(&text).unwrap();
        assert_eq!(snap.series.get("verdicts_total{verdict=\"match\"}"), Some(&7.0));
        // Escaped label values survive the round trip intact.
        assert_eq!(
            snap.series.get("verdicts_total{verdict=\"un\\\"quoted\\\\odd\"}"),
            Some(&3.0),
            "{:?}",
            snap.series
        );
        assert_eq!(
            snap.volatility_of("verdicts_total{verdict=\"match\"}"),
            Some(Volatility::Deterministic)
        );
        // Histogram suffix series resolve to the base family's volatility.
        assert_eq!(snap.volatility_of("lat_us_bucket{le=\"1\"}"), Some(Volatility::PerRun));
        assert_eq!(snap.volatility_of("lat_us_count"), Some(Volatility::PerRun));
        assert_eq!(snap.families["verdicts_total"].help, "per-verdict counts");
        assert_eq!(snap.families["verdicts_total"].typ, "counter");
        // Identical snapshots diff clean.
        let again = parse_prometheus(&text).unwrap();
        let report = diff(&snap, &again, &DiffConfig::default());
        assert!(!report.is_regression(), "{}", report.to_text());
        assert!(report.warnings.is_empty(), "{}", report.to_text());
    }

    #[test]
    fn deterministic_perturbation_is_a_regression() {
        let text = sample_registry().render();
        let base = parse_prometheus(&text).unwrap();
        let perturbed = text
            .replace("verdicts_total{verdict=\"match\"} 7", "verdicts_total{verdict=\"match\"} 8");
        assert_ne!(text, perturbed, "perturbation must hit a line");
        let cur = parse_prometheus(&perturbed).unwrap();
        let report = diff(&base, &cur, &DiffConfig::default());
        assert!(report.is_regression());
        assert!(
            report.regressions.iter().any(|r| r.contains("verdicts_total") && r.contains("7")),
            "{}",
            report.to_text()
        );
    }

    #[test]
    fn deterministic_missing_or_new_series_is_a_regression() {
        let text = sample_registry().render();
        let base = parse_prometheus(&text).unwrap();
        let mut cur = base.clone();
        cur.series.remove("verdicts_total{verdict=\"match\"}");
        let report = diff(&base, &cur, &DiffConfig::default());
        assert!(report.regressions.iter().any(|r| r.contains("missing")), "{}", report.to_text());
        let report = diff(&cur, &base, &DiffConfig::default());
        assert!(
            report.regressions.iter().any(|r| r.contains("absent from baseline")),
            "{}",
            report.to_text()
        );
    }

    #[test]
    fn per_run_series_use_relative_threshold() {
        let text = sample_registry().render();
        let base = parse_prometheus(&text).unwrap();
        let mut cur = base.clone();
        // lat_us_sum: 5.5 -> 6.0 is ~8.3% drift, within the default 25%.
        cur.series.insert("lat_us_sum".to_string(), 6.0);
        let report = diff(&base, &cur, &DiffConfig::default());
        assert!(!report.is_regression(), "{}", report.to_text());
        // 5.5 -> 60 blows the threshold.
        cur.series.insert("lat_us_sum".to_string(), 60.0);
        let report = diff(&base, &cur, &DiffConfig::default());
        assert!(report.is_regression(), "{}", report.to_text());
        // ...unless the per-run tier is ignored.
        let report =
            diff(&base, &cur, &DiffConfig { ignore_per_run: true, ..DiffConfig::default() });
        assert!(!report.is_regression(), "{}", report.to_text());
        // Missing per-run series is only a warning.
        let mut gone = base.clone();
        gone.series.retain(|k, _| !k.starts_with("lat_us"));
        let report = diff(&base, &gone, &DiffConfig::default());
        assert!(!report.is_regression(), "{}", report.to_text());
        assert!(!report.warnings.is_empty());
    }

    #[test]
    fn undeclared_volatility_defaults_to_per_run() {
        let foreign = "up 1\nscrape_duration_seconds 0.02\n";
        let base = parse_prometheus(foreign).unwrap();
        let cur = parse_prometheus("up 0\nscrape_duration_seconds 0.5\n").unwrap();
        let report = diff(&base, &cur, &DiffConfig::default());
        // Both drifted >25%, but as per-run regressions, not exact ones.
        assert_eq!(report.regressions.len(), 2, "{}", report.to_text());
        assert!(report.regressions.iter().all(|r| r.contains("per-run")));
    }

    #[test]
    fn bench_json_fields_classify_and_diff() {
        let a = r#"{"requests":50000,"signatures":1160,"matched":49426,
                    "elapsed_secs":0.14,"p99_latency_us":8.8,
                    "requests_per_sec":343941.7}"#;
        let snap = parse_snapshot(a).unwrap();
        assert_eq!(snap.volatility_of("requests"), Some(Volatility::Deterministic));
        assert_eq!(snap.volatility_of("elapsed_secs"), Some(Volatility::PerRun));
        assert_eq!(snap.volatility_of("p99_latency_us"), Some(Volatility::PerRun));
        assert_eq!(snap.volatility_of("requests_per_sec"), Some(Volatility::PerRun));
        // Same counts, wildly different timings: clean under ignore_per_run
        // and under the relative tier only if within threshold.
        let b = r#"{"requests":50000,"signatures":1160,"matched":49426,
                    "elapsed_secs":0.15,"p99_latency_us":9.0,
                    "requests_per_sec":320000.0}"#;
        let cur = parse_snapshot(b).unwrap();
        let report = diff(&snap, &cur, &DiffConfig::default());
        assert!(!report.is_regression(), "{}", report.to_text());
        // A matched-count change is deterministic and exact.
        let c = b.replace("49426", "49000");
        let report = diff(&snap, &parse_snapshot(&c).unwrap(), &DiffConfig::default());
        assert!(report.is_regression(), "{}", report.to_text());
        assert!(report.regressions.iter().any(|r| r.contains("matched")));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("x{le=\"1\" 3\n").is_err(), "unterminated labels");
        assert!(parse_prometheus("lonely_name\n").is_err(), "no value");
        assert!(parse_prometheus("x nope\n").is_err(), "non-numeric value");
        assert!(parse_prometheus("# VOLATILITY x sometimes\n").is_err(), "bad volatility");
    }
}
