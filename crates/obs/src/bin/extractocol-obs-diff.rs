//! The `extractocol-obs-diff` tool: regression-gate two observability
//! snapshots (Prometheus-text expositions from `--metrics-out` /
//! `METRICS` scrapes, or `BENCH_*.json` reports).
//!
//! ```bash
//! extractocol-obs-diff baseline.txt current.txt
//! extractocol-obs-diff BENCH_a.json BENCH_b.json --per-run-threshold 0.5
//! extractocol-obs-diff METRICS_classify.baseline.txt METRICS_classify.txt \
//!     --ignore-per-run      # cross-machine: deterministic tier only
//! ```
//!
//! Deterministic series must match exactly; per-run series are held to a
//! symmetric relative threshold (default 25%). Exits 0 when clean, 1 on
//! any regression, 2 on usage or parse errors.

use extractocol_obs::{diff, parse_snapshot, DiffConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: extractocol-obs-diff <baseline> <current> \
         [--per-run-threshold <0..1>] [--ignore-per-run] [--quiet]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut cfg = DiffConfig::default();
    let mut quiet = false;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ignore-per-run" => cfg.ignore_per_run = true,
            "--quiet" => quiet = true,
            "--per-run-threshold" => match it.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(t) if t.is_finite() && t >= 0.0 => cfg.per_run_threshold = t,
                _ => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            _ => return usage(),
        }
    }
    if paths.len() != 2 {
        return usage();
    }

    let mut snaps = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("extractocol-obs-diff: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match parse_snapshot(&text) {
            Ok(s) => snaps.push(s),
            Err(e) => {
                eprintln!("extractocol-obs-diff: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let report = diff(&snaps[0], &snaps[1], &cfg);
    if !quiet {
        print!("{}", report.to_text());
    }
    if report.is_regression() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
