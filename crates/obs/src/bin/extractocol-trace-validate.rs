//! The `extractocol-trace-validate` tool: strict round-trip validation of
//! a Chrome-trace JSON file produced by `--trace-out`.
//!
//! ```bash
//! extractocol-trace-validate trace.json
//! ```
//!
//! Exits zero when the trace is well-formed (complete events only,
//! per-thread monotonic timestamps, proper nesting) and prints the trace
//! statistics; exits non-zero with the first violation otherwise.

use extractocol_obs::validate_chrome_trace;
use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: extractocol-trace-validate <trace.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("extractocol-trace-validate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_chrome_trace(&text) {
        Ok(stats) => {
            println!(
                "{path}: valid trace — {} event(s), {} thread(s), max depth {}, {}us span",
                stats.events, stats.threads, stats.max_depth, stats.span_end_us
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("extractocol-trace-validate: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
