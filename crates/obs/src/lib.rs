//! # extractocol-obs
//!
//! The workspace's observability layer: zero-external-dependency,
//! offline-safe tracing and metrics, threaded through the static pipeline
//! (per phase → per DP → per interprocedural step), the conformance
//! oracle, and the serving classifier (per shard → per request).
//!
//! Three pieces:
//!
//! * [`span`] — the span tree: [`TraceCollector`]/[`SpanGuard`] RAII API
//!   with a thread-safe, capacity-capped collector that works under the
//!   `core::par` worker pools; spans carry typed key/value attributes
//!   (dp_id, method signature, candidate count, verdict, …).
//! * [`export`] — span exporters: Chrome `chrome://tracing` JSON, the
//!   collapsed-stack text format consumed by standard flamegraph tooling,
//!   a human top-k summary table, and the strict round-trip validator
//!   behind the `extractocol-trace-validate` binary and the CI gate.
//! * [`metrics`] — the instrument registry: counters, gauges, and
//!   fixed-bucket latency histograms (p50/p90/p99/p999 via bucket
//!   interpolation) with a Prometheus-style text exposition renderer and
//!   an explicit deterministic-vs-per-run split
//!   ([`metrics::Volatility`]) so jobs-invariance stays testable.
//! * [`log`] — the structured event log: leveled key=value / JSON-line
//!   records in a fixed-capacity deterministic ring buffer with an
//!   optional streaming file sink and a dropped-records counter.
//! * [`diff`] — snapshot diffing for `extractocol-obs-diff`: parses
//!   Prometheus-text and `BENCH_*.json` snapshots, compares the
//!   deterministic family exactly and the per-run family against
//!   relative thresholds.
//!
//! Everything here is *observational*: nothing feeds back into analysis
//! results, and nothing enters canonical report serialization.

pub mod diff;
pub mod export;
pub mod log;
pub mod metrics;
pub mod span;

pub use diff::{diff, parse_snapshot, DiffConfig, DiffReport, Snapshot};
pub use export::{
    chrome_trace_json, collapsed_stacks, summary_table, validate_chrome_trace, TraceStats,
};
pub use log::{EventLog, EventRecord, Level, SinkFormat, DEFAULT_EVENT_CAPACITY};
pub use metrics::{Counter, Gauge, Histogram, Registry, Volatility};
pub use span::{
    AttrValue, Exemplar, ExemplarStore, SpanGuard, SpanRecord, TraceCollector,
    DEFAULT_EXEMPLAR_CAPACITY, DEFAULT_SPAN_CAPACITY,
};
