//! The span tree: RAII timed spans with typed attributes, collected into
//! a thread-safe, capacity-capped buffer.
//!
//! A [`TraceCollector`] is either **enabled** (it owns a shared record
//! buffer) or **disabled** (a no-op handle). The disabled path takes no
//! timestamps and allocates nothing — one `Option` check per call — so
//! instrumented code can thread a collector through hot paths
//! unconditionally and pay only when tracing was requested.
//!
//! [`TraceCollector::span`] returns a [`SpanGuard`]; the span covers the
//! guard's lifetime. Guards nest through a per-thread stack: a span
//! opened while another is open on the same thread becomes its child,
//! which is what turns flat records into the phase → DP → step tree. The
//! `core::par` worker pools interact naturally — each worker thread roots
//! its own stack, and every record carries a stable small thread id, so
//! exporters render one lane per worker.
//!
//! Guards are intentionally `!Send`: a span must end on the thread that
//! started it, otherwise the nesting stack would corrupt.
//!
//! The buffer is capped ([`TraceCollector::with_capacity`]): once full,
//! further spans are counted in [`TraceCollector::dropped`] and
//! discarded, so tracing a heavy-traffic run cannot OOM the collector.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default span-buffer capacity: enough for the whole 34-app corpus with
/// per-DP and per-step spans, small enough (~tens of MB worst case) to
/// stay friendly under heavy serving traffic.
pub const DEFAULT_SPAN_CAPACITY: usize = 262_144;

/// A typed attribute value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (counts, ids).
    Uint(u64),
    /// Floating point.
    Float(f64),
    /// Free-form text (method signatures, verdicts).
    Str(String),
    /// Boolean flag (cache hit/miss, matched).
    Bool(bool),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Uint(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Uint(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// One finished span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span name (e.g. `phase:slicing`, `dp:3`).
    pub name: String,
    /// Category lane (e.g. `phase`, `dp`, `classify`).
    pub cat: String,
    /// Start, nanoseconds since the collector's epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the collector's epoch (`>= start_ns`).
    pub end_ns: u64,
    /// Time spent in this span *excluding* child spans, nanoseconds.
    pub self_ns: u64,
    /// Stable small id of the recording thread.
    pub tid: u64,
    /// Nesting depth on the recording thread (0 = thread root).
    pub depth: usize,
    /// The `;`-joined ancestor path including this span's own name — the
    /// collapsed-stack key.
    pub stack: String,
    /// Typed attributes, in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

struct Inner {
    epoch: Instant,
    capacity: usize,
    records: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

struct Frame {
    name: String,
    child_ns: u64,
}

thread_local! {
    /// Stable per-thread id, assigned on first span from this thread.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// The open-span stack of this thread (names + child-time accumulators).
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// The span collector handle. Cheap to clone; all clones feed one buffer.
#[derive(Clone)]
pub struct TraceCollector {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(i) => write!(
                f,
                "TraceCollector(enabled, {} recorded)",
                i.records.lock().map(|r| r.len()).unwrap_or(0)
            ),
            None => write!(f, "TraceCollector(disabled)"),
        }
    }
}

impl TraceCollector {
    /// An enabled collector with the default span capacity.
    pub fn enabled() -> TraceCollector {
        TraceCollector::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled collector that keeps at most `capacity` spans; further
    /// spans are counted as dropped.
    pub fn with_capacity(capacity: usize) -> TraceCollector {
        TraceCollector {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                capacity,
                records: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// The no-op collector: spans cost one branch, record nothing.
    pub fn disabled() -> TraceCollector {
        TraceCollector { inner: None }
    }

    /// True when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span in the default `task` category.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        self.span_in("task", name)
    }

    /// Opens a span in an explicit category. The span ends (and is
    /// recorded) when the returned guard drops.
    pub fn span_in(&self, cat: &str, name: impl Into<String>) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { state: None, _not_send: PhantomData };
        };
        let name = name.into();
        let start_ns = inner.epoch.elapsed().as_nanos() as u64;
        let (depth, stack) = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let mut path = String::new();
            for f in s.iter() {
                path.push_str(&f.name);
                path.push(';');
            }
            path.push_str(&name);
            let depth = s.len();
            s.push(Frame { name: name.clone(), child_ns: 0 });
            (depth, path)
        });
        SpanGuard {
            state: Some(GuardState {
                inner: Arc::clone(inner),
                name,
                cat: cat.to_string(),
                start_ns,
                depth,
                stack,
                attrs: Vec::new(),
            }),
            _not_send: PhantomData,
        }
    }

    /// Spans dropped because the buffer hit its capacity.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map(|i| i.dropped.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Spans recorded so far.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map(|i| i.records.lock().expect("span buffer").len()).unwrap_or(0)
    }

    /// True when nothing has been recorded (or the collector is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every recorded span out of the buffer. Records are in
    /// completion order (children before parents); exporters re-sort.
    pub fn drain(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(i) => std::mem::take(&mut *i.records.lock().expect("span buffer")),
            None => Vec::new(),
        }
    }

    /// A copy of every recorded span, leaving the buffer intact.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(i) => i.records.lock().expect("span buffer").clone(),
            None => Vec::new(),
        }
    }
}

struct GuardState {
    inner: Arc<Inner>,
    name: String,
    cat: String,
    start_ns: u64,
    depth: usize,
    stack: String,
    attrs: Vec<(String, AttrValue)>,
}

/// RAII handle for one open span; records the span on drop. `!Send` by
/// construction — the span must end on the thread that opened it.
pub struct SpanGuard {
    state: Option<GuardState>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Attaches (or appends) a typed attribute. No-op on disabled spans.
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) -> &mut Self {
        if let Some(state) = &mut self.state {
            state.attrs.push((key.to_string(), value.into()));
        }
        self
    }

    /// True when this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else { return };
        let end_ns = state.inner.epoch.elapsed().as_nanos() as u64;
        let dur_ns = end_ns.saturating_sub(state.start_ns);
        let child_ns = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let child_ns = s.pop().map(|f| f.child_ns).unwrap_or(0);
            if let Some(parent) = s.last_mut() {
                parent.child_ns += dur_ns;
            }
            child_ns
        });
        let tid = TID.with(|t| *t);
        let record = SpanRecord {
            name: state.name,
            cat: state.cat,
            start_ns: state.start_ns,
            end_ns,
            self_ns: dur_ns.saturating_sub(child_ns),
            tid,
            depth: state.depth,
            stack: state.stack,
            attrs: state.attrs,
        };
        let mut records = state.inner.records.lock().expect("span buffer");
        if records.len() < state.inner.capacity {
            records.push(record);
        } else {
            drop(records);
            state.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Default number of slow-request exemplars a daemon retains.
pub const DEFAULT_EXEMPLAR_CAPACITY: usize = 8;

/// One retained slow request: its trace id, latency, verdict, and the
/// span records that covered it — enough to explain *why* it was slow
/// without replaying traffic.
#[derive(Clone, Debug)]
pub struct Exemplar {
    /// The request's deterministic trace id (16 hex digits).
    pub trace_id: String,
    /// End-to-end request latency in microseconds.
    pub latency_us: u64,
    /// Classification verdict (`match`, `unmatched`, `error`, ...).
    pub verdict: String,
    /// Free-form detail (matched signature, error message).
    pub detail: String,
    /// The spans recorded under this request, completion order.
    pub spans: Vec<SpanRecord>,
}

/// Top-K slowest-request store. `offer` is designed for the classify hot
/// path: once the store is full, a request no slower than the current
/// floor is rejected with a single atomic load — no lock, no allocation —
/// so steady-state traffic pays (near) nothing.
///
/// Ties keep the earlier arrival, so replaying identical traffic yields
/// an identical exemplar set.
pub struct ExemplarStore {
    capacity: usize,
    /// Smallest retained latency once full; 0 while filling. Advisory
    /// fast-reject only — the lock re-checks before mutating.
    floor_us: AtomicU64,
    slots: Mutex<Vec<Exemplar>>,
}

impl ExemplarStore {
    /// A store retaining the `capacity` slowest requests.
    pub fn new(capacity: usize) -> ExemplarStore {
        ExemplarStore {
            capacity: capacity.max(1),
            floor_us: AtomicU64::new(0),
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Offers a finished request; retained only if it ranks among the
    /// top-K slowest seen so far.
    pub fn offer(&self, exemplar: Exemplar) {
        // Fast reject: full store, request not slower than the floor.
        if exemplar.latency_us <= self.floor_us.load(Ordering::Relaxed) {
            return;
        }
        let mut slots = self.slots.lock().expect("exemplar store");
        slots.push(exemplar);
        // Stable sort: equal latencies keep arrival order, so the
        // eviction below deterministically drops the latest tie.
        slots.sort_by_key(|e| std::cmp::Reverse(e.latency_us));
        slots.truncate(self.capacity);
        if slots.len() == self.capacity {
            let floor = slots.last().map(|e| e.latency_us).unwrap_or(0);
            self.floor_us.store(floor, Ordering::Relaxed);
        }
    }

    /// Retained exemplars, slowest first.
    pub fn snapshot(&self) -> Vec<Exemplar> {
        self.slots.lock().expect("exemplar store").clone()
    }

    /// Retained count.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("exemplar store").len()
    }

    /// True when nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity (K).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Renders the store as text: one header line per exemplar followed
    /// by one indented line per span — the payload of the daemon's
    /// `SLOW` verb.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in self.snapshot() {
            let _ = writeln!(
                out,
                "trace_id={} latency_us={} verdict={} detail={} spans={}",
                e.trace_id,
                e.latency_us,
                e.verdict,
                if e.detail.is_empty() { "-" } else { &e.detail },
                e.spans.len()
            );
            for s in &e.spans {
                let _ = writeln!(
                    out,
                    "  span name={} cat={} dur_us={} self_us={}",
                    s.name,
                    s.cat,
                    s.dur_ns() / 1_000,
                    s.self_ns / 1_000
                );
            }
        }
        out
    }
}

impl std::fmt::Debug for ExemplarStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExemplarStore({}/{})", self.len(), self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let t = TraceCollector::disabled();
        assert!(!t.is_enabled());
        {
            let mut g = t.span("work");
            g.attr("k", 1u64);
            assert!(!g.is_recording());
        }
        assert!(t.drain().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn spans_nest_and_accumulate_self_time() {
        let t = TraceCollector::enabled();
        {
            let mut outer = t.span_in("phase", "outer");
            outer.attr("app", "demo");
            {
                let _inner = t.span_in("dp", "inner");
            }
        }
        let mut records = t.drain();
        assert_eq!(records.len(), 2);
        // Completion order: inner first.
        let inner = records.remove(0);
        let outer = records.remove(0);
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.stack, "outer;inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.stack, "outer");
        assert_eq!(outer.attrs, vec![("app".to_string(), AttrValue::Str("demo".into()))]);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
        assert!(outer.self_ns <= outer.dur_ns());
        assert_eq!(outer.self_ns, outer.dur_ns() - inner.dur_ns());
    }

    #[test]
    fn capacity_cap_counts_drops() {
        let t = TraceCollector::with_capacity(2);
        for i in 0..5 {
            let _g = t.span(format!("s{i}"));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn worker_threads_get_distinct_tids() {
        let t = TraceCollector::enabled();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let t = t.clone();
                s.spawn(move || {
                    let _g = t.span("worker");
                });
            }
        });
        let records = t.drain();
        assert_eq!(records.len(), 3);
        let tids: std::collections::BTreeSet<u64> = records.iter().map(|r| r.tid).collect();
        assert_eq!(tids.len(), 3, "each thread has its own tid");
        // All thread roots.
        assert!(records.iter().all(|r| r.depth == 0));
    }

    #[test]
    fn snapshot_leaves_buffer_intact() {
        let t = TraceCollector::enabled();
        {
            let _g = t.span("a");
        }
        assert_eq!(t.snapshot().len(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.drain().len(), 1);
        assert!(t.is_empty());
    }

    fn ex(id: &str, us: u64) -> Exemplar {
        Exemplar {
            trace_id: id.to_string(),
            latency_us: us,
            verdict: "match".to_string(),
            detail: String::new(),
            spans: Vec::new(),
        }
    }

    #[test]
    fn exemplar_store_keeps_top_k_slowest() {
        let store = ExemplarStore::new(3);
        assert!(store.is_empty());
        for (id, us) in [("a", 10), ("b", 50), ("c", 20), ("d", 5), ("e", 40)] {
            store.offer(ex(id, us));
        }
        let kept: Vec<(String, u64)> =
            store.snapshot().into_iter().map(|e| (e.trace_id, e.latency_us)).collect();
        assert_eq!(kept, vec![("b".to_string(), 50), ("e".to_string(), 40), ("c".to_string(), 20)]);
        assert_eq!(store.len(), 3);
        assert_eq!(store.capacity(), 3);
    }

    #[test]
    fn exemplar_store_fast_rejects_at_floor_and_breaks_ties_first_wins() {
        let store = ExemplarStore::new(2);
        store.offer(ex("a", 30));
        store.offer(ex("b", 30)); // tie: both fit while filling
        store.offer(ex("c", 30)); // tie at the floor: fast-rejected
        let kept: Vec<String> = store.snapshot().into_iter().map(|e| e.trace_id).collect();
        assert_eq!(kept, vec!["a".to_string(), "b".to_string()]);
        store.offer(ex("d", 31)); // strictly slower: evicts the floor tie
        let kept: Vec<String> = store.snapshot().into_iter().map(|e| e.trace_id).collect();
        assert_eq!(kept, vec!["d".to_string(), "a".to_string()]);
    }

    #[test]
    fn exemplar_render_includes_spans() {
        let t = TraceCollector::enabled();
        {
            let _g = t.span_in("daemon", "daemon_request");
        }
        let store = ExemplarStore::new(1);
        let mut e = ex("00000000deadbeef", 7);
        e.spans = t.drain();
        e.detail = "sig:42".to_string();
        store.offer(e);
        let text = store.render();
        assert!(text.contains("trace_id=00000000deadbeef latency_us=7 verdict=match"), "{text}");
        assert!(text.contains("detail=sig:42 spans=1"), "{text}");
        assert!(text.contains("  span name=daemon_request cat=daemon"), "{text}");
    }
}
