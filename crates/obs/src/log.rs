//! The structured event log: leveled, key=value / JSON-line records in a
//! fixed-capacity deterministic ring buffer, with an optional streaming
//! file sink.
//!
//! The log complements the span tree: spans answer *where time went*,
//! events answer *what happened* — connection lifecycle, hot-swap state
//! transitions, parse rejections, pipeline phase completions. Each record
//! carries a level, a target (the emitting subsystem), a message, an
//! optional per-request trace id (see the daemon's deterministic
//! trace-id derivation), and typed key/value fields reusing
//! [`AttrValue`].
//!
//! # Determinism contract
//!
//! The ring buffer holds the most recent `capacity` records. Overflow
//! evicts **oldest-first**, one eviction per overflowing record, counted
//! in [`EventLog::dropped`] (and mirrored into an attached
//! `log_records_dropped_total` counter when one is registered). Record
//! sequence numbers are assigned from a single atomic at emit time, so
//! for a single-threaded emitter the retained window after N emissions
//! is exactly records `N-capacity+1 ..= N` — pinned by the
//! capacity+1 / capacity×3 eviction tests.
//!
//! Like the span collector, a disabled [`EventLog`] is a no-op handle:
//! one `Option` check per emission, no timestamps, no allocation — hot
//! paths can thread it unconditionally.
//!
//! # Sink
//!
//! [`EventLog::set_sink`] attaches a streaming writer (the `--log-out`
//! file): every record that passes the level filter is rendered and
//! written immediately, so a crash loses at most the in-flight line. The
//! ring buffer is unaffected by the sink — it always holds the most
//! recent window for live queries.

use crate::metrics::Counter;
use crate::span::AttrValue;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default ring-buffer capacity: a generous live window without letting
/// a long-running daemon grow without bound.
pub const DEFAULT_EVENT_CAPACITY: usize = 8192;

/// Event severity. Ordered: `Trace < Debug < Info < Warn < Error`; a log
/// configured at level L records events at L and above.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Finest-grained (per-request detail).
    Trace,
    /// Diagnostic detail (connection lifecycle, phase completions).
    Debug,
    /// Normal operational milestones (swap committed, run finished).
    Info,
    /// Recoverable anomalies (parse rejections, drain timeouts).
    Warn,
    /// Failures (refused swaps, sink errors).
    Error,
}

impl Level {
    /// Canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a (case-insensitive) level name — the `--log-level` flag.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One emitted event.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Global sequence number (1-based, atomic at emit time).
    pub seq: u64,
    /// Microseconds since the log's epoch (wall-clock; excluded from any
    /// deterministic comparison).
    pub elapsed_us: u64,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem (`daemon`, `pipeline`, `eval`, …).
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// Per-request trace id, when the event belongs to a request.
    pub trace_id: Option<String>,
    /// Typed key/value fields, in insertion order.
    pub fields: Vec<(String, AttrValue)>,
}

/// Escapes a field value for the key=value line format: values with
/// whitespace, quotes, or `=` are double-quoted with `\"`/`\\`/`\n`/`\t`
/// escapes; bare tokens pass through.
fn escape_value(v: &str) -> String {
    let needs_quoting =
        v.is_empty() || v.chars().any(|c| c.is_whitespace() || c == '"' || c == '=' || c == '\\');
    if !needs_quoting {
        return v.to_string();
    }
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn attr_text(v: &AttrValue) -> String {
    match v {
        AttrValue::Int(i) => i.to_string(),
        AttrValue::Uint(u) => u.to_string(),
        AttrValue::Float(f) => format!("{f}"),
        AttrValue::Str(s) => escape_value(s),
        AttrValue::Bool(b) => b.to_string(),
    }
}

impl EventRecord {
    /// The `key=value` line rendering (no trailing newline):
    /// `seq=… ts_us=… level=… target=… [trace_id=…] msg="…" k=v …`.
    pub fn to_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "seq={} ts_us={} level={} target={}",
            self.seq,
            self.elapsed_us,
            self.level,
            escape_value(&self.target)
        );
        if let Some(id) = &self.trace_id {
            let _ = write!(out, " trace_id={}", escape_value(id));
        }
        let _ = write!(out, " msg={}", escape_value(&self.message));
        for (k, v) in &self.fields {
            let _ = write!(out, " {}={}", k, attr_text(v));
        }
        out
    }

    /// The JSON-line rendering (one JSON object, no trailing newline).
    pub fn to_json_line(&self) -> String {
        use extractocol_http::JsonValue;
        let mut o = JsonValue::object();
        o.insert("seq", JsonValue::num(self.seq as f64));
        o.insert("ts_us", JsonValue::num(self.elapsed_us as f64));
        o.insert("level", JsonValue::str(self.level.as_str()));
        o.insert("target", JsonValue::str(&self.target));
        if let Some(id) = &self.trace_id {
            o.insert("trace_id", JsonValue::str(id));
        }
        o.insert("msg", JsonValue::str(&self.message));
        for (k, v) in &self.fields {
            let jv = match v {
                AttrValue::Int(i) => JsonValue::num(*i as f64),
                AttrValue::Uint(u) => JsonValue::num(*u as f64),
                AttrValue::Float(f) => JsonValue::num(*f),
                AttrValue::Str(s) => JsonValue::str(s),
                AttrValue::Bool(b) => JsonValue::Bool(*b),
            };
            o.insert(k, jv);
        }
        o.to_json()
    }
}

/// Sink line format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkFormat {
    /// `key=value` lines.
    Text,
    /// One JSON object per line.
    Json,
}

struct LogInner {
    epoch: Instant,
    min_level: Level,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<EventRecord>>,
    sink: Mutex<Option<(Box<dyn Write + Send>, SinkFormat)>>,
    dropped_counter: Mutex<Option<Arc<Counter>>>,
}

/// The event-log handle. Cheap to clone; clones share one ring buffer
/// and sink. The default is the disabled log.
#[derive(Clone, Default)]
pub struct EventLog {
    inner: Option<Arc<LogInner>>,
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(i) => write!(
                f,
                "EventLog(enabled, level={}, {} buffered, {} dropped)",
                i.min_level,
                i.ring.lock().map(|r| r.len()).unwrap_or(0),
                i.dropped.load(Ordering::Relaxed)
            ),
            None => write!(f, "EventLog(disabled)"),
        }
    }
}

impl EventLog {
    /// The no-op log: emissions cost one branch and record nothing.
    pub fn disabled() -> EventLog {
        EventLog { inner: None }
    }

    /// An enabled log recording events at `min_level` and above, with
    /// the default ring capacity.
    pub fn enabled(min_level: Level) -> EventLog {
        EventLog::with_capacity(min_level, DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled log with an explicit ring capacity (`capacity >= 1`).
    pub fn with_capacity(min_level: Level, capacity: usize) -> EventLog {
        assert!(capacity >= 1, "event ring needs at least one slot");
        EventLog {
            inner: Some(Arc::new(LogInner {
                epoch: Instant::now(),
                min_level,
                capacity,
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                ring: Mutex::new(VecDeque::new()),
                sink: Mutex::new(None),
                dropped_counter: Mutex::new(None),
            })),
        }
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when an event at `level` would be recorded.
    pub fn enabled_at(&self, level: Level) -> bool {
        self.inner.as_ref().is_some_and(|i| level >= i.min_level)
    }

    /// Attaches a streaming sink (the `--log-out` file). Every record
    /// that passes the level filter is rendered in `format` and written
    /// (with a trailing newline) at emit time.
    pub fn set_sink(&self, writer: Box<dyn Write + Send>, format: SinkFormat) {
        if let Some(i) = &self.inner {
            *i.sink.lock().unwrap_or_else(|e| e.into_inner()) = Some((writer, format));
        }
    }

    /// Mirrors ring-buffer evictions into a registry counter (the
    /// `log_records_dropped_total` family).
    pub fn set_dropped_counter(&self, counter: Arc<Counter>) {
        if let Some(i) = &self.inner {
            *i.dropped_counter.lock().unwrap_or_else(|e| e.into_inner()) = Some(counter);
        }
    }

    /// Starts an event at `level`. The returned builder records the
    /// event when it drops (or on [`EventBuilder::emit`]); on a disabled
    /// log — or below the level floor — it is a no-op.
    pub fn event(&self, level: Level, target: &str, message: &str) -> EventBuilder<'_> {
        let pass = self.enabled_at(level);
        EventBuilder {
            log: self,
            data: pass.then(|| PendingEvent {
                level,
                target: target.to_string(),
                message: message.to_string(),
                trace_id: None,
                fields: Vec::new(),
            }),
        }
    }

    /// [`EventLog::event`] at `Debug`.
    pub fn debug(&self, target: &str, message: &str) -> EventBuilder<'_> {
        self.event(Level::Debug, target, message)
    }

    /// [`EventLog::event`] at `Info`.
    pub fn info(&self, target: &str, message: &str) -> EventBuilder<'_> {
        self.event(Level::Info, target, message)
    }

    /// [`EventLog::event`] at `Warn`.
    pub fn warn(&self, target: &str, message: &str) -> EventBuilder<'_> {
        self.event(Level::Warn, target, message)
    }

    /// [`EventLog::event`] at `Error`.
    pub fn error(&self, target: &str, message: &str) -> EventBuilder<'_> {
        self.event(Level::Error, target, message)
    }

    fn push(&self, pending: PendingEvent) {
        let Some(inner) = &self.inner else { return };
        let record = EventRecord {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed) + 1,
            elapsed_us: inner.epoch.elapsed().as_micros() as u64,
            level: pending.level,
            target: pending.target,
            message: pending.message,
            trace_id: pending.trace_id,
            fields: pending.fields,
        };
        {
            let mut sink = inner.sink.lock().unwrap_or_else(|e| e.into_inner());
            if let Some((w, format)) = sink.as_mut() {
                let line = match format {
                    SinkFormat::Text => record.to_line(),
                    SinkFormat::Json => record.to_json_line(),
                };
                // A failed sink write must never take the daemon down;
                // the record still lands in the ring.
                let _ = writeln!(w, "{line}");
            }
        }
        let mut ring = inner.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == inner.capacity {
            // Deterministic overflow: evict exactly the oldest record.
            ring.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            let counter = inner.dropped_counter.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(c) = counter.as_ref() {
                c.inc();
            }
        }
        ring.push_back(record);
    }

    /// Records evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map(|i| i.dropped.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Records emitted over the log's lifetime (evicted or not).
    pub fn total(&self) -> u64 {
        self.inner.as_ref().map(|i| i.seq.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Records currently buffered in the ring.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map(|i| i.ring.lock().unwrap_or_else(|e| e.into_inner()).len())
            .unwrap_or(0)
    }

    /// True when nothing is buffered (or the log is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the buffered window, oldest first.
    pub fn snapshot(&self) -> Vec<EventRecord> {
        match &self.inner {
            Some(i) => i.ring.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Takes the buffered window out of the ring, oldest first.
    pub fn drain(&self) -> Vec<EventRecord> {
        match &self.inner {
            Some(i) => {
                std::mem::take(&mut *i.ring.lock().unwrap_or_else(|e| e.into_inner())).into()
            }
            None => Vec::new(),
        }
    }

    /// The buffered window rendered as key=value lines, oldest first.
    pub fn render_lines(&self) -> String {
        let mut out = String::new();
        for r in self.snapshot() {
            out.push_str(&r.to_line());
            out.push('\n');
        }
        out
    }
}

struct PendingEvent {
    level: Level,
    target: String,
    message: String,
    trace_id: Option<String>,
    fields: Vec<(String, AttrValue)>,
}

/// Builder for one event; the event is recorded when the builder drops.
/// On a disabled (or level-filtered) log every method is a no-op.
pub struct EventBuilder<'a> {
    log: &'a EventLog,
    data: Option<PendingEvent>,
}

impl EventBuilder<'_> {
    /// Attaches a typed key/value field.
    pub fn field(mut self, key: &str, value: impl Into<AttrValue>) -> Self {
        if let Some(d) = &mut self.data {
            d.fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Stamps the event with a per-request trace id.
    pub fn trace_id(mut self, id: &str) -> Self {
        if let Some(d) = &mut self.data {
            d.trace_id = Some(id.to_string());
        }
        self
    }

    /// Records the event now (equivalent to dropping the builder).
    pub fn emit(self) {}
}

impl Drop for EventBuilder<'_> {
    fn drop(&mut self) {
        if let Some(d) = self.data.take() {
            self.log.push(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let log = EventLog::disabled();
        log.info("t", "hello").field("k", 1u64).emit();
        assert!(!log.is_enabled());
        assert!(!log.enabled_at(Level::Error));
        assert_eq!(log.total(), 0);
        assert!(log.snapshot().is_empty());
    }

    #[test]
    fn level_floor_filters_and_orders() {
        assert!(Level::Trace < Level::Debug && Level::Warn < Level::Error);
        let log = EventLog::enabled(Level::Info);
        log.debug("t", "filtered").emit();
        log.info("t", "kept").emit();
        log.warn("t", "also kept").emit();
        assert_eq!(log.total(), 2);
        let recs = log.snapshot();
        assert_eq!(recs[0].message, "kept");
        assert_eq!(recs[0].seq, 1);
        assert_eq!(recs[1].level, Level::Warn);
        assert!(Level::parse("WARN") == Some(Level::Warn) && Level::parse("bogus").is_none());
    }

    #[test]
    fn ring_overflow_is_deterministic_at_capacity_plus_one() {
        let cap = 16usize;
        let log = EventLog::with_capacity(Level::Trace, cap);
        for i in 0..=cap {
            log.info("t", &format!("e{i}")).emit();
        }
        // capacity+1 emissions: exactly one eviction, the oldest record.
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.len(), cap);
        let seqs: Vec<u64> = log.snapshot().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (2..=cap as u64 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn ring_overflow_is_deterministic_at_three_times_capacity() {
        let cap = 16usize;
        let log = EventLog::with_capacity(Level::Trace, cap);
        for i in 0..cap * 3 {
            log.info("t", &format!("e{i}")).emit();
        }
        // capacity×3 emissions: exactly 2×capacity oldest-first evictions;
        // the retained window is the last `capacity` records in order.
        assert_eq!(log.dropped(), 2 * cap as u64);
        assert_eq!(log.total(), 3 * cap as u64);
        let seqs: Vec<u64> = log.snapshot().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (2 * cap as u64 + 1..=3 * cap as u64).collect::<Vec<_>>());
    }

    #[test]
    fn eviction_bumps_the_attached_registry_counter() {
        let reg = crate::metrics::Registry::new();
        let c = reg.counter(
            "log_records_dropped_total",
            &[],
            crate::metrics::Volatility::Deterministic,
            "evictions",
        );
        let log = EventLog::with_capacity(Level::Trace, 2);
        log.set_dropped_counter(Arc::clone(&c));
        for i in 0..5 {
            log.info("t", &format!("e{i}")).emit();
        }
        assert_eq!(log.dropped(), 3);
        assert_eq!(c.get(), 3);
        assert!(reg.render().contains("log_records_dropped_total 3"));
    }

    #[test]
    fn line_rendering_escapes_and_carries_fields() {
        let log = EventLog::with_capacity(Level::Trace, 4);
        log.warn("daemon", "parse error: bad \"escape\"")
            .trace_id("00ab12cd34ef5678")
            .field("line", 3u64)
            .field("detail", "tab\there")
            .field("ok", false)
            .emit();
        let rec = &log.snapshot()[0];
        let line = rec.to_line();
        assert!(line.starts_with("seq=1 ts_us="), "{line}");
        assert!(line.contains("level=warn target=daemon trace_id=00ab12cd34ef5678"), "{line}");
        assert!(line.contains("msg=\"parse error: bad \\\"escape\\\"\""), "{line}");
        assert!(line.contains("line=3"), "{line}");
        assert!(line.contains("detail=\"tab\\there\""), "{line}");
        assert!(line.contains("ok=false"), "{line}");
        let json = rec.to_json_line();
        let v = extractocol_http::JsonValue::parse(&json).expect("valid JSON line");
        assert_eq!(v.get("level").unwrap().as_str(), Some("warn"));
        assert_eq!(v.get("trace_id").unwrap().as_str(), Some("00ab12cd34ef5678"));
        assert_eq!(v.get("line").unwrap().as_num(), Some(3.0));
    }

    #[test]
    fn sink_receives_every_record_including_evicted_ones() {
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        let log = EventLog::with_capacity(Level::Info, 2);
        log.set_sink(Box::new(buf.clone()), SinkFormat::Text);
        for i in 0..4 {
            log.info("t", &format!("e{i}")).emit();
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        // All four records hit the sink even though the ring kept two.
        assert_eq!(text.lines().count(), 4, "{text}");
        assert_eq!(log.len(), 2);
        assert!(text.contains("msg=e0") && text.contains("msg=e3"), "{text}");
    }

    #[test]
    fn drain_empties_the_ring() {
        let log = EventLog::enabled(Level::Debug);
        log.info("t", "a").emit();
        log.debug("t", "b").emit();
        assert_eq!(log.drain().len(), 2);
        assert!(log.is_empty());
        assert_eq!(log.total(), 2, "drain does not reset lifetime counters");
    }
}
