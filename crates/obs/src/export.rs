//! Span exporters: Chrome `chrome://tracing` JSON, collapsed-stack text
//! for flamegraph tooling, a human top-k summary table — plus the strict
//! round-trip validator the CI observability gate runs over `trace.json`.
//!
//! # Timestamp discipline
//!
//! Spans are recorded in nanoseconds and exported in *floored* integer
//! microseconds (both endpoints floored). Flooring is monotone, so every
//! containment that held in nanoseconds still holds in microseconds:
//! children stay inside parents, siblings stay disjoint, and per-thread
//! start times stay non-decreasing. The validator can therefore be exact
//! (integer comparisons, no epsilon).

use crate::span::{AttrValue, SpanRecord};
use extractocol_http::JsonValue;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The fixed process id in exported traces (one process per run).
pub const TRACE_PID: u64 = 1;

fn sorted_for_export(records: &[SpanRecord]) -> Vec<&SpanRecord> {
    let mut sorted: Vec<&SpanRecord> = records.iter().collect();
    // Per-thread lanes, start-ordered; at equal starts the longer span is
    // the parent and must come first, then shallower before deeper.
    sorted.sort_by_key(|r| (r.tid, r.start_ns / 1000, std::cmp::Reverse(r.end_ns / 1000), r.depth));
    sorted
}

fn attr_json(v: &AttrValue) -> JsonValue {
    match v {
        AttrValue::Int(i) => JsonValue::num(*i as f64),
        AttrValue::Uint(u) => JsonValue::num(*u as f64),
        AttrValue::Float(f) => JsonValue::num(*f),
        AttrValue::Str(s) => JsonValue::str(s),
        AttrValue::Bool(b) => JsonValue::Bool(*b),
    }
}

/// Renders spans as a Chrome trace file (complete `"X"` events, one lane
/// per thread). Load the result in `chrome://tracing` or Perfetto.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut events = Vec::with_capacity(records.len());
    for r in sorted_for_export(records) {
        let ts = r.start_ns / 1000;
        let end = r.end_ns / 1000;
        let mut e = JsonValue::object();
        e.insert("name", JsonValue::str(&r.name));
        e.insert("cat", JsonValue::str(&r.cat));
        e.insert("ph", JsonValue::str("X"));
        e.insert("ts", JsonValue::num(ts as f64));
        e.insert("dur", JsonValue::num((end - ts) as f64));
        e.insert("pid", JsonValue::num(TRACE_PID as f64));
        e.insert("tid", JsonValue::num(r.tid as f64));
        if !r.attrs.is_empty() {
            let mut args = JsonValue::object();
            for (k, v) in &r.attrs {
                args.insert(k, attr_json(v));
            }
            e.insert("args", args);
        }
        events.push(e);
    }
    let mut root = JsonValue::object();
    root.insert("traceEvents", JsonValue::Array(events));
    root.insert("displayTimeUnit", JsonValue::str("ms"));
    root.to_json()
}

/// What the round-trip validator learned about a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Complete events in the trace.
    pub events: usize,
    /// Distinct thread lanes.
    pub threads: usize,
    /// Deepest nesting observed (1 = flat).
    pub max_depth: usize,
    /// Last end timestamp, microseconds.
    pub span_end_us: u64,
}

/// Strict validation of a Chrome-trace JSON file: well-formed JSON, every
/// event a complete `"X"` event with `name`/`ts`/`dur`/`pid`/`tid`,
/// timestamps non-decreasing per thread, and spans on one thread either
/// properly nested or disjoint (no partial overlap — the `B`-without-`E`
/// class of bug expressed in complete-event form).
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let root = JsonValue::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let Some(JsonValue::Array(events)) = root.get("traceEvents") else {
        return Err("missing traceEvents array".to_string());
    };
    let mut stats = TraceStats::default();
    // Per-tid state: (last ts, stack of (ts, end)).
    let mut lanes: BTreeMap<u64, (u64, Vec<(u64, u64)>)> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = e
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing ph"))?;
        if ph != "X" {
            return Err(format!("event {i} ({name}): ph {ph:?}, only complete events allowed"));
        }
        let num = |key: &str| -> Result<u64, String> {
            let n = e
                .get(key)
                .and_then(JsonValue::as_num)
                .ok_or_else(|| format!("event {i} ({name}): missing {key}"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("event {i} ({name}): non-integer {key} {n}"));
            }
            Ok(n as u64)
        };
        let ts = num("ts")?;
        let dur = num("dur")?;
        let pid = num("pid")?;
        let tid = num("tid")?;
        if pid != TRACE_PID {
            return Err(format!("event {i} ({name}): unexpected pid {pid}"));
        }
        let end = ts + dur;
        let (last_ts, stack) = lanes.entry(tid).or_insert((0, Vec::new()));
        if ts < *last_ts {
            return Err(format!(
                "event {i} ({name}): tid {tid} timestamps regress ({ts} after {last_ts})"
            ));
        }
        *last_ts = ts;
        while let Some(&(_, open_end)) = stack.last() {
            if open_end <= ts {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(open_ts, open_end)) = stack.last() {
            if end > open_end {
                return Err(format!(
                    "event {i} ({name}): [{ts}, {end}] partially overlaps \
                     enclosing span [{open_ts}, {open_end}] on tid {tid}"
                ));
            }
        }
        stack.push((ts, end));
        stats.events += 1;
        stats.max_depth = stats.max_depth.max(stack.len());
        stats.span_end_us = stats.span_end_us.max(end);
    }
    stats.threads = lanes.len();
    Ok(stats)
}

/// Renders spans in the collapsed-stack format (`path;to;frame <value>`,
/// value = self-time in microseconds) consumed by standard flamegraph
/// tooling. Lines are aggregated by stack and sorted — deterministic for
/// a deterministic span multiset.
pub fn collapsed_stacks(records: &[SpanRecord]) -> String {
    let mut agg: BTreeMap<&str, u64> = BTreeMap::new();
    for r in records {
        *agg.entry(r.stack.as_str()).or_insert(0) += r.self_ns / 1000;
    }
    let mut out = String::new();
    for (stack, us) in agg {
        let _ = writeln!(out, "{stack} {us}");
    }
    out
}

/// One row of the summary table.
#[derive(Clone, Debug, Default)]
struct NameAgg {
    calls: u64,
    total_ns: u64,
    self_ns: u64,
}

/// Renders the human `--trace-summary` table: top-`k` span names by
/// cumulative self-time, with call counts and total (inclusive) time.
pub fn summary_table(records: &[SpanRecord], k: usize) -> String {
    let mut agg: BTreeMap<(&str, &str), NameAgg> = BTreeMap::new();
    let mut wall_ns = 0u64;
    for r in records {
        let a = agg.entry((r.cat.as_str(), r.name.as_str())).or_default();
        a.calls += 1;
        a.total_ns += r.dur_ns();
        a.self_ns += r.self_ns;
        wall_ns = wall_ns.max(r.end_ns);
    }
    let mut rows: Vec<((&str, &str), NameAgg)> = agg.into_iter().collect();
    rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(&b.0)));
    rows.truncate(k);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40} {:>8} {:>12} {:>12} {:>6}",
        "span (cat:name)", "calls", "total", "self", "self%"
    );
    let total_self: u64 = records.iter().map(|r| r.self_ns).sum();
    for ((cat, name), a) in &rows {
        let pct = if total_self == 0 { 0.0 } else { 100.0 * a.self_ns as f64 / total_self as f64 };
        let _ = writeln!(
            out,
            "{:<40} {:>8} {:>12} {:>12} {:>5.1}%",
            format!("{cat}:{name}"),
            a.calls,
            fmt_ns(a.total_ns),
            fmt_ns(a.self_ns),
            pct
        );
    }
    let _ = writeln!(out, "{} span(s), {} over the run", records.len(), fmt_ns(wall_ns));
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{}us", ns / 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TraceCollector;

    fn sample_records() -> Vec<SpanRecord> {
        let t = TraceCollector::enabled();
        {
            let mut phase = t.span_in("phase", "slicing");
            phase.attr("app", "demo").attr("sites", 2usize);
            for dp in 0..2 {
                let mut g = t.span_in("dp", format!("dp:{dp}"));
                g.attr("dp_id", dp as u64);
            }
        }
        {
            let _g = t.span_in("phase", "pairing");
        }
        t.drain()
    }

    #[test]
    fn chrome_export_round_trips_through_the_validator() {
        let json = chrome_trace_json(&sample_records());
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.events, 4);
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.max_depth, 2, "dp spans nest under the phase span");
    }

    #[test]
    fn validator_rejects_partial_overlap() {
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},
            {"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":1}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("partially overlaps"), "{err}");
    }

    #[test]
    fn validator_rejects_regressing_timestamps() {
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":10,"dur":1,"pid":1,"tid":1},
            {"name":"b","ph":"X","ts":5,"dur":1,"pid":1,"tid":1}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("regress"), "{err}");
    }

    #[test]
    fn validator_rejects_non_complete_events_and_missing_fields() {
        let b_event = r#"{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(b_event).unwrap_err().contains("only complete events"));
        let missing = r#"{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(missing).unwrap_err().contains("missing dur"));
        assert!(validate_chrome_trace("not json").unwrap_err().contains("invalid JSON"));
        assert!(validate_chrome_trace("{}").unwrap_err().contains("traceEvents"));
    }

    #[test]
    fn disjoint_siblings_are_valid() {
        let ok = r#"{"traceEvents":[
            {"name":"p","ph":"X","ts":0,"dur":20,"pid":1,"tid":1},
            {"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},
            {"name":"b","ph":"X","ts":10,"dur":10,"pid":1,"tid":1},
            {"name":"other","ph":"X","ts":3,"dur":4,"pid":1,"tid":2}
        ]}"#;
        let stats = validate_chrome_trace(ok).expect("valid");
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.max_depth, 2);
    }

    #[test]
    fn collapsed_stacks_aggregate_by_path() {
        let records = sample_records();
        let text = collapsed_stacks(&records);
        assert!(text.contains("slicing;dp:0 "), "{text}");
        assert!(text.contains("slicing;dp:1 "), "{text}");
        assert!(text.lines().any(|l| l.starts_with("pairing ")), "{text}");
        // One line per distinct stack, "path value" shape.
        for line in text.lines() {
            let (_, value) = line.rsplit_once(' ').expect("value column");
            value.parse::<u64>().expect("integer self-time");
        }
    }

    #[test]
    fn summary_table_lists_top_spans() {
        let records = sample_records();
        let table = summary_table(&records, 10);
        assert!(table.contains("phase:slicing"), "{table}");
        assert!(table.contains("dp:dp:0"), "{table}");
        assert!(table.contains("4 span(s)"), "{table}");
        let top2 = summary_table(&records, 2);
        assert_eq!(top2.lines().count(), 4, "header + 2 rows + footer: {top2}");
    }
}
