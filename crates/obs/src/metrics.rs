//! The metrics registry: counters, gauges, and fixed-bucket latency
//! histograms with a Prometheus-style text exposition renderer.
//!
//! # Determinism contract
//!
//! Every instrument declares a [`Volatility`] at registration:
//!
//! * [`Volatility::Deterministic`] — the value is a pure function of the
//!   input (verdict counts, candidate-set sizes, slice statement counts).
//!   These must be **byte-identical across worker counts**; the
//!   jobs-invariance tests compare [`Registry::render_deterministic`]
//!   snapshots directly. To keep that promise under parallel recording,
//!   counters are integer atomics and histogram sums are accumulated in
//!   integer micro-units (floating-point addition is not associative —
//!   an f64 sum would depend on thread interleaving).
//! * [`Volatility::PerRun`] — wall-clock-derived values (latencies, phase
//!   seconds, shard imbalance, cache hit/miss races). Rendered by
//!   [`Registry::render`], excluded from the deterministic snapshot.
//!
//! Instruments are cheap `Arc` handles; recording is lock-free. The
//! registry itself is only locked at registration and render time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Latency histogram bounds in microseconds — spans request classification
/// (sub-microsecond trie walks) through whole-phase work.
pub const LATENCY_US_BUCKETS: &[f64] = &[
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 25000.0,
    50000.0, 100000.0,
];

/// Bounds for ratio-valued distributions (candidate fraction, hit rates).
pub const FRACTION_BUCKETS: &[f64] =
    &[0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.2, 0.5, 1.0];

/// Bounds for small-count distributions (candidates per request, slice
/// statement counts).
pub const COUNT_BUCKETS: &[f64] =
    &[1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0];

/// Whether an instrument's value is reproducible across runs and worker
/// counts (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Volatility {
    /// Pure function of the input; jobs-invariant by contract.
    Deterministic,
    /// Timing- or scheduling-dependent; varies run to run.
    PerRun,
}

/// A monotonically increasing integer counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins floating-point gauge.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(0.0f64.to_bits()) }
    }
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram. Bucket counts are cumulative only at render
/// time; recording touches exactly one bucket counter plus the count/sum
/// atomics.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One per bound, plus the +Inf overflow bucket at the end.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Observation sum in rounded integer micro-units (order-independent).
    sum_micros: AtomicU64,
    /// The largest observation recorded with a trace id — the
    /// slow-request exemplar surfaced as a `# EXEMPLAR` exposition
    /// comment (scrape-safe: Prometheus parsers skip comment lines).
    exemplar: Mutex<Option<(f64, String)>>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            exemplar: Mutex::new(None),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|b| *b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let micros = (v.max(0.0) * 1e6).round() as u64;
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Records one observation and offers it as the family's exemplar:
    /// the largest exemplar-carrying observation wins (ties keep the
    /// first, so replay order is deterministic).
    pub fn observe_with_exemplar(&self, v: f64, trace_id: &str) {
        self.observe(v);
        let mut slot = self.exemplar.lock().expect("exemplar");
        match slot.as_ref() {
            Some((best, _)) if *best >= v => {}
            _ => *slot = Some((v, trace_id.to_string())),
        }
    }

    /// The current exemplar, if any observation carried a trace id.
    pub fn exemplar(&self) -> Option<(f64, String)> {
        self.exemplar.lock().expect("exemplar").clone()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (micro-unit precision).
    pub fn sum(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// The bucket bounds (excluding +Inf).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts, +Inf bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Quantile estimate by linear interpolation inside the bucket that
    /// crosses the target rank (the Prometheus `histogram_quantile`
    /// rule). Observations beyond the last bound clamp to it.
    ///
    /// The result is always finite: when the target rank lands in the
    /// `+Inf` overflow bucket the estimate clamps to the largest finite
    /// bound instead of interpolating toward infinity (which would yield
    /// `+Inf`, or `NaN` from `Inf - Inf` arithmetic), and a `NaN`
    /// quantile argument degrades to the same clamp rather than
    /// poisoning the comparison chain.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        if q.is_nan() {
            return self.bounds[self.bounds.len() - 1];
        }
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n == 0 {
                cum += n;
                continue;
            }
            let prev = cum;
            cum += n;
            if (cum as f64) >= target {
                if i == self.bounds.len() {
                    // +Inf bucket: clamp to the largest finite bound.
                    return self.bounds[self.bounds.len() - 1];
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = (target - prev as f64) / n as f64;
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
        }
        self.bounds[self.bounds.len() - 1]
    }

    /// p50 shorthand.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// p90 shorthand.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// p99 shorthand.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// p99.9 shorthand.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    help: String,
    volatility: Volatility,
    instrument: Instrument,
}

/// The instrument registry. Clone-cheap; clones share the instruments.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<(String, String), Entry>>>,
}

fn label_key(labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        volatility: Volatility,
        help: &str,
        make: impl FnOnce() -> Instrument,
        extract: impl FnOnce(&Instrument) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let key = (name.to_string(), label_key(labels));
        let mut map = self.inner.lock().expect("registry");
        let entry = map.entry(key).or_insert_with(|| Entry {
            help: help.to_string(),
            volatility,
            instrument: make(),
        });
        extract(&entry.instrument).unwrap_or_else(|| {
            panic!(
                "instrument {name:?} re-registered as a different kind \
                 (existing: {})",
                entry.instrument.type_name()
            )
        })
    }

    /// Registers (or fetches) a counter.
    pub fn counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        volatility: Volatility,
        help: &str,
    ) -> Arc<Counter> {
        self.register(
            name,
            labels,
            volatility,
            help,
            || Instrument::Counter(Arc::new(Counter::default())),
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) a gauge.
    pub fn gauge(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        volatility: Volatility,
        help: &str,
    ) -> Arc<Gauge> {
        self.register(
            name,
            labels,
            volatility,
            help,
            || Instrument::Gauge(Arc::new(Gauge::default())),
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) a histogram with the given bucket bounds.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        volatility: Volatility,
        help: &str,
        bounds: &[f64],
    ) -> Arc<Histogram> {
        self.register(
            name,
            labels,
            volatility,
            help,
            || Instrument::Histogram(Arc::new(Histogram::new(bounds))),
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Renders every instrument in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        self.render_filtered(|_| true)
    }

    /// Renders only [`Volatility::Deterministic`] instruments — the
    /// byte-comparable snapshot the jobs-invariance tests pin.
    pub fn render_deterministic(&self) -> String {
        self.render_filtered(|v| v == Volatility::Deterministic)
    }

    fn render_filtered(&self, keep: impl Fn(Volatility) -> bool) -> String {
        use std::fmt::Write as _;
        let map = self.inner.lock().expect("registry");
        let mut out = String::new();
        let mut last_header: Option<String> = None;
        for ((name, labels), entry) in map.iter() {
            if !keep(entry.volatility) {
                continue;
            }
            if last_header.as_deref() != Some(name.as_str()) {
                let _ = writeln!(out, "# HELP {name} {}", entry.help);
                let _ = writeln!(out, "# TYPE {name} {}", entry.instrument.type_name());
                // Non-standard comment consumed by extractocol-obs-diff so
                // snapshots carry the determinism contract with them;
                // Prometheus scrapers ignore unknown comment lines.
                let vol = match entry.volatility {
                    Volatility::Deterministic => "deterministic",
                    Volatility::PerRun => "perrun",
                };
                let _ = writeln!(out, "# VOLATILITY {name} {vol}");
                last_header = Some(name.clone());
            }
            let braced = |extra: &str| -> String {
                match (labels.is_empty(), extra.is_empty()) {
                    (true, true) => String::new(),
                    (true, false) => format!("{{{extra}}}"),
                    (false, true) => format!("{{{labels}}}"),
                    (false, false) => format!("{{{labels},{extra}}}"),
                }
            };
            match &entry.instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(out, "{name}{} {}", braced(""), c.get());
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(out, "{name}{} {}", braced(""), fmt_value(g.get()));
                }
                Instrument::Histogram(h) => {
                    let buckets = h.bucket_counts();
                    let mut cum = 0u64;
                    for (b, n) in h.bounds().iter().zip(&buckets) {
                        cum += n;
                        let le = format!("le=\"{}\"", fmt_value(*b));
                        let _ = writeln!(out, "{name}_bucket{} {cum}", braced(&le));
                    }
                    cum += buckets.last().copied().unwrap_or(0);
                    let _ = writeln!(out, "{name}_bucket{} {cum}", braced("le=\"+Inf\""));
                    let _ = writeln!(out, "{name}_sum{} {}", braced(""), fmt_value(h.sum()));
                    let _ = writeln!(out, "{name}_count{} {}", braced(""), h.count());
                    // Exemplars carry wall-clock values, so they are
                    // confined to PerRun families — a Deterministic
                    // snapshot must stay byte-identical across runs.
                    if entry.volatility == Volatility::PerRun {
                        if let Some((v, tid)) = h.exemplar() {
                            let _ = writeln!(
                                out,
                                "# EXEMPLAR {name}{} trace_id={tid} value={}",
                                braced(""),
                                fmt_value(v)
                            );
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("req_total", &[], Volatility::Deterministic, "requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same instrument.
        let c2 = reg.counter("req_total", &[], Volatility::Deterministic, "requests");
        c2.inc();
        assert_eq!(c.get(), 6);

        let g = reg.gauge("ratio", &[], Volatility::PerRun, "a ratio");
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x", &[], Volatility::Deterministic, "");
        reg.gauge("x", &[], Volatility::Deterministic, "");
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let h = Histogram::new(&[10.0, 20.0, 40.0]);
        for v in [5.0, 5.0, 15.0, 15.0, 15.0, 15.0, 35.0, 35.0, 35.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.bucket_counts(), vec![2, 4, 3, 1]);
        assert!((h.sum() - 275.0).abs() < 1e-6);
        // p50: target 5 falls in bucket (10,20]: 10 + 10*(5-2)/4 = 17.5.
        assert!((h.p50() - 17.5).abs() < 1e-9, "{}", h.p50());
        // p99: target 9.9 is in the +Inf bucket -> clamps to 40.
        assert_eq!(h.p99(), 40.0);
        // p0 edge and empty histogram.
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_in_overflow_bucket_clamps_to_largest_finite_bound() {
        // Regression: a target rank landing in the +Inf overflow bucket
        // must clamp to the largest finite bound — never return +Inf
        // (naive "upper bound of the bucket") or NaN (interpolating
        // between a finite lower edge and an infinite upper edge).
        let h = Histogram::new(&[10.0, 100.0]);
        for _ in 0..50 {
            h.observe(1e9); // every observation overflows the last bound
        }
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let v = h.quantile(q);
            assert!(v.is_finite(), "quantile({q}) = {v} is not finite");
            assert_eq!(v, 100.0, "quantile({q}) must clamp to the last bound");
        }
        // Mixed mass: p50 interpolates normally, p99 still clamps.
        let m = Histogram::new(&[10.0, 100.0]);
        for _ in 0..90 {
            m.observe(5.0);
        }
        for _ in 0..10 {
            m.observe(1e9);
        }
        assert!(m.p50().is_finite() && m.p50() <= 10.0);
        assert_eq!(m.p99(), 100.0);
        assert_eq!(m.p999(), 100.0);
        // A NaN quantile argument degrades to the clamp, not NaN.
        assert_eq!(m.quantile(f64::NAN), 100.0);
    }

    #[test]
    fn exposition_renders_prometheus_text() {
        let reg = Registry::new();
        reg.counter(
            "verdicts_total",
            &[("verdict", "match")],
            Volatility::Deterministic,
            "per-verdict",
        )
        .add(7);
        reg.counter(
            "verdicts_total",
            &[("verdict", "unmatched")],
            Volatility::Deterministic,
            "per-verdict",
        )
        .add(3);
        let h = reg.histogram("lat_us", &[], Volatility::PerRun, "latency", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        reg.gauge("imbalance", &[], Volatility::PerRun, "shard imbalance").set(1.5);

        let text = reg.render();
        assert!(text.contains("# TYPE verdicts_total counter"), "{text}");
        assert!(text.contains("verdicts_total{verdict=\"match\"} 7"), "{text}");
        assert!(text.contains("verdicts_total{verdict=\"unmatched\"} 3"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"10\"} 2"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_us_count 3"), "{text}");
        assert!(text.contains("imbalance 1.5"), "{text}");
        // TYPE header appears once per metric family.
        assert_eq!(text.matches("# TYPE verdicts_total").count(), 1);
    }

    #[test]
    fn exposition_carries_volatility_and_exemplars() {
        let reg = Registry::new();
        reg.counter("det_total", &[], Volatility::Deterministic, "det").add(2);
        let h = reg.histogram("lat_us", &[], Volatility::PerRun, "latency", &[1.0, 10.0]);
        h.observe_with_exemplar(5.0, "00000000deadbeef");
        h.observe_with_exemplar(2.0, "00000000cafef00d"); // smaller: loses
        let text = reg.render();
        assert!(text.contains("# VOLATILITY det_total deterministic"), "{text}");
        assert!(text.contains("# VOLATILITY lat_us perrun"), "{text}");
        assert!(text.contains("# EXEMPLAR lat_us trace_id=00000000deadbeef value=5"), "{text}");
        // Deterministic snapshots never carry exemplars.
        let d = reg.histogram("det_us", &[], Volatility::Deterministic, "d", &[1.0]);
        d.observe_with_exemplar(3.0, "aa");
        assert!(!reg.render_deterministic().contains("# EXEMPLAR"), "{}", reg.render());
    }

    #[test]
    fn deterministic_snapshot_excludes_per_run_instruments() {
        let reg = Registry::new();
        reg.counter("det_total", &[], Volatility::Deterministic, "det").add(1);
        reg.gauge("wall_seconds", &[], Volatility::PerRun, "volatile").set(0.123);
        let det = reg.render_deterministic();
        assert!(det.contains("det_total 1"), "{det}");
        assert!(!det.contains("wall_seconds"), "{det}");
        assert!(reg.render().contains("wall_seconds"));
    }

    #[test]
    fn parallel_recording_is_order_independent() {
        let reg = Registry::new();
        let c = reg.counter("n", &[], Volatility::Deterministic, "");
        let h = reg.histogram("d", &[], Volatility::Deterministic, "", FRACTION_BUCKETS);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe((i % 100) as f64 / 100.0);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        // The micro-unit sum is exact regardless of interleaving.
        let expected: f64 = 4.0 * (0..1000).map(|i| (i % 100) as f64 / 100.0).sum::<f64>();
        assert!((h.sum() - expected).abs() < 1e-6, "{} vs {expected}", h.sum());
    }
}
