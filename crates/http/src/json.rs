//! A self-contained JSON value model with parser and serializer.
//!
//! JSON is the dominant body representation in the paper's corpus
//! (Table 1); signatures for JSON bodies are trees whose leaves are string
//! literals or numbers (§3.2). The dynamic harness also needs to *produce*
//! and *consume* concrete JSON when interpreting apps against the mock
//! server, so both directions are implemented.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects preserve key order via `BTreeMap` (deterministic
/// serialization matters for byte-level trace comparison).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// All numbers are kept as f64, as in JavaScript.
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Shorthand for a string value.
    pub fn str(s: &str) -> JsonValue {
        JsonValue::String(s.to_string())
    }

    /// Shorthand for a number value.
    pub fn num(n: f64) -> JsonValue {
        JsonValue::Number(n)
    }

    /// Creates an empty object.
    pub fn object() -> JsonValue {
        JsonValue::Object(BTreeMap::new())
    }

    /// Inserts into an object value; panics when self is not an object
    /// (programming error in corpus/server specs).
    pub fn insert(&mut self, key: &str, v: JsonValue) -> &mut Self {
        match self {
            JsonValue::Object(m) => {
                m.insert(key.to_string(), v);
            }
            other => panic!("insert on non-object JSON value: {other:?}"),
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn at(&self, idx: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Array(v) => v.get(idx),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// All object keys in this value, recursively — the "constant keywords"
    /// counted in the paper's Fig. 7 signature-quality experiment.
    pub fn all_keys(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(v: &'a JsonValue, out: &mut Vec<&'a str>) {
            match v {
                JsonValue::Object(m) => {
                    for (k, v) in m {
                        out.push(k.as_str());
                        walk(v, out);
                    }
                }
                JsonValue::Array(a) => {
                    for v in a {
                        walk(v, out);
                    }
                }
                _ => {}
            }
        }
        walk(self, &mut out);
        out
    }

    /// Serializes to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            JsonValue::String(s) => write_json_string(s, out),
            JsonValue::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text under the default [`JsonLimits`]. Total on every
    /// input: malformed, oversized, or too-deeply-nested documents come
    /// back as a structured [`JsonError`], never a panic or stack
    /// overflow (the recursive-descent depth is capped).
    pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
        JsonValue::parse_limited(s, &JsonLimits::DEFAULT)
    }

    /// Parses JSON text under explicit [`JsonLimits`] — the body-parsing
    /// budget discipline of the adversarial robustness layer. Exceeding
    /// any limit is a deterministic parse error whose message names the
    /// limit (`depth limit`, `node limit`, `byte limit`).
    pub fn parse_limited(s: &str, limits: &JsonLimits) -> Result<JsonValue, JsonError> {
        if s.len() > limits.max_bytes {
            return Err(JsonError {
                at: limits.max_bytes,
                message: format!(
                    "input of {} bytes exceeds byte limit {}",
                    s.len(),
                    limits.max_bytes
                ),
            });
        }
        let bytes: Vec<char> = s.chars().collect();
        let mut p = JsonParser { s: &bytes, i: 0, depth: 0, nodes: 0, limits };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != bytes.len() {
            return Err(JsonError { at: p.i, message: "trailing garbage".into() });
        }
        Ok(v)
    }
}

/// Budgets bounding the work and the result size of one JSON parse.
/// Every limit yields a structured [`JsonError`] when exceeded — the
/// parser is total under any input (never panics, never overflows the
/// stack on nesting bombs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonLimits {
    /// Maximum container nesting depth (objects + arrays).
    pub max_depth: usize,
    /// Maximum number of values in the parsed tree.
    pub max_nodes: usize,
    /// Maximum input length in bytes.
    pub max_bytes: usize,
}

impl JsonLimits {
    /// The service-wide default: comfortably above every legitimate
    /// corpus body, far below anything that could exhaust the stack or
    /// arena (128 nesting levels, 1Mi nodes, 8 MiB of text).
    pub const DEFAULT: JsonLimits =
        JsonLimits { max_depth: 128, max_nodes: 1 << 20, max_bytes: 8 << 20 };
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// A JSON parse error with character offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub at: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct JsonParser<'a> {
    s: &'a [char],
    i: usize,
    depth: usize,
    nodes: usize,
    limits: &'a JsonLimits,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_whitespace() {
            self.i += 1;
        }
    }

    fn err<T>(&self, m: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError { at: self.i, message: m.into() })
    }

    /// Counts one parsed value against the node budget.
    fn count_node(&mut self) -> Result<(), JsonError> {
        self.nodes += 1;
        if self.nodes > self.limits.max_nodes {
            return self.err(format!("node limit {} exceeded", self.limits.max_nodes));
        }
        Ok(())
    }

    /// Enters one container level, enforcing the depth budget (this is
    /// what keeps `[[[[…]]]]` bombs from overflowing the parse stack).
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            return self.err(format!("depth limit {} exceeded", self.limits.max_depth));
        }
        Ok(())
    }

    fn peek(&self) -> Option<char> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(format!("expected `{c}`"))
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        self.count_node()?;
        match self.peek() {
            Some('n') => self.lit("null", JsonValue::Null),
            Some('t') => self.lit("true", JsonValue::Bool(true)),
            Some('f') => self.lit("false", JsonValue::Bool(false)),
            Some('"') => Ok(JsonValue::String(self.string()?)),
            Some('[') => {
                self.enter()?;
                self.i += 1;
                let mut out = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.i += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(out));
                }
                loop {
                    out.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => {
                            self.i += 1;
                        }
                        Some(']') => {
                            self.i += 1;
                            break;
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
                self.depth -= 1;
                Ok(JsonValue::Array(out))
            }
            Some('{') => {
                self.enter()?;
                self.i += 1;
                let mut out = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.i += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(out));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(':')?;
                    let v = self.value()?;
                    out.insert(k, v);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => {
                            self.i += 1;
                        }
                        Some('}') => {
                            self.i += 1;
                            break;
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
                self.depth -= 1;
                Ok(JsonValue::Object(out))
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected JSON value"),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else { return self.err("unterminated string") };
            self.i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(e) = self.peek() else { return self.err("bad escape") };
                    self.i += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            if self.i + 4 > self.s.len() {
                                return self.err("bad \\u escape");
                            }
                            let hex: String = self.s[self.i..self.i + 4].iter().collect();
                            self.i += 4;
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| JsonError { at: self.i, message: "bad hex".into() })?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return self.err(format!("bad escape `\\{other}`")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.i;
        if self.peek() == Some('-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some('.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some('e') | Some('E')) {
            self.i += 1;
            if matches!(self.peek(), Some('+') | Some('-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text: String = self.s[start..self.i].iter().collect();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError { at: start, message: format!("bad number `{text}`") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_fig8_shape() {
        // The radio reddit status response from paper Fig. 8 (trimmed).
        let src = r#"[{ "all_listeners":"99999", "listeners":"13586", "online":"TRUE",
            "playlist":"hiphop",
            "relay":"http://cdn.audiopump.co/radioreddit/hiphop_mp3_128k",
            "songs":{ "song":[{ "album": "", "artist": "stirus",
              "genre": "Hip-Hop", "id": "837", "score": "6",
              "title": "Surviving Minds" }]} }]"#;
        let v = JsonValue::parse(src).unwrap();
        let station = v.at(0).unwrap();
        assert_eq!(station.get("playlist").unwrap().as_str(), Some("hiphop"));
        let song = station.get("songs").unwrap().get("song").unwrap().at(0).unwrap();
        assert_eq!(song.get("artist").unwrap().as_str(), Some("stirus"));
        // Keyword extraction (Fig. 7 metric).
        let keys = v.all_keys();
        assert!(keys.contains(&"relay"));
        assert!(keys.contains(&"genre"));
        assert_eq!(keys.len(), 13);
    }

    #[test]
    fn round_trips_values() {
        let cases = [
            "null",
            "true",
            "[1,2,3]",
            r#"{"a":1,"b":[true,null,"x"],"c":{"d":-2.5}}"#,
            r#""escaped \" \\ \n chars""#,
        ];
        for c in cases {
            let v = JsonValue::parse(c).unwrap();
            let v2 = JsonValue::parse(&v.to_json()).unwrap();
            assert_eq!(v, v2, "round trip of {c}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("1 2").is_err());
    }

    #[test]
    fn numbers_serialize_compactly() {
        assert_eq!(JsonValue::num(42.0).to_json(), "42");
        assert_eq!(JsonValue::num(2.5).to_json(), "2.5");
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::num(1000.0));
    }

    #[test]
    fn nesting_bombs_are_structured_errors_not_stack_overflows() {
        // 100k-deep array: must come back as a depth-limit error, never
        // recurse to a stack overflow.
        let bomb = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
        let err = JsonValue::parse(&bomb).unwrap_err();
        assert!(err.message.contains("depth limit"), "{err}");
        // Same for objects.
        let obomb = format!("{}1{}", "{\"k\":".repeat(100_000), "}".repeat(100_000));
        let err = JsonValue::parse(&obomb).unwrap_err();
        assert!(err.message.contains("depth limit"), "{err}");
        // Within the default depth limit, deep-but-sane documents parse.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn node_and_byte_limits_are_enforced() {
        let tight = JsonLimits { max_depth: 8, max_nodes: 10, max_bytes: 1 << 10 };
        let wide = format!("[{}1]", "1,".repeat(50));
        let err = JsonValue::parse_limited(&wide, &tight).unwrap_err();
        assert!(err.message.contains("node limit"), "{err}");
        let long = format!("\"{}\"", "x".repeat(2048));
        let err = JsonValue::parse_limited(&long, &tight).unwrap_err();
        assert!(err.message.contains("byte limit"), "{err}");
        // The same documents parse under the defaults.
        assert!(JsonValue::parse(&wide).is_ok());
        assert!(JsonValue::parse(&long).is_ok());
    }

    #[test]
    fn builder_helpers() {
        let mut o = JsonValue::object();
        o.insert("uh", JsonValue::str("hashval")).insert("id", JsonValue::str("t3_x"));
        assert_eq!(o.get("uh").unwrap().as_str(), Some("hashval"));
        assert_eq!(o.to_json(), r#"{"id":"t3_x","uh":"hashval"}"#);
    }
}
