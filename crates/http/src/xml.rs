//! A small XML element tree with parser and serializer.
//!
//! Several corpus apps (Adblock Plus, AnarXiv, Lightning, Wallabag, Weather
//! Notification — paper Table 1) exchange XML response bodies; Extractocol
//! represents their signatures as trees and can emit DTD-style formats
//! (paper §1). This module provides the concrete tree those signatures are
//! matched against.

use std::fmt;

/// A node in an XML document: an element or character data.
#[derive(Clone, Debug, PartialEq)]
pub enum XmlNode {
    Element(XmlElement),
    Text(String),
}

/// An XML element: tag name, attributes in document order, and child nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct XmlElement {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<XmlNode>,
}

impl XmlElement {
    /// Creates an element with no attributes or children.
    pub fn new(name: &str) -> XmlElement {
        XmlElement { name: name.to_string(), attrs: Vec::new(), children: Vec::new() }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, k: &str, v: &str) -> XmlElement {
        self.attrs.push((k.to_string(), v.to_string()));
        self
    }

    /// Adds an element child (builder style).
    pub fn child(mut self, c: XmlElement) -> XmlElement {
        self.children.push(XmlNode::Element(c));
        self
    }

    /// Adds a text child (builder style).
    pub fn text(mut self, t: &str) -> XmlElement {
        self.children.push(XmlNode::Text(t.to_string()));
        self
    }

    /// First child element with the given tag name.
    pub fn find(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find_map(|n| match n {
            XmlNode::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// Concatenated text content of this element (non-recursive).
    pub fn text_content(&self) -> String {
        self.children
            .iter()
            .filter_map(|n| match n {
                XmlNode::Text(t) => Some(t.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Attribute value lookup.
    pub fn attr_value(&self, k: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| n == k).map(|(_, v)| v.as_str())
    }

    /// All tag names and attribute names, recursively — the XML
    /// contribution to the paper's Fig. 7 "constant keywords" metric
    /// ("the tags and attributes in XML bodies").
    pub fn all_keywords(&self) -> Vec<&str> {
        let mut out = vec![self.name.as_str()];
        for (k, _) in &self.attrs {
            out.push(k.as_str());
        }
        for c in &self.children {
            if let XmlNode::Element(e) = c {
                out.extend(e.all_keywords());
            }
        }
        out
    }

    /// Serializes to compact XML text.
    pub fn to_xml(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out);
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for c in &self.children {
            match c {
                XmlNode::Element(e) => e.write(out),
                XmlNode::Text(t) => escape_into(t, out),
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Parses a single XML element (optionally preceded by an XML
    /// declaration) under the default [`XmlLimits`]. Total on every
    /// input: nesting bombs and oversized documents come back as a
    /// structured [`XmlError`], never a panic or stack overflow.
    pub fn parse(s: &str) -> Result<XmlElement, XmlError> {
        XmlElement::parse_limited(s, &XmlLimits::DEFAULT)
    }

    /// Parses under explicit [`XmlLimits`] — the body-parsing budget
    /// discipline of the adversarial robustness layer. Exceeding a limit
    /// is a deterministic parse error naming the limit.
    pub fn parse_limited(s: &str, limits: &XmlLimits) -> Result<XmlElement, XmlError> {
        if s.len() > limits.max_bytes {
            return Err(XmlError {
                at: limits.max_bytes,
                message: format!(
                    "input of {} bytes exceeds byte limit {}",
                    s.len(),
                    limits.max_bytes
                ),
            });
        }
        let chars: Vec<char> = s.chars().collect();
        let mut p = XmlParser { s: &chars, i: 0, depth: 0, nodes: 0, limits };
        p.skip_ws();
        if p.starts_with("<?") {
            while p.i < p.s.len() && !p.starts_with("?>") {
                p.i += 1;
            }
            p.i += 2;
            p.skip_ws();
        }
        let e = p.element()?;
        p.skip_ws();
        if p.i != chars.len() {
            return Err(XmlError { at: p.i, message: "trailing garbage".into() });
        }
        Ok(e)
    }
}

/// Budgets bounding one XML parse (mirrors [`crate::json::JsonLimits`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XmlLimits {
    /// Maximum element nesting depth.
    pub max_depth: usize,
    /// Maximum element count in the parsed tree.
    pub max_nodes: usize,
    /// Maximum input length in bytes.
    pub max_bytes: usize,
}

impl XmlLimits {
    /// Service-wide default: far above every corpus body, far below
    /// stack-exhaustion territory.
    pub const DEFAULT: XmlLimits =
        XmlLimits { max_depth: 128, max_nodes: 1 << 20, max_bytes: 8 << 20 };
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            // Control characters go out as numeric character references:
            // serialized XML must never carry raw tabs/newlines, which
            // would break the tab-separated, line-delimited traffic wire
            // format (regression: adversarial round-trip suite).
            c if (c as u32) < 0x20 => out.push_str(&format!("&#{};", c as u32)),
            c => out.push(c),
        }
    }
}

impl fmt::Display for XmlElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

/// An XML parse error with character offset.
#[derive(Debug, Clone, PartialEq)]
pub struct XmlError {
    pub at: usize,
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml error at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for XmlError {}

struct XmlParser<'a> {
    s: &'a [char],
    i: usize,
    depth: usize,
    nodes: usize,
    limits: &'a XmlLimits,
}

impl XmlParser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_whitespace() {
            self.i += 1;
        }
    }

    fn starts_with(&self, pat: &str) -> bool {
        (self.i..).zip(pat.chars()).all(|(j, c)| self.s.get(j) == Some(&c))
    }

    fn err<T>(&self, m: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError { at: self.i, message: m.into() })
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.i;
        while self.i < self.s.len() {
            let c = self.s[self.i];
            if c.is_alphanumeric() || c == '_' || c == '-' || c == ':' || c == '.' {
                self.i += 1;
            } else {
                break;
            }
        }
        if self.i == start {
            return self.err("expected name");
        }
        Ok(self.s[start..self.i].iter().collect())
    }

    fn element(&mut self) -> Result<XmlElement, XmlError> {
        if !self.starts_with("<") {
            return self.err("expected `<`");
        }
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            return self.err(format!("depth limit {} exceeded", self.limits.max_depth));
        }
        self.nodes += 1;
        if self.nodes > self.limits.max_nodes {
            return self.err(format!("node limit {} exceeded", self.limits.max_nodes));
        }
        self.i += 1;
        let name = self.name()?;
        let mut e = XmlElement::new(&name);
        loop {
            self.skip_ws();
            if self.starts_with("/>") {
                self.i += 2;
                self.depth -= 1;
                return Ok(e);
            }
            if self.starts_with(">") {
                self.i += 1;
                break;
            }
            let k = self.name()?;
            self.skip_ws();
            if !self.starts_with("=") {
                return self.err("expected `=` in attribute");
            }
            self.i += 1;
            self.skip_ws();
            if !self.starts_with("\"") {
                return self.err("expected `\"`");
            }
            self.i += 1;
            let start = self.i;
            while self.i < self.s.len() && self.s[self.i] != '"' {
                self.i += 1;
            }
            if self.i >= self.s.len() {
                return self.err("unterminated attribute value");
            }
            let raw: String = self.s[start..self.i].iter().collect();
            self.i += 1;
            e.attrs.push((k, unescape(&raw)));
        }
        // children until </name>
        loop {
            if self.starts_with("</") {
                self.i += 2;
                let close = self.name()?;
                if close != e.name {
                    return self.err(format!("mismatched close tag `{close}` for `{}`", e.name));
                }
                self.skip_ws();
                if !self.starts_with(">") {
                    return self.err("expected `>`");
                }
                self.i += 1;
                self.depth -= 1;
                return Ok(e);
            }
            if self.starts_with("<") {
                let child = self.element()?;
                e.children.push(XmlNode::Element(child));
                continue;
            }
            if self.i >= self.s.len() {
                return self.err(format!("unterminated element `{}`", e.name));
            }
            let start = self.i;
            while self.i < self.s.len() && self.s[self.i] != '<' {
                self.i += 1;
            }
            let raw: String = self.s[start..self.i].iter().collect();
            let text = unescape(&raw);
            if !text.trim().is_empty() {
                e.children.push(XmlNode::Text(text));
            }
        }
    }
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let semi = rest.find(';');
        let entity = semi.map(|j| &rest[..=j]);
        match entity {
            Some("&lt;") => out.push('<'),
            Some("&gt;") => out.push('>'),
            Some("&quot;") => out.push('"'),
            Some("&amp;") => out.push('&'),
            // Numeric character references (the serializer emits these
            // for control characters). Malformed references pass through
            // verbatim — unescaping is total.
            Some(e) if e.starts_with("&#") => {
                match e[2..e.len() - 1].parse::<u32>().ok().and_then(char::from_u32) {
                    Some(c) => out.push(c),
                    None => out.push_str(e),
                }
            }
            _ => {
                out.push('&');
                rest = &rest[1..];
                continue;
            }
        }
        rest = &rest[entity.unwrap().len()..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_serializes() {
        let e = XmlElement::new("vast").attr("version", "2.0").child(
            XmlElement::new("Ad")
                .attr("id", "1")
                .child(XmlElement::new("MediaFile").text("https://cdn.example.com/ad.mp4")),
        );
        let s = e.to_xml();
        assert_eq!(
            s,
            "<vast version=\"2.0\"><Ad id=\"1\"><MediaFile>https://cdn.example.com/ad.mp4</MediaFile></Ad></vast>"
        );
    }

    #[test]
    fn parses_round_trip() {
        let src = "<a x=\"1\"><b>hi</b><c/><b>there &amp; more</b></a>";
        let e = XmlElement::parse(src).unwrap();
        assert_eq!(e.name, "a");
        assert_eq!(e.attr_value("x"), Some("1"));
        assert_eq!(e.find("b").unwrap().text_content(), "hi");
        assert_eq!(e.children.len(), 3);
        assert_eq!(XmlElement::parse(&e.to_xml()).unwrap(), e);
    }

    #[test]
    fn skips_declaration_and_collects_keywords() {
        let src =
            "<?xml version=\"1.0\"?><rss version=\"2\"><channel><title>t</title></channel></rss>";
        let e = XmlElement::parse(src).unwrap();
        let kw = e.all_keywords();
        assert_eq!(kw, vec!["rss", "version", "channel", "title"]);
    }

    #[test]
    fn rejects_mismatched_tags() {
        assert!(XmlElement::parse("<a></b>").is_err());
        assert!(XmlElement::parse("<a>").is_err());
        assert!(XmlElement::parse("plain").is_err());
    }

    #[test]
    fn nesting_bombs_are_structured_errors_not_stack_overflows() {
        let mut bomb = String::new();
        for _ in 0..100_000 {
            bomb.push_str("<a>");
        }
        bomb.push('x');
        for _ in 0..100_000 {
            bomb.push_str("</a>");
        }
        let err = XmlElement::parse(&bomb).unwrap_err();
        assert!(err.message.contains("depth limit"), "{err}");
        // Wide documents trip the node limit under tight budgets.
        let tight = XmlLimits { max_depth: 8, max_nodes: 10, max_bytes: 1 << 16 };
        let wide = format!("<r>{}</r>", "<c/>".repeat(50));
        let err = XmlElement::parse_limited(&wide, &tight).unwrap_err();
        assert!(err.message.contains("node limit"), "{err}");
        assert!(XmlElement::parse(&wide).is_ok());
        let err = XmlElement::parse_limited(&"x".repeat(1 << 17), &tight).unwrap_err();
        assert!(err.message.contains("byte limit"), "{err}");
    }

    #[test]
    fn control_characters_round_trip_as_numeric_references() {
        // Regression: raw tabs/newlines in text or attribute values used
        // to be serialized verbatim, corrupting the tab-separated traffic
        // wire format.
        let e = XmlElement::new("q").attr("k", "a\tb").text("line1\nline2\r");
        let s = e.to_xml();
        assert!(!s.contains('\t') && !s.contains('\n') && !s.contains('\r'), "{s}");
        assert_eq!(s, "<q k=\"a&#9;b\">line1&#10;line2&#13;</q>");
        let back = XmlElement::parse(&s).unwrap();
        assert_eq!(back.attr_value("k"), Some("a\tb"));
        assert_eq!(back.text_content(), "line1\nline2\r");
        // Malformed numeric references pass through verbatim.
        assert_eq!(super::unescape("&#xZZ; &# &#99999999999;"), "&#xZZ; &# &#99999999999;");
    }
}
