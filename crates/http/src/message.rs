//! Concrete HTTP messages: requests, responses, and reconstructed
//! transactions.
//!
//! These are the values that flow through the dynamic harness (traces from
//! interpreting apps against the mock server) and that static signatures
//! are validated against, mirroring the paper's definition: "An HTTP
//! transaction consists of URI, request data (header, mime-type and body),
//! request method, and response data" (§2).

use crate::json::JsonValue;
use crate::uri::Uri;
use crate::xml::XmlElement;
use std::fmt;

/// HTTP request methods observed in the corpus (paper Table 1 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HttpMethod {
    Get,
    Post,
    Put,
    Delete,
}

impl HttpMethod {
    /// Canonical upper-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            HttpMethod::Get => "GET",
            HttpMethod::Post => "POST",
            HttpMethod::Put => "PUT",
            HttpMethod::Delete => "DELETE",
        }
    }

    /// Parses the canonical name.
    pub fn parse(s: &str) -> Option<HttpMethod> {
        match s {
            "GET" => Some(HttpMethod::Get),
            "POST" => Some(HttpMethod::Post),
            "PUT" => Some(HttpMethod::Put),
            "DELETE" => Some(HttpMethod::Delete),
            _ => None,
        }
    }
}

impl fmt::Display for HttpMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Ordered header list with case-insensitive lookup.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header list.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Appends a header.
    pub fn add(&mut self, name: &str, value: &str) {
        self.entries.push((name.to_string(), value.to_string()));
    }

    /// First value for a name, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// All `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A message body: the representation kinds the analysis distinguishes
/// (paper Table 1 splits request bodies into query strings vs JSON, and
/// responses into JSON vs XML; media and other payloads are opaque bytes).
#[derive(Clone, Debug, PartialEq)]
pub enum Body {
    /// No body.
    Empty,
    /// `application/x-www-form-urlencoded` key/value pairs.
    Form(Vec<(String, String)>),
    /// A JSON document.
    Json(JsonValue),
    /// An XML document.
    Xml(XmlElement),
    /// Free text.
    Text(String),
    /// Opaque binary (media streams, images); only the length is modelled.
    Binary(usize),
}

impl Body {
    /// Serializes the body to the bytes that would go on the wire.
    /// `Binary` renders as a placeholder of the right length.
    pub fn to_bytes_string(&self) -> String {
        match self {
            Body::Empty => String::new(),
            Body::Form(pairs) => crate::uri::format_query(pairs),
            Body::Json(v) => v.to_json(),
            Body::Xml(e) => e.to_xml(),
            Body::Text(t) => t.clone(),
            Body::Binary(n) => "\u{0}".repeat(*n),
        }
    }

    /// The MIME type a client would send.
    pub fn mime(&self) -> &'static str {
        match self {
            Body::Empty => "",
            Body::Form(_) => "application/x-www-form-urlencoded",
            Body::Json(_) => "application/json",
            Body::Xml(_) => "application/xml",
            Body::Text(_) => "text/plain",
            Body::Binary(_) => "application/octet-stream",
        }
    }

    /// True when there is nothing to send.
    pub fn is_empty(&self) -> bool {
        matches!(self, Body::Empty)
    }
}

/// A concrete HTTP request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    pub method: HttpMethod,
    pub uri: Uri,
    pub headers: Headers,
    pub body: Body,
}

impl Request {
    /// A bodyless GET for a URI.
    pub fn get(uri: &str) -> Request {
        Request {
            method: HttpMethod::Get,
            uri: Uri::parse(uri),
            headers: Headers::new(),
            body: Body::Empty,
        }
    }

    /// A POST with the given body.
    pub fn post(uri: &str, body: Body) -> Request {
        Request { method: HttpMethod::Post, uri: Uri::parse(uri), headers: Headers::new(), body }
    }
}

/// A concrete HTTP response.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    pub status: u16,
    pub headers: Headers,
    pub body: Body,
}

impl Response {
    /// A 200 response with the given body.
    pub fn ok(body: Body) -> Response {
        Response { status: 200, headers: Headers::new(), body }
    }

    /// A 404 response.
    pub fn not_found() -> Response {
        Response { status: 404, headers: Headers::new(), body: Body::Empty }
    }
}

/// A reconstructed transaction: one request paired with its response
/// (paper §3.3 "Request-response pairing").
#[derive(Clone, Debug, PartialEq)]
pub struct Transaction {
    pub request: Request,
    pub response: Response,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_lookup_is_case_insensitive() {
        let mut h = Headers::new();
        h.add("User-Agent", "kayakandroidphone/8.1");
        h.add("Cookie", "session=1");
        assert_eq!(h.get("user-agent"), Some("kayakandroidphone/8.1"));
        assert_eq!(h.get("COOKIE"), Some("session=1"));
        assert_eq!(h.get("X-Nope"), None);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn body_serialization() {
        let form = Body::Form(vec![("id".into(), "t3_x".into()), ("uh".into(), "h".into())]);
        assert_eq!(form.to_bytes_string(), "id=t3_x&uh=h");
        assert_eq!(form.mime(), "application/x-www-form-urlencoded");
        let mut j = JsonValue::object();
        j.insert("k", JsonValue::num(1.0));
        assert_eq!(Body::Json(j).to_bytes_string(), "{\"k\":1}");
        assert_eq!(Body::Binary(4).to_bytes_string().len(), 4);
        assert!(Body::Empty.is_empty());
    }

    #[test]
    fn method_parse_round_trip() {
        for m in [HttpMethod::Get, HttpMethod::Post, HttpMethod::Put, HttpMethod::Delete] {
            assert_eq!(HttpMethod::parse(m.as_str()), Some(m));
        }
        assert_eq!(HttpMethod::parse("PATCH"), None);
    }
}
