//! URIs as protocol analysis sees them: scheme, authority, path, and a
//! query string of key/value pairs.
//!
//! An HTTP transaction in the paper "consists of URI, request data (header,
//! mime-type and body), request method, and response data" (§2); URI and
//! query-string signatures are first-class outputs. This module provides the
//! concrete URI type that dynamic traces carry and signatures are matched
//! against.

use std::fmt;

/// A parsed absolute or origin-form URI.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Uri {
    /// The exact byte string as it appeared on the wire — signatures are
    /// matched against this, so trailing separators and empty pairs are
    /// preserved rather than normalized away.
    pub raw: String,
    /// `http` or `https` (empty for origin-form references).
    pub scheme: String,
    /// Host (and `:port` if present), e.g. `www.reddit.com`.
    pub authority: String,
    /// Path including the leading `/` (may be empty).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
}

impl Uri {
    /// Parses a URI string. Accepts absolute (`https://host/path?q`) and
    /// origin-form (`/path?q`) references; query parameters split on `&`
    /// and `=` without percent-decoding (traces carry encoded bytes, and
    /// signatures are built over encoded bytes too).
    pub fn parse(s: &str) -> Uri {
        let (scheme, rest) = match s.find("://") {
            Some(i) => (s[..i].to_string(), &s[i + 3..]),
            None => (String::new(), s),
        };
        let (authority, path_query) = if scheme.is_empty() {
            (String::new(), rest)
        } else {
            match rest.find('/') {
                Some(i) => (rest[..i].to_string(), &rest[i..]),
                None => match rest.find('?') {
                    Some(i) => (rest[..i].to_string(), &rest[i..]),
                    None => (rest.to_string(), ""),
                },
            }
        };
        let (path, query_str) = match path_query.find('?') {
            Some(i) => (path_query[..i].to_string(), &path_query[i + 1..]),
            None => (path_query.to_string(), ""),
        };
        let query = parse_query(query_str);
        Uri { raw: s.to_string(), scheme, authority, path, query }
    }

    /// The wire form: exactly the string this URI was parsed from.
    pub fn to_uri_string(&self) -> String {
        self.raw.clone()
    }

    /// The first value for a query key.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Path segments, without empty leading entry.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.path.split('/').filter(|s| !s.is_empty())
    }
}

impl fmt::Display for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_uri_string())
    }
}

/// Parses `a=1&b=2` into ordered pairs. A bare key becomes `(key, "")`.
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    if q.is_empty() {
        return Vec::new();
    }
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.find('=') {
            Some(i) => (kv[..i].to_string(), kv[i + 1..].to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect()
}

/// Serializes ordered pairs back into `a=1&b=2` form.
pub fn format_query(pairs: &[(String, String)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| if v.is_empty() { k.clone() } else { format!("{k}={v}") })
        .collect::<Vec<_>>()
        .join("&")
}

/// Minimal percent-encoding of a query component (what
/// `java.net.URLEncoder.encode` does to the characters our corpus uses).
///
/// Space encodes as `%20`, not the legacy `+`: the trace parser and the
/// structural matcher treat `+` as a literal byte, so a `+`-encoded
/// signature would not match `%20` traffic for the same URI (and vice
/// versa). Emitting `%20` on both the signature-build and interpreter
/// sides keeps the encode → parse → classify round trip verdict-stable.
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'*' => {
                out.push(b as char)
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_absolute_uri() {
        let u = Uri::parse("https://www.reddit.com/api/login?user=bob&passwd=x&api_type=json");
        assert_eq!(u.scheme, "https");
        assert_eq!(u.authority, "www.reddit.com");
        assert_eq!(u.path, "/api/login");
        assert_eq!(u.query.len(), 3);
        assert_eq!(u.query_value("user"), Some("bob"));
        assert_eq!(u.query_value("api_type"), Some("json"));
        assert_eq!(u.query_value("nope"), None);
    }

    #[test]
    fn parses_origin_form_and_no_query() {
        let u = Uri::parse("/flight/start");
        assert_eq!(u.scheme, "");
        assert_eq!(u.path, "/flight/start");
        assert!(u.query.is_empty());
        let v = Uri::parse("http://host.com");
        assert_eq!(v.authority, "host.com");
        assert_eq!(v.path, "");
    }

    #[test]
    fn round_trips() {
        for s in [
            "https://app-api.ted.com/v1/speakers.json?limit=2000&api-key=k",
            "http://www.radioreddit.com/api/hiphop/status.json",
            "/k/authajax?action=registerandroid&uuid=1",
            "https://host:8443/a/b?x=1",
        ] {
            assert_eq!(Uri::parse(s).to_uri_string(), s);
        }
    }

    #[test]
    fn segments_split() {
        let u = Uri::parse("https://h/api/v1/talks/");
        let segs: Vec<&str> = u.segments().collect();
        assert_eq!(segs, vec!["api", "v1", "talks"]);
    }

    #[test]
    fn bare_query_keys() {
        let q = parse_query("a&b=2");
        assert_eq!(q, vec![("a".into(), "".into()), ("b".into(), "2".into())]);
        assert_eq!(format_query(&q), "a&b=2");
    }

    #[test]
    fn url_encoding() {
        assert_eq!(url_encode("a b&c=d"), "a%20b%26c%3Dd");
        assert_eq!(url_encode("safe-chars_0.9*"), "safe-chars_0.9*");
    }

    #[test]
    fn url_encoding_space_is_percent20_not_plus() {
        // Regression: `+` used to be emitted for space, but the matcher
        // treats `+` as a literal byte — `+` vs `%20` traffic for the
        // same URI would classify differently. The encoder must never
        // emit `+` for a space, and a literal `+` in the input must be
        // escaped (so decode is unambiguous).
        assert_eq!(url_encode("new york"), "new%20york");
        assert!(!url_encode("a b").contains('+'));
        assert_eq!(url_encode("1+1"), "1%2B1");
        // Parse keeps the encoded bytes verbatim (no percent-decoding).
        let u = Uri::parse("http://h/search?q=new%20york");
        assert_eq!(u.query_value("q"), Some("new%20york"));
    }
}
