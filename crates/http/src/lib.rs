//! # extractocol-http
//!
//! The HTTP-layer data model shared by the static analysis
//! (`extractocol-core`) and the dynamic evaluation harness
//! (`extractocol-dynamic`):
//!
//! * [`uri`] — URIs with schemes, hosts, path segments, and query strings;
//! * [`message`] — HTTP requests, responses, and reconstructed
//!   transactions (request/response pairs, paper §3.3);
//! * [`json`] — a self-contained JSON value model with parser and
//!   serializer (response bodies and request bodies are predominantly JSON,
//!   paper Table 1);
//! * [`xml`] — a small XML element tree with parser and serializer;
//! * [`regexlite`] — a Thompson-NFA regular-expression engine covering
//!   exactly the signature subset Extractocol emits: literals, `.`,
//!   character classes, `*` `+` `?`, groups, and alternation.
//!
//! Everything here is implemented from scratch: the paper's semantic models
//! reach *inside* these representations (e.g. a JSON tree signature mirrors
//! the JSON value tree), so owning the implementation is part of the
//! substrate work rather than a dependency to import.

pub mod json;
pub mod message;
pub mod regexlite;
pub mod uri;
pub mod xml;

pub use json::{JsonLimits, JsonValue};
pub use message::{Body, Headers, HttpMethod, Request, Response, Transaction};
pub use regexlite::Regex;
pub use uri::Uri;
pub use xml::{XmlElement, XmlLimits, XmlNode};
