//! A Thompson-NFA regular expression engine for the signature subset.
//!
//! Extractocol compiles message signatures into regular expressions built
//! from string literals, type-derived wildcards (`.*`, `[0-9]+`), Kleene
//! stars for `rep{..}` parts, and `|` for disjunctions (paper §3.2). The
//! evaluation then matches those regexes against captured traffic traces
//! (§5.1 "Signature validity"). This engine supports exactly that dialect:
//!
//! * literals (with `\` escaping),
//! * `.` (any character),
//! * character classes `[a-z0-9_]`, optionally negated `[^/]`,
//! * postfix quantifiers `*`, `+`, `?`,
//! * grouping `( … )` and alternation `|`.
//!
//! Matching is whole-string (anchored at both ends), which is how the paper
//! uses signatures; [`Regex::find_prefix`] provides the prefix-match
//! variant used for byte-attribution metrics. Construction is Thompson's
//! algorithm; matching is the standard simultaneous-state simulation, so
//! both are linear — no backtracking blowups on adversarial bodies.
//!
//! **Empty-pattern semantics** (pinned; the traffic classifier hits this
//! edge constantly with empty header values and empty query components):
//! the empty pattern `""` compiles successfully and denotes the language
//! `{""}` under full anchored matching — it matches the empty input and
//! *nothing else*. Symmetrically, a non-nullable pattern does not match
//! the empty input. The cost of the empty-input verdict never scales with
//! the pattern's language: it is exactly one start-closure construction
//! (a handful of budget steps), so any budget that admits the closure
//! yields a definitive answer.
//!
//! **Candidate short-circuit**: compilation precomputes the regex's
//! *required literal prefix* — the longest byte run every accepted string
//! must start with, read off the NFA by following single-successor literal
//! states from the start closure. Anchored matching rejects in O(prefix)
//! without simulating the NFA when the input doesn't start with it
//! ([`Regex::required_prefix`]); the signature-serving index uses the same
//! prefix notion (on the signature side) to prune candidates before any
//! matcher runs.

use std::fmt;

/// A compile error with position in the pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct RegexError {
    pub at: usize,
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for RegexError {}

/// Returned by the budgeted matchers when the step budget was exhausted
/// before a definitive answer. This is *not* a non-match: callers that
/// care about soundness (the conformance oracle) must treat it as
/// "unknown" and surface it separately from a mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The budget that was exhausted.
    pub budget: usize,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "match step budget of {} exceeded", self.budget)
    }
}

impl std::error::Error for BudgetExceeded {}

/// Default step budget for signature-conformance matching. The NFA
/// simulation is `O(states × chars)`, so this comfortably covers every
/// legitimate signature/message pair in the corpus while still bounding
/// nested `(..)*` signatures (`rep{}`-of-`∨`) against megabyte bodies.
pub const DEFAULT_MATCH_BUDGET: usize = 1 << 22;

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Ast {
    Empty,
    Literal(char),
    Any,
    Class { negated: bool, ranges: Vec<(char, char)> },
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Opt(Box<Ast>),
}

struct AstParser {
    chars: Vec<char>,
    i: usize,
}

impl AstParser {
    fn err<T>(&self, m: impl Into<String>) -> Result<T, RegexError> {
        Err(RegexError { at: self.i, message: m.into() })
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn alt(&mut self) -> Result<Ast, RegexError> {
        let mut arms = vec![self.concat()?];
        while self.peek() == Some('|') {
            self.i += 1;
            arms.push(self.concat()?);
        }
        Ok(if arms.len() == 1 { arms.pop().unwrap() } else { Ast::Alt(arms) })
    }

    fn concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().unwrap(),
            _ => Ast::Concat(items),
        })
    }

    fn repeat(&mut self) -> Result<Ast, RegexError> {
        let mut a = self.atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.i += 1;
                    a = Ast::Star(Box::new(a));
                }
                Some('+') => {
                    self.i += 1;
                    a = Ast::Plus(Box::new(a));
                }
                Some('?') => {
                    self.i += 1;
                    a = Ast::Opt(Box::new(a));
                }
                _ => break,
            }
        }
        Ok(a)
    }

    fn atom(&mut self) -> Result<Ast, RegexError> {
        match self.peek() {
            None => self.err("unexpected end of pattern"),
            Some('(') => {
                self.i += 1;
                let inner = self.alt()?;
                if self.peek() != Some(')') {
                    return self.err("unclosed group");
                }
                self.i += 1;
                Ok(inner)
            }
            Some(')') => self.err("unexpected `)`"),
            Some('.') => {
                self.i += 1;
                Ok(Ast::Any)
            }
            Some('[') => self.class(),
            Some('*') | Some('+') | Some('?') => self.err("quantifier with nothing to repeat"),
            Some('\\') => {
                self.i += 1;
                match self.peek() {
                    None => self.err("trailing backslash"),
                    Some('d') => {
                        self.i += 1;
                        Ok(Ast::Class { negated: false, ranges: vec![('0', '9')] })
                    }
                    Some('w') => {
                        self.i += 1;
                        Ok(Ast::Class {
                            negated: false,
                            ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                        })
                    }
                    Some('s') => {
                        self.i += 1;
                        Ok(Ast::Class {
                            negated: false,
                            ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                        })
                    }
                    Some(c) => {
                        self.i += 1;
                        Ok(Ast::Literal(c))
                    }
                }
            }
            Some(c) => {
                self.i += 1;
                Ok(Ast::Literal(c))
            }
        }
    }

    fn class(&mut self) -> Result<Ast, RegexError> {
        self.i += 1; // [
        let negated = self.peek() == Some('^');
        if negated {
            self.i += 1;
        }
        let mut ranges = Vec::new();
        loop {
            match self.peek() {
                None => return self.err("unclosed character class"),
                Some(']') if !ranges.is_empty() => {
                    self.i += 1;
                    break;
                }
                Some(_) => {
                    let lo = self.class_char()?;
                    if self.peek() == Some('-')
                        && self.chars.get(self.i + 1).copied() != Some(']')
                        && self.chars.get(self.i + 1).is_some()
                    {
                        self.i += 1;
                        let hi = self.class_char()?;
                        if hi < lo {
                            return self.err("inverted range in class");
                        }
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
            }
        }
        Ok(Ast::Class { negated, ranges })
    }

    fn class_char(&mut self) -> Result<char, RegexError> {
        match self.peek() {
            None => self.err("unclosed character class"),
            Some('\\') => {
                self.i += 1;
                match self.peek() {
                    None => self.err("trailing backslash in class"),
                    Some(c) => {
                        self.i += 1;
                        Ok(match c {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            c => c,
                        })
                    }
                }
            }
            Some(c) => {
                self.i += 1;
                Ok(c)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NFA
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Trans {
    /// Epsilon transitions to other states.
    Eps(Vec<usize>),
    /// Consume one character matching the test, then go to the state.
    Char(CharTest, usize),
    /// Accepting state.
    Accept,
}

#[derive(Debug, Clone)]
enum CharTest {
    Any,
    Lit(char),
    Class { negated: bool, ranges: Vec<(char, char)> },
}

impl CharTest {
    fn matches(&self, c: char) -> bool {
        match self {
            CharTest::Any => true,
            CharTest::Lit(l) => *l == c,
            CharTest::Class { negated, ranges } => {
                let inside = ranges.iter().any(|(lo, hi)| *lo <= c && c <= *hi);
                inside != *negated
            }
        }
    }
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    states: Vec<Trans>,
    start: usize,
    /// Longest literal run every accepted string must start with — the
    /// anchored-match short-circuit (see module docs).
    required_prefix: String,
}

/// Cap on the precomputed required prefix: long enough for any corpus
/// host + path head, short enough that computing it stays negligible.
const REQUIRED_PREFIX_CAP: usize = 128;

/// Follows single-successor literal states from `start` to recover the
/// mandatory literal prefix of the automaton's language. Conservative:
/// stops at the first branch (closure with ≠ 1 concrete state), at an
/// accepting state, and at any non-literal character test.
fn compute_required_prefix(states: &[Trans], start: usize) -> String {
    let mut prefix = String::new();
    let mut cur = start;
    while prefix.len() < REQUIRED_PREFIX_CAP {
        let mut stack = vec![cur];
        let mut seen = vec![false; states.len()];
        let mut concrete = Vec::new();
        while let Some(s) = stack.pop() {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            match &states[s] {
                Trans::Eps(targets) => stack.extend(targets.iter().copied()),
                _ => concrete.push(s),
            }
        }
        // A branch, an accepting state, or a wildcard/class head ends the
        // mandatory run.
        let [only] = concrete.as_slice() else { break };
        let Trans::Char(CharTest::Lit(c), to) = &states[*only] else { break };
        prefix.push(*c);
        cur = *to;
    }
    prefix
}

impl Regex {
    /// Compiles a pattern.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let mut p = AstParser { chars: pattern.chars().collect(), i: 0 };
        let ast = p.alt()?;
        if p.i != p.chars.len() {
            return p.err("unexpected `)`");
        }
        let mut b = Builder { states: Vec::new() };
        let frag = b.compile(&ast);
        let accept = b.push(Trans::Accept);
        b.patch(frag.out, accept);
        let required_prefix = compute_required_prefix(&b.states, frag.start);
        Ok(Regex {
            pattern: pattern.to_string(),
            states: b.states,
            start: frag.start,
            required_prefix,
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// The literal prefix every accepted string must start with (possibly
    /// empty). Anchored matching uses it as an O(prefix) reject before any
    /// NFA simulation; index builders can use it to bucket candidates.
    pub fn required_prefix(&self) -> &str {
        &self.required_prefix
    }

    /// Whole-string (anchored) match.
    pub fn is_match(&self, text: &str) -> bool {
        self.is_match_budgeted(text, usize::MAX).expect("unbounded budget cannot be exceeded")
    }

    /// Whole-string match under a step budget. Every state test and every
    /// epsilon-closure expansion counts one step; when the budget runs out
    /// before the answer is definitive, `Err(BudgetExceeded)` is returned —
    /// deliberately distinct from `Ok(false)` so conformance checks never
    /// mistake "ran out of fuel" for "does not match".
    pub fn is_match_budgeted(&self, text: &str, budget: usize) -> Result<bool, BudgetExceeded> {
        // Candidate short-circuit: an anchored match must start with the
        // required literal prefix. Rejecting here is definitive (never a
        // budget question), and strictly cheaper than the simulation.
        if !self.required_prefix.is_empty() && !text.starts_with(&self.required_prefix) {
            return Ok(false);
        }
        let mut steps: usize = 0;
        let mut current = Vec::new();
        let mut seen = vec![false; self.states.len()];
        self.add_state(self.start, &mut current, &mut seen, &mut steps);
        if steps > budget {
            return Err(BudgetExceeded { budget });
        }
        for c in text.chars() {
            let mut next = Vec::new();
            let mut seen_next = vec![false; self.states.len()];
            for &s in &current {
                steps = steps.saturating_add(1);
                if let Trans::Char(test, to) = &self.states[s] {
                    if test.matches(c) {
                        self.add_state(*to, &mut next, &mut seen_next, &mut steps);
                    }
                }
            }
            if steps > budget {
                return Err(BudgetExceeded { budget });
            }
            current = next;
            if current.is_empty() {
                return Ok(false);
            }
        }
        Ok(current.iter().any(|&s| matches!(self.states[s], Trans::Accept)))
    }

    /// Length of the longest prefix of `text` this regex matches, if any
    /// prefix (including the empty one) matches.
    pub fn find_prefix(&self, text: &str) -> Option<usize> {
        let mut steps = 0usize;
        let mut current = Vec::new();
        let mut seen = vec![false; self.states.len()];
        self.add_state(self.start, &mut current, &mut seen, &mut steps);
        let mut best = if current.iter().any(|&s| matches!(self.states[s], Trans::Accept)) {
            Some(0)
        } else {
            None
        };
        let mut consumed = 0;
        for c in text.chars() {
            let mut next = Vec::new();
            let mut seen_next = vec![false; self.states.len()];
            for &s in &current {
                if let Trans::Char(test, to) = &self.states[s] {
                    if test.matches(c) {
                        self.add_state(*to, &mut next, &mut seen_next, &mut steps);
                    }
                }
            }
            consumed += c.len_utf8();
            current = next;
            if current.is_empty() {
                break;
            }
            if current.iter().any(|&s| matches!(self.states[s], Trans::Accept)) {
                best = Some(consumed);
            }
        }
        best
    }

    fn add_state(&self, s: usize, into: &mut Vec<usize>, seen: &mut [bool], steps: &mut usize) {
        if seen[s] {
            return;
        }
        seen[s] = true;
        *steps = steps.saturating_add(1);
        if let Trans::Eps(targets) = &self.states[s] {
            for &t in targets {
                self.add_state(t, into, seen, steps);
            }
        } else {
            into.push(s);
        }
    }
}

/// A fragment during Thompson construction: entry state plus the list of
/// dangling out-edges to patch.
struct Frag {
    start: usize,
    /// `(state, eps-slot)` pairs: state indices whose epsilon target list
    /// has a hole at the given position.
    out: Vec<(usize, usize)>,
}

struct Builder {
    states: Vec<Trans>,
}

impl Builder {
    fn push(&mut self, t: Trans) -> usize {
        self.states.push(t);
        self.states.len() - 1
    }

    fn patch(&mut self, outs: Vec<(usize, usize)>, target: usize) {
        for (state, slot) in outs {
            match &mut self.states[state] {
                Trans::Eps(v) => v[slot] = target,
                Trans::Char(_, to) => *to = target,
                Trans::Accept => unreachable!("accept has no out edges"),
            }
        }
    }

    fn compile(&mut self, ast: &Ast) -> Frag {
        match ast {
            Ast::Empty => {
                let s = self.push(Trans::Eps(vec![usize::MAX]));
                Frag { start: s, out: vec![(s, 0)] }
            }
            Ast::Literal(c) => {
                let s = self.push(Trans::Char(CharTest::Lit(*c), usize::MAX));
                Frag { start: s, out: vec![(s, 0)] }
            }
            Ast::Any => {
                let s = self.push(Trans::Char(CharTest::Any, usize::MAX));
                Frag { start: s, out: vec![(s, 0)] }
            }
            Ast::Class { negated, ranges } => {
                let s = self.push(Trans::Char(
                    CharTest::Class { negated: *negated, ranges: ranges.clone() },
                    usize::MAX,
                ));
                Frag { start: s, out: vec![(s, 0)] }
            }
            Ast::Concat(items) => {
                let mut frags: Vec<Frag> = items.iter().map(|a| self.compile(a)).collect();
                let mut iter = frags.drain(..);
                let first = iter.next().expect("concat is non-empty");
                let start = first.start;
                let mut out = first.out;
                for f in iter {
                    self.patch(out, f.start);
                    out = f.out;
                }
                Frag { start, out }
            }
            Ast::Alt(arms) => {
                let split = self.push(Trans::Eps(vec![usize::MAX; arms.len()]));
                let mut out = Vec::new();
                for (i, arm) in arms.iter().enumerate() {
                    let f = self.compile(arm);
                    if let Trans::Eps(v) = &mut self.states[split] {
                        v[i] = f.start;
                    }
                    out.extend(f.out);
                }
                Frag { start: split, out }
            }
            Ast::Star(inner) => {
                let split = self.push(Trans::Eps(vec![usize::MAX, usize::MAX]));
                let f = self.compile(inner);
                if let Trans::Eps(v) = &mut self.states[split] {
                    v[0] = f.start;
                }
                self.patch(f.out, split);
                Frag { start: split, out: vec![(split, 1)] }
            }
            Ast::Plus(inner) => {
                let f = self.compile(inner);
                let split = self.push(Trans::Eps(vec![f.start, usize::MAX]));
                self.patch(f.out, split);
                Frag { start: f.start, out: vec![(split, 1)] }
            }
            Ast::Opt(inner) => {
                let f = self.compile(inner);
                let split = self.push(Trans::Eps(vec![f.start, usize::MAX]));
                let mut out = f.out;
                out.push((split, 1));
                Frag { start: split, out }
            }
        }
    }
}

/// Escapes a literal string so it matches itself when embedded in a
/// pattern. Used by signature-to-regex compilation for constants.
///
/// Audited against the full metacharacter set of this engine (the
/// `escape_literal_self_match` property test over printable ASCII keeps it
/// honest): the characters with special meaning *outside* a character
/// class are exactly `\ . * + ? ( ) [ ] |`, all escaped here. `{` and `}`
/// are ordinary literals — this dialect has no bounded repetition — and
/// `^`/`$` carry no anchor meaning (matching is always whole-string).
/// `-` and `]` are special only *inside* `[...]` classes; escaped output
/// is never embedded in a class position (class atoms are emitted
/// directly by the type-hint compiler, never from user literals), and
/// `]` is escaped anyway. Escaping a non-metacharacter would also be
/// harmless (`\c` parses as the literal `c` unless `c` is `d`/`w`/`s`),
/// but we keep the output minimal so compiled signatures stay readable.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if "\\.*+?()[]|".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn literals_and_wildcards() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "abcd"));
        assert!(!m("abc", "ab"));
        assert!(m("a.c", "axc"));
        assert!(m(".*", ""));
        assert!(m(".*", "anything at all"));
        assert!(m("a.*b", "ab"));
        assert!(m("a.*b", "a---b"));
        assert!(!m("a.+b", "ab"));
    }

    #[test]
    fn classes_and_quantifiers() {
        assert!(m("[0-9]+", "12345"));
        assert!(!m("[0-9]+", ""));
        assert!(!m("[0-9]+", "12a45"));
        assert!(m("[a-z_][a-z0-9_]*", "snake_case9"));
        assert!(m("[^/]+", "no-slash"));
        assert!(!m("[^/]+", "has/slash"));
        assert!(m("colou?r", "color"));
        assert!(m("colou?r", "colour"));
        assert!(m("\\d+", "42"));
        assert!(m("\\w+", "word_9"));
    }

    #[test]
    fn groups_and_alternation() {
        assert!(m("(ab|cd)+", "abcdab"));
        assert!(!m("(ab|cd)+", "abc"));
        assert!(m("http(s)?://x", "https://x"));
        assert!(m("http(s)?://x", "http://x"));
        assert!(m("(GET|POST)", "POST"));
        assert!(m("a(b(c|d))*e", "abcbde"));
    }

    #[test]
    fn paper_shaped_signatures() {
        // From paper §3.2 (Diode) and Table 3 (radio reddit).
        let diode = Regex::new(&format!(
            "{}(.*)&sort=(.*)",
            escape_literal("http://www.reddit.com/search/.json?q=")
        ))
        .unwrap();
        assert!(diode.is_match("http://www.reddit.com/search/.json?q=cats&sort=top"));
        assert!(!diode.is_match("http://www.reddit.com/search/json?q=cats&sort=top"));

        let ted = Regex::new(
            "https://app-api\\.ted\\.com/v1/talks/[0-9]*/android_ad\\.json\\?api-key=.*",
        )
        .unwrap();
        assert!(ted.is_match("https://app-api.ted.com/v1/talks/2406/android_ad.json?api-key=x9"));
        assert!(!ted.is_match("https://app-api.ted.com/v1/talks/abc/android_ad.json?api-key=x9"));
    }

    #[test]
    fn escaping_round_trip() {
        let special = "a.b*c+d?e(f)g[h]i|j\\k";
        let pat = escape_literal(special);
        assert!(m(&pat, special));
        assert!(!m(&pat, "aXb*c+d?e(f)g[h]i|j\\k"));
    }

    #[test]
    fn prefix_matching() {
        let r = Regex::new("id=[0-9]+").unwrap();
        assert_eq!(r.find_prefix("id=123&rest"), Some(6));
        assert_eq!(r.find_prefix("id=nope"), None);
        let opt = Regex::new("(x)?").unwrap();
        assert_eq!(opt.find_prefix("yz"), Some(0));
        assert_eq!(opt.find_prefix("xz"), Some(1));
    }

    #[test]
    fn empty_pattern_is_a_full_anchored_match_of_the_empty_string() {
        // Pinned semantics (see module docs): `""` denotes exactly {""}.
        let empty = Regex::new("").unwrap();
        assert!(empty.is_match(""));
        assert!(!empty.is_match("a"));
        assert!(!empty.is_match(" "));
        assert_eq!(empty.is_match_budgeted("", usize::MAX), Ok(true));
        assert_eq!(empty.is_match_budgeted("x", usize::MAX), Ok(false));
        // Nullable-but-nonempty patterns agree with the empty pattern on
        // the empty input; mandatory patterns reject it.
        assert!(m(".*", ""));
        assert!(m("(x)?", ""));
        assert!(m("()", ""));
        assert!(!m("a", ""));
        assert!(!m("[0-9]+", ""));
        // Prefix matching on the empty pattern: the empty prefix matches.
        assert_eq!(empty.find_prefix("abc"), Some(0));
        assert_eq!(empty.find_prefix(""), Some(0));
    }

    #[test]
    fn empty_pattern_verdict_is_budget_free() {
        // A tiny-but-nonzero budget suffices for the empty/empty pair:
        // the whole match is one start-state insertion.
        let empty = Regex::new("").unwrap();
        assert_eq!(empty.is_match_budgeted("", 2), Ok(true));
    }

    #[test]
    fn required_prefix_is_computed_and_sound() {
        assert_eq!(Regex::new("abc").unwrap().required_prefix(), "abc");
        assert_eq!(Regex::new("http://h/a\\.json").unwrap().required_prefix(), "http://h/a.json");
        // Wildcards, classes, and alternation end the mandatory run.
        assert_eq!(Regex::new("ab.*cd").unwrap().required_prefix(), "ab");
        assert_eq!(Regex::new("a[0-9]+").unwrap().required_prefix(), "a");
        assert_eq!(Regex::new("(ab|ac)").unwrap().required_prefix(), "");
        // A star head is optional, so nothing is mandatory.
        assert_eq!(Regex::new("(ab)*c").unwrap().required_prefix(), "");
        // A plus head *is* mandatory up to its first literal run.
        assert_eq!(Regex::new("(ab)+c").unwrap().required_prefix(), "ab");
        assert_eq!(Regex::new("").unwrap().required_prefix(), "");
        assert_eq!(Regex::new(".*").unwrap().required_prefix(), "");

        // Soundness: the short-circuit path and the simulation agree.
        let r = Regex::new("http://h/api\\?q=.*").unwrap();
        assert_eq!(r.required_prefix(), "http://h/api?q=");
        assert!(r.is_match("http://h/api?q=cats"));
        assert!(!r.is_match("https://h/api?q=cats"));
        // A mismatching prefix is a definitive Ok(false) under any budget,
        // never BudgetExceeded.
        assert_eq!(r.is_match_budgeted("nope://elsewhere", 1), Ok(false));
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::new("(a").is_err());
        assert!(Regex::new("a)").is_err());
        assert!(Regex::new("[a").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("[z-a]").is_err());
    }

    #[test]
    fn budget_exceeded_is_distinct_from_no_match() {
        // The `rep{}`-of-`∨` shape signature building emits for nested
        // accumulator loops: nested `(..)*` groups around an alternation.
        let pathological = "((q=(cats|dogs|[0-9]+)&)*)*tail";
        let r = Regex::new(pathological).unwrap();
        let body: String = "q=cats&q=0&".repeat(2000);

        // A starved budget yields a definitive BudgetExceeded, not a
        // non-match verdict.
        assert_eq!(r.is_match_budgeted(&body, 50), Err(BudgetExceeded { budget: 50 }));
        // With fuel, the same input gets a real answer (no trailing
        // "tail"), and the unbudgeted entry point agrees.
        assert_eq!(r.is_match_budgeted(&body, DEFAULT_MATCH_BUDGET), Ok(false));
        assert!(!r.is_match(&body));
        let matching = format!("{body}tail");
        assert_eq!(r.is_match_budgeted(&matching, DEFAULT_MATCH_BUDGET), Ok(true));
        // Budgeted and unbudgeted matching agree on ordinary inputs.
        assert_eq!(r.is_match_budgeted("q=dogs&tail", DEFAULT_MATCH_BUDGET), Ok(true));
        assert_eq!(r.is_match_budgeted("q=frogs&tail", DEFAULT_MATCH_BUDGET), Ok(false));
    }

    #[test]
    fn corpus_shaped_exhaustion_probes_stay_bounded_and_distinct() {
        // The three regex-exhaustion probe shapes the adversarial traffic
        // generator emits (`extractocol-dynamic`'s `adversarial.rs`),
        // aimed at the regex form the signature builder produces for
        // nested query-accumulator loops: a mandatory literal prefix,
        // nested `rep{}` groups, and an `Or` fan-out.
        let sig = "http://h/api\\?((c=[0-9]+&)*)*(q=(cats|dogs|[0-9]+)&)*end=1";
        let r = Regex::new(sig).unwrap();

        // Probe shape 1: many repeated pairs (Rep-loop fan-out).
        let probe1 = format!("http://h/api?{}end=1", "c=7&".repeat(1500));
        // Probe shape 2: same key, growing values (ambiguous iteration
        // boundaries between the two nested loops).
        let growing: String = (0..300).map(|i| format!("c={}&", "7".repeat(1 + i % 40))).collect();
        let probe2 = format!("http://h/api?{growing}end=1");
        // Probe shape 3: one giant digit run against `[0-9]+`.
        let probe3 = format!("http://h/api?c={}&end=1", "9".repeat(6000));

        for probe in [&probe1, &probe2, &probe3] {
            // A starved budget is a definitive BudgetExceeded carrying
            // the cap — pinned distinct from a no-match verdict.
            assert_eq!(r.is_match_budgeted(probe, 100), Err(BudgetExceeded { budget: 100 }));
            // The default budget resolves all three probes: bounded
            // work, real answer.
            assert_eq!(r.is_match_budgeted(probe, DEFAULT_MATCH_BUDGET), Ok(true));
            // Breaking the tail turns the verdict into a definitive
            // no-match — not an exhaustion — under the same budget.
            let broken = format!("{}x", &probe[..probe.len() - 1]);
            assert_eq!(r.is_match_budgeted(&broken, DEFAULT_MATCH_BUDGET), Ok(false));
            // The pathological suffix cannot defeat the required-prefix
            // short-circuit: a wrong scheme is Ok(false) at budget 1.
            let wrong = format!("xttp{}", &probe[4..]);
            assert_eq!(r.is_match_budgeted(&wrong, 1), Ok(false));
        }
    }

    #[test]
    fn escape_literal_self_match_property() {
        // Property: for any printable-ASCII string `s`,
        // `Regex::new(escape_literal(s))` compiles and full-matches exactly
        // `s` — no more, no less. Exercises every metacharacter (incl. `{`,
        // `}`, `-`, `^`, `$`, and `]`) plus plain text.
        let alphabet: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
        let mut rng = extractocol_ir::rng::Rng::new(0x5eed_e5ca_9e);
        for _ in 0..300 {
            let len = rng.below(24);
            let s = rng.ascii_string(&alphabet, len);
            let pat = escape_literal(&s);
            let re = Regex::new(&pat)
                .unwrap_or_else(|e| panic!("escape_literal({s:?}) -> {pat:?} failed: {e}"));
            assert!(re.is_match(&s), "escape_literal({s:?}) -> {pat:?} must match itself");
            // Strictness: a longer string must not match.
            assert!(!re.is_match(&format!("{s}x")), "{pat:?} matched a proper super-string");
            // A single-character perturbation must not match.
            if !s.is_empty() {
                let at = rng.below(s.len());
                let orig = s.as_bytes()[at] as char;
                let mut repl = *rng.pick(&alphabet);
                if repl == orig {
                    repl = if orig == 'z' { 'y' } else { 'z' };
                }
                let mut chars: Vec<char> = s.chars().collect();
                chars[at] = repl;
                let mutated: String = chars.into_iter().collect();
                assert!(!re.is_match(&mutated), "{pat:?} matched perturbed {mutated:?}");
            }
        }
        // The full metacharacter set in one deterministic round-trip.
        let gauntlet = r"\.*+?()[]|{}-^$a0 ~";
        let re = Regex::new(&escape_literal(gauntlet)).unwrap();
        assert!(re.is_match(gauntlet));
        assert!(!re.is_match(&gauntlet[1..]));
    }

    #[test]
    fn no_pathological_backtracking() {
        // (a*)*b against a^40 — classic catastrophic-backtracking input;
        // finishes instantly on an NFA simulation.
        let r = Regex::new("(a*)*b").unwrap();
        let text = "a".repeat(40);
        assert!(!r.is_match(&text));
        assert!(r.is_match(&format!("{text}b")));
    }
}
