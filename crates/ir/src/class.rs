//! Classes, fields, and methods.

use crate::stmt::Stmt;
use crate::types::Type;
use crate::values::MethodRef;

/// A field declaration inside a [`Class`].
#[derive(Clone, Debug, PartialEq)]
pub struct FieldDecl {
    /// Field name as it appears in the binary.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Static (class-level) rather than instance field.
    pub is_static: bool,
}

/// A local variable slot of a [`Method`].
#[derive(Clone, Debug, PartialEq)]
pub struct LocalDecl {
    /// Human-readable name (may be obfuscated).
    pub name: String,
    /// Declared type of the slot.
    pub ty: Type,
}

/// A single method: signature plus a flat statement list.
///
/// Control flow is expressed with statement-index branch targets, as in
/// Jimple after label resolution. Abstract and library-stub methods have an
/// empty body and `has_body == false`.
#[derive(Clone, Debug, PartialEq)]
pub struct Method {
    /// Simple name (`<init>` / `<clinit>` for constructors/initializers).
    pub name: String,
    /// Parameter types, excluding the implicit receiver.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
    /// Static methods have no receiver.
    pub is_static: bool,
    /// True for concrete methods with IR bodies; false for
    /// abstract/native/library-stub methods that analyses must model
    /// semantically instead of stepping into.
    pub has_body: bool,
    /// Declared local slots; statement operands index into this table.
    pub locals: Vec<LocalDecl>,
    /// The statement list. Branch targets are indices into this vector.
    pub body: Vec<Stmt>,
}

impl Method {
    /// Builds the globally-unique reference for this method as a member of
    /// `class`.
    pub fn make_ref(&self, class: &str) -> MethodRef {
        MethodRef {
            class: class.to_string(),
            name: self.name.clone(),
            params: self.params.clone(),
            ret: self.ret.clone(),
        }
    }
}

/// A class (or interface) in the application image.
#[derive(Clone, Debug, PartialEq)]
pub struct Class {
    /// Fully-qualified dotted name, e.g. `com.example.MainActivity`.
    pub name: String,
    /// Superclass name; `None` only for `java.lang.Object` roots.
    pub superclass: Option<String>,
    /// Implemented interfaces.
    pub interfaces: Vec<String>,
    /// Declared fields.
    pub fields: Vec<FieldDecl>,
    /// Declared methods.
    pub methods: Vec<Method>,
    /// Interfaces carry no state and their methods have no bodies.
    pub is_interface: bool,
    /// Marks third-party library code that ships inside the APK (and may be
    /// obfuscated together with it), as opposed to the app's own packages.
    /// Platform classes (`java.*`, `android.*`) are *not* part of the APK at
    /// all and appear only as stubs.
    pub is_library: bool,
}

impl Class {
    /// Finds a declared method by name and arity (ignoring overloads on
    /// parameter types, which the corpus does not produce).
    pub fn method(&self, name: &str, arity: usize) -> Option<&Method> {
        self.methods.iter().find(|m| m.name == name && m.params.len() == arity)
    }

    /// Finds a declared field by name.
    pub fn field(&self, name: &str) -> Option<&FieldDecl> {
        self.fields.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_lookup_by_name_and_arity() {
        let c = Class {
            name: "a.B".into(),
            superclass: Some("java.lang.Object".into()),
            interfaces: vec![],
            fields: vec![FieldDecl { name: "x".into(), ty: Type::Int, is_static: false }],
            methods: vec![
                Method {
                    name: "m".into(),
                    params: vec![Type::Int],
                    ret: Type::Void,
                    is_static: false,
                    has_body: true,
                    locals: vec![],
                    body: vec![],
                },
                Method {
                    name: "m".into(),
                    params: vec![Type::Int, Type::Int],
                    ret: Type::Void,
                    is_static: false,
                    has_body: true,
                    locals: vec![],
                    body: vec![],
                },
            ],
            is_interface: false,
            is_library: false,
        };
        assert_eq!(c.method("m", 1).unwrap().params.len(), 1);
        assert_eq!(c.method("m", 2).unwrap().params.len(), 2);
        assert!(c.method("m", 3).is_none());
        assert!(c.field("x").is_some());
        assert!(c.field("y").is_none());
    }
}
