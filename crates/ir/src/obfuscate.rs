//! A ProGuard-style identifier obfuscator.
//!
//! The paper reports that 15% of real apps are obfuscated, that popular
//! tools "rename identifiers with semantically obscure names", and that
//! Extractocol must (a) be insensitive to app-code renaming and (b) map
//! obfuscated *library* code back onto its semantic models (§3.4). The
//! evaluation additionally obfuscates every open-source app with ProGuard
//! and verifies identical results (§5.1).
//!
//! This module reproduces ProGuard's observable behavior on our IR:
//!
//! * classes, methods, and fields of the app (and optionally of bundled
//!   libraries) are renamed to short meaningless names (`o.a`, `a`, `b`, …),
//! * names that *override platform classes* are kept (ProGuard cannot rename
//!   `onCreate` or `doInBackground` without breaking dispatch), as are
//!   `<init>`/`<clinit>`,
//! * overriding methods across renamed classes receive consistent names so
//!   virtual dispatch still works,
//! * string constants and resources are untouched (renaming tools do not
//!   touch data; string encryption is out of scope here as in the paper).
//!
//! The returned [`ObfuscationMap`] is the ground-truth mapping used to test
//! the de-obfuscation mapper in `extractocol-core`.

use crate::apk::Apk;
use crate::program::ProgramIndex;
use crate::stmt::{Expr, Stmt};
use crate::types::Type;
use crate::values::{Const, Place, Value};
use std::collections::{BTreeMap, HashMap};

/// Options controlling what gets renamed.
#[derive(Clone, Debug, Default)]
pub struct ObfuscationOptions {
    /// Also rename classes marked `is_library` (bundled third-party code).
    /// The paper notes many real apps leave library code unobfuscated even
    /// when their own code is renamed; both settings occur in the wild.
    pub obfuscate_libraries: bool,
    /// Name prefixes that are never renamed (platform classes that are not
    /// part of the APK). `java.`, `javax.`, `android.`, `org.apache.http`
    /// and friends are always implied.
    pub extra_keep_prefixes: Vec<String>,
}

/// The mapping applied by [`obfuscate`], original → obfuscated.
#[derive(Debug, Default, Clone)]
pub struct ObfuscationMap {
    /// Original class name → new class name.
    pub classes: BTreeMap<String, String>,
    /// `(original class, original method name, arity)` → new method name.
    pub methods: BTreeMap<(String, String, usize), String>,
    /// `(original class, original field name)` → new field name.
    pub fields: BTreeMap<(String, String), String>,
}

/// Platform prefixes that are never part of an APK and thus never renamed.
const PLATFORM_PREFIXES: &[&str] = &[
    "java.",
    "javax.",
    "android.",
    "dalvik.",
    "org.w3c.",
    "org.xml.",
    // Part of the Android platform image, not the APK:
    "org.json.",
    "org.apache.http",
    "org.apache.commons.",
];

fn short_name(mut i: usize) -> String {
    // a, b, ..., z, aa, ab, ... (ProGuard's sequence)
    let mut s = String::new();
    loop {
        s.insert(0, (b'a' + (i % 26) as u8) as char);
        i /= 26;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    s
}

/// Simple union-find over dense indices.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu { parent: (0..n).collect() }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Applies ProGuard-style renaming; returns the new APK and the map.
pub fn obfuscate(apk: &Apk, opts: &ObfuscationOptions) -> (Apk, ObfuscationMap) {
    let index = ProgramIndex::new(apk);
    let kept_class = |name: &str| -> bool {
        PLATFORM_PREFIXES.iter().any(|p| name.starts_with(p))
            || opts.extra_keep_prefixes.iter().any(|p| name.starts_with(p))
            || match apk.class(name) {
                Some(c) => c.is_library && !opts.obfuscate_libraries,
                // Unknown classes are treated as platform stubs.
                None => true,
            }
    };

    let mut map = ObfuscationMap::default();

    // 1. Class names.
    let mut class_counter = 0usize;
    for c in &apk.classes {
        if !kept_class(&c.name) {
            map.classes.insert(c.name.clone(), format!("o.{}", short_name(class_counter)));
            class_counter += 1;
        }
    }

    // 2. Method override groups (union-find across the hierarchy), so that
    //    overriding methods keep dispatching after the rename.
    let mut node_of: HashMap<(String, String, usize), usize> = HashMap::new();
    let mut nodes: Vec<(String, String, usize)> = Vec::new();
    for c in &apk.classes {
        for m in &c.methods {
            let key = (c.name.clone(), m.name.clone(), m.params.len());
            if !node_of.contains_key(&key) {
                node_of.insert(key.clone(), nodes.len());
                nodes.push(key);
            }
        }
    }
    let mut dsu = Dsu::new(nodes.len());
    // `kept_group[i]` — some member of the group overrides a kept class's
    // method (or is a constructor), so the whole group keeps its name.
    let mut kept_group = vec![false; nodes.len()];
    for c in &apk.classes {
        for m in &c.methods {
            let key = (c.name.clone(), m.name.clone(), m.params.len());
            let me = node_of[&key];
            if m.name.starts_with('<') || kept_class(&c.name) {
                kept_group[me] = true;
            }
            // Union with every ancestor (superclass chain + interfaces)
            // declaring the same name/arity.
            let mut ancestors: Vec<&str> = Vec::new();
            let mut cur = c.superclass.as_deref();
            while let Some(s) = cur {
                ancestors.push(s);
                cur = index.class_id(s).and_then(|id| index.class(id).superclass.as_deref());
            }
            ancestors.extend(c.interfaces.iter().map(String::as_str));
            for anc in ancestors {
                if kept_class(anc) {
                    // Overriding a platform method: the platform class must
                    // be stubbed in the APK for the override to be
                    // recognized (our corpus always stubs the callbacks it
                    // relies on, mirroring how ProGuard reads library jars).
                    let declared = apk
                        .class(anc)
                        .map(|ac| ac.method(&m.name, m.params.len()).is_some())
                        .unwrap_or(false);
                    if declared {
                        kept_group[me] = true;
                    }
                } else if let Some(ac) = apk.class(anc) {
                    if ac.method(&m.name, m.params.len()).is_some() {
                        let akey = (anc.to_string(), m.name.clone(), m.params.len());
                        let an = node_of[&akey];
                        dsu.union(me, an);
                    }
                }
            }
        }
    }
    // Propagate keep flags to group roots, then assign one fresh name per
    // non-kept group. (Indexed loops: `dsu.find` needs `&mut self`.)
    let mut root_kept: HashMap<usize, bool> = HashMap::new();
    #[allow(clippy::needless_range_loop)]
    for i in 0..nodes.len() {
        let r = dsu.find(i);
        let e = root_kept.entry(r).or_insert(false);
        *e |= kept_group[i];
    }
    let mut root_name: HashMap<usize, String> = HashMap::new();
    let mut method_counter = 0usize;
    #[allow(clippy::needless_range_loop)]
    for i in 0..nodes.len() {
        let (class, name, arity) = nodes[i].clone();
        if kept_class(&class) {
            continue;
        }
        let r = dsu.find(i);
        if root_kept[&r] {
            continue;
        }
        let new = root_name.entry(r).or_insert_with(|| {
            let n = short_name(method_counter);
            method_counter += 1;
            n
        });
        map.methods.insert((class, name, arity), new.clone());
    }

    // 3. Fields of renamed classes.
    for c in &apk.classes {
        if kept_class(&c.name) {
            continue;
        }
        for (i, f) in c.fields.iter().enumerate() {
            map.fields.insert((c.name.clone(), f.name.clone()), short_name(i));
        }
    }

    // 4. Rewrite the whole APK through the map.
    let new_apk = rewrite(apk, &map, &index);
    (new_apk, map)
}

/// Applies an arbitrary renaming map to an APK. Used by the
/// de-obfuscation mapper in `extractocol-core` to rename inferred library
/// classes back to their canonical names before analysis.
pub fn apply_map(apk: &Apk, map: &ObfuscationMap) -> Apk {
    let index = ProgramIndex::new(apk);
    rewrite(apk, map, &index)
}

/// Rewrites all names in an APK according to the map. Method/field
/// references are resolved through the hierarchy first, so a call naming a
/// superclass still maps onto the declaring class's rename.
fn rewrite(apk: &Apk, map: &ObfuscationMap, index: &ProgramIndex<'_>) -> Apk {
    let cls = |n: &str| -> String { map.classes.get(n).cloned().unwrap_or_else(|| n.to_string()) };
    let ty = |t: &Type| -> Type {
        fn go(t: &Type, f: &dyn Fn(&str) -> String) -> Type {
            match t {
                Type::Object(n) => Type::Object(f(n)),
                Type::Array(e) => Type::Array(Box::new(go(e, f))),
                other => other.clone(),
            }
        }
        go(t, &cls)
    };
    // Resolve a method name through the hierarchy to its declaring class.
    let meth = |class: &str, name: &str, arity: usize| -> String {
        let mut cur = Some(class.to_string());
        while let Some(cn) = cur {
            if let Some(new) = map.methods.get(&(cn.clone(), name.to_string(), arity)) {
                return new.clone();
            }
            if apk.class(&cn).map(|c| c.method(name, arity).is_some()).unwrap_or(false) {
                return name.to_string(); // declared but kept
            }
            cur = index.class_id(&cn).and_then(|id| index.class(id).superclass.clone());
        }
        name.to_string()
    };
    let fld = |class: &str, name: &str| -> String {
        let mut cur = Some(class.to_string());
        while let Some(cn) = cur {
            if let Some(new) = map.fields.get(&(cn.clone(), name.to_string())) {
                return new.clone();
            }
            if apk.class(&cn).map(|c| c.field(name).is_some()).unwrap_or(false) {
                return name.to_string();
            }
            cur = index.class_id(&cn).and_then(|id| index.class(id).superclass.clone());
        }
        name.to_string()
    };

    let rw_value = |v: &Value| -> Value {
        match v {
            Value::Const(Const::Class(c)) => Value::Const(Const::Class(cls(c))),
            other => other.clone(),
        }
    };
    let rw_place = |p: &Place| -> Place {
        match p {
            Place::InstanceField { base, field } => Place::InstanceField {
                base: *base,
                field: crate::values::FieldRef {
                    class: cls(&field.class),
                    name: fld(&field.class, &field.name),
                    ty: ty(&field.ty),
                },
            },
            Place::StaticField(field) => Place::StaticField(crate::values::FieldRef {
                class: cls(&field.class),
                name: fld(&field.class, &field.name),
                ty: ty(&field.ty),
            }),
            Place::ArrayElem { base, index } => {
                Place::ArrayElem { base: *base, index: rw_value(index) }
            }
            Place::Local(l) => Place::Local(*l),
        }
    };
    let rw_call = |c: &crate::stmt::Call| -> crate::stmt::Call {
        crate::stmt::Call {
            kind: c.kind,
            callee: crate::values::MethodRef {
                class: cls(&c.callee.class),
                name: meth(&c.callee.class, &c.callee.name, c.callee.params.len()),
                params: c.callee.params.iter().map(&ty).collect(),
                ret: ty(&c.callee.ret),
            },
            receiver: c.receiver.as_ref().map(&rw_value),
            args: c.args.iter().map(&rw_value).collect(),
        }
    };
    let rw_expr = |e: &Expr| -> Expr {
        match e {
            Expr::Use(v) => Expr::Use(rw_value(v)),
            Expr::Load(p) => Expr::Load(rw_place(p)),
            Expr::Un(o, v) => Expr::Un(*o, rw_value(v)),
            Expr::Bin(o, a, b) => Expr::Bin(*o, rw_value(a), rw_value(b)),
            Expr::New(c) => Expr::New(cls(c)),
            Expr::NewArray(t, n) => Expr::NewArray(ty(t), rw_value(n)),
            Expr::Cast(t, v) => Expr::Cast(ty(t), rw_value(v)),
            Expr::InstanceOf(c, v) => Expr::InstanceOf(cls(c), rw_value(v)),
            Expr::Invoke(c) => Expr::Invoke(rw_call(c)),
        }
    };
    let rw_stmt = |s: &Stmt| -> Stmt {
        match s {
            Stmt::Assign { place, expr } => {
                Stmt::Assign { place: rw_place(place), expr: rw_expr(expr) }
            }
            Stmt::Invoke(c) => Stmt::Invoke(rw_call(c)),
            Stmt::If { cond, target } => Stmt::If {
                cond: crate::stmt::Cond {
                    op: cond.op,
                    lhs: rw_value(&cond.lhs),
                    rhs: rw_value(&cond.rhs),
                },
                target: *target,
            },
            Stmt::Switch { scrutinee, arms, default } => Stmt::Switch {
                scrutinee: rw_value(scrutinee),
                arms: arms.clone(),
                default: *default,
            },
            Stmt::Return(v) => Stmt::Return(v.as_ref().map(&rw_value)),
            Stmt::Throw(v) => Stmt::Throw(rw_value(v)),
            other => other.clone(),
        }
    };

    let mut out = apk.clone();
    out.manifest.activities = out.manifest.activities.iter().map(|a| cls(a)).collect();
    out.manifest.services = out.manifest.services.iter().map(|a| cls(a)).collect();
    out.manifest.receivers = out.manifest.receivers.iter().map(|a| cls(a)).collect();
    for c in &mut out.classes {
        let orig_name = c.name.clone();
        c.name = cls(&orig_name);
        c.superclass = c.superclass.as_deref().map(&cls);
        c.interfaces = c.interfaces.iter().map(|i| cls(i)).collect();
        for f in &mut c.fields {
            f.name = fld(&orig_name, &f.name);
            f.ty = ty(&f.ty);
        }
        for m in &mut c.methods {
            m.name = meth(&orig_name, &m.name, m.params.len());
            m.params = m.params.iter().map(&ty).collect();
            m.ret = ty(&m.ret);
            for (i, l) in m.locals.iter_mut().enumerate() {
                l.name = short_name(i);
                l.ty = ty(&l.ty);
            }
            m.body = m.body.iter().map(&rw_stmt).collect();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ApkBuilder;
    use crate::validate::validate_apk;

    fn sample() -> Apk {
        let mut b = ApkBuilder::new("obf", "com.o");
        b.activity("com.o.Main");
        // Platform stub: AsyncTask with doInBackground.
        b.class("android.os.AsyncTask", |c| {
            c.stub_method("doInBackground", vec![Type::obj_root()], Type::obj_root());
            c.stub_method("execute", vec![Type::obj_root()], Type::Void);
        });
        b.class("com.o.Task", |c| {
            c.extends("android.os.AsyncTask");
            let f = c.field("mUrl", Type::string());
            c.method("doInBackground", vec![Type::obj_root()], Type::obj_root(), |m| {
                let this = m.recv("com.o.Task");
                let u = m.temp(Type::string());
                m.get_field(u, this, &f);
                m.ret(u);
            });
            c.method("helper", vec![], Type::Void, |m| {
                let this = m.recv("com.o.Task");
                m.vcall_void(this, "com.o.Task", "helper2", vec![]);
                m.ret_void();
            });
            c.method("helper2", vec![], Type::Void, |m| {
                m.recv("com.o.Task");
                m.ret_void();
            });
        });
        b.class("com.o.SubTask", |c| {
            c.extends("com.o.Task");
            c.method("helper", vec![], Type::Void, |m| {
                m.recv("com.o.SubTask");
                m.ret_void();
            });
        });
        b.build()
    }

    #[test]
    fn renames_app_classes_but_keeps_platform_overrides() {
        let apk = sample();
        let (obf, map) = obfuscate(&apk, &ObfuscationOptions::default());
        assert!(validate_apk(&obf).is_empty());
        // App classes renamed; platform kept.
        assert!(map.classes.contains_key("com.o.Task"));
        assert!(map.classes.contains_key("com.o.SubTask"));
        assert!(!map.classes.contains_key("android.os.AsyncTask"));
        let task_new = &map.classes["com.o.Task"];
        let task = obf.class(task_new).expect("renamed class present");
        // doInBackground overrides the platform method: name kept.
        assert!(task.method("doInBackground", 1).is_some());
        // helper renamed; field renamed.
        assert!(task.method("helper", 0).is_none());
        assert!(task.field("mUrl").is_none());
        // Manifest rewritten (activity not present here but services empty).
        assert_eq!(obf.name, "obf");
    }

    #[test]
    fn override_groups_rename_consistently() {
        let apk = sample();
        let (obf, map) = obfuscate(&apk, &ObfuscationOptions::default());
        let h_task = map.methods[&("com.o.Task".to_string(), "helper".to_string(), 0)].clone();
        let h_sub = map.methods[&("com.o.SubTask".to_string(), "helper".to_string(), 0)].clone();
        assert_eq!(h_task, h_sub, "overriding methods must share a name");
        // And the call site inside helper was rewritten to helper2's new name.
        let task = obf.class(&map.classes["com.o.Task"]).unwrap();
        let helper = task.method(&h_task, 0).unwrap();
        let call = helper.body.iter().find_map(|s| s.call()).unwrap();
        let h2 = &map.methods[&("com.o.Task".to_string(), "helper2".to_string(), 0)];
        assert_eq!(&call.callee.name, h2);
        assert_eq!(call.callee.class, map.classes["com.o.Task"]);
    }

    #[test]
    fn constructors_and_strings_survive() {
        let mut b = ApkBuilder::new("k", "com.k");
        b.class("com.k.A", |c| {
            c.method("m", vec![], Type::Void, |m| {
                let o = m.new_obj("com.k.A", vec![Value::str("https://keepme.com")]);
                let _ = o;
                m.ret_void();
            });
        });
        let apk = b.build();
        let (obf, map) = obfuscate(&apk, &ObfuscationOptions::default());
        let a = obf.class(&map.classes["com.k.A"]).unwrap();
        let m = a.methods.iter().find(|m| m.body.len() == 3).unwrap();
        let init = m.body[1].call().unwrap();
        assert_eq!(init.callee.name, "<init>");
        assert_eq!(init.args[0], Value::str("https://keepme.com"));
    }

    #[test]
    fn short_names_follow_proguard_sequence() {
        assert_eq!(short_name(0), "a");
        assert_eq!(short_name(25), "z");
        assert_eq!(short_name(26), "aa");
        assert_eq!(short_name(27), "ab");
        assert_eq!(short_name(26 + 26 * 26), "aaa");
    }
}
