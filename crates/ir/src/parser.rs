//! Parser for the Jimple-flavoured text format produced by
//! [`crate::printer`].
//!
//! The format exists so that example apps and regression fixtures can be
//! written and inspected as text — the same role `.jimple` files play in the
//! Soot ecosystem. `parse_apk(print_apk(apk))` reproduces `apk` exactly
//! (checked by round-trip tests and a property test in the suite).

use crate::apk::{Apk, Manifest, Resources};
use crate::class::{Class, FieldDecl, LocalDecl, Method};
use crate::stmt::{BinOp, Call, CallKind, Cond, CondOp, Expr, IdentityKind, Stmt, UnOp};
use crate::types::Type;
use crate::values::{Const, FieldRef, Local, MethodRef, Place, Value};
use std::collections::HashMap;
use std::fmt;

/// A parse error with 1-based line/column of the offending token.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Punct(&'static str),
    Eof,
}

#[derive(Debug, Clone)]
struct SpTok {
    tok: Tok,
    line: usize,
    col: usize,
}

const PUNCTS2: &[&str] = &[":=", "==", "!=", "<=", ">=", "<<", ">>"];
const PUNCTS1: &[char] = &[
    '{', '}', '(', ')', '[', ']', ';', ':', ',', '.', '=', '<', '>', '+', '-', '*', '/', '%', '&',
    '|', '^', '@',
];

fn lex(src: &str) -> PResult<Vec<SpTok>> {
    let mut toks = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    let n = chars.len();
    let err = |line: usize, col: usize, m: String| ParseError { line, col, message: m };
    while i < n {
        let c = chars[i];
        // whitespace
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // line comments
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        let (tline, tcol) = (line, col);
        // string literal
        if c == '"' {
            let mut s = String::new();
            i += 1;
            col += 1;
            loop {
                if i >= n {
                    return Err(err(tline, tcol, "unterminated string".into()));
                }
                let ch = chars[i];
                i += 1;
                col += 1;
                match ch {
                    '"' => break,
                    '\\' => {
                        if i >= n {
                            return Err(err(tline, tcol, "unterminated escape".into()));
                        }
                        let esc = chars[i];
                        i += 1;
                        col += 1;
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            '"' => '"',
                            '\\' => '\\',
                            other => {
                                return Err(err(tline, tcol, format!("bad escape `\\{other}`")))
                            }
                        });
                    }
                    '\n' => return Err(err(tline, tcol, "newline in string".into())),
                    ch => s.push(ch),
                }
            }
            toks.push(SpTok { tok: Tok::Str(s), line: tline, col: tcol });
            continue;
        }
        // number
        if c.is_ascii_digit() {
            let start = i;
            while i < n && chars[i].is_ascii_digit() {
                i += 1;
                col += 1;
            }
            let mut is_float = false;
            if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                is_float = true;
                i += 1;
                col += 1;
                while i < n && chars[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
            }
            let text: String = chars[start..i].iter().collect();
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|e| err(tline, tcol, format!("{e}")))?)
            } else {
                Tok::Int(text.parse().map_err(|e| err(tline, tcol, format!("{e}")))?)
            };
            toks.push(SpTok { tok, line: tline, col: tcol });
            continue;
        }
        // identifier (dotted; `.` only joins when followed by ident start)
        if c.is_alphabetic() || c == '_' || c == '$' {
            let mut s = String::new();
            while i < n {
                let ch = chars[i];
                if ch.is_alphanumeric() || ch == '_' || ch == '$' {
                    s.push(ch);
                    i += 1;
                    col += 1;
                } else if ch == '.'
                    && i + 1 < n
                    && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_' || chars[i + 1] == '$')
                {
                    s.push('.');
                    i += 1;
                    col += 1;
                } else {
                    break;
                }
            }
            toks.push(SpTok { tok: Tok::Ident(s), line: tline, col: tcol });
            continue;
        }
        // two-char punctuation
        if i + 1 < n {
            let pair: String = chars[i..i + 2].iter().collect();
            if let Some(p) = PUNCTS2.iter().find(|p| **p == pair) {
                toks.push(SpTok { tok: Tok::Punct(p), line: tline, col: tcol });
                i += 2;
                col += 2;
                continue;
            }
        }
        // single-char punctuation
        if PUNCTS1.contains(&c) {
            let p: &'static str = match c {
                '{' => "{",
                '}' => "}",
                '(' => "(",
                ')' => ")",
                '[' => "[",
                ']' => "]",
                ';' => ";",
                ':' => ":",
                ',' => ",",
                '.' => ".",
                '=' => "=",
                '<' => "<",
                '>' => ">",
                '+' => "+",
                '-' => "-",
                '*' => "*",
                '/' => "/",
                '%' => "%",
                '&' => "&",
                '|' => "|",
                '^' => "^",
                '@' => "@",
                _ => unreachable!(),
            };
            toks.push(SpTok { tok: Tok::Punct(p), line: tline, col: tcol });
            i += 1;
            col += 1;
            continue;
        }
        return Err(err(line, col, format!("unexpected character `{c}`")));
    }
    toks.push(SpTok { tok: Tok::Eof, line, col });
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<SpTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn here(&self) -> (usize, usize) {
        let t = &self.toks[self.pos];
        (t.line, t.col)
    }

    fn err<T>(&self, m: impl Into<String>) -> PResult<T> {
        let (line, col) = self.here();
        Err(ParseError { line, col, message: m.into() })
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> PResult<()> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{p}`, found {other:?}")),
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Tok::Punct(q) if *q == p)
    }

    fn eat_kw(&mut self, kw: &str) -> PResult<()> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected keyword `{kw}`, found {other:?}")),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn string(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Tok::Str(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected string literal, found {other:?}")),
        }
    }

    // ---- types and refs ----------------------------------------------------

    fn ty(&mut self) -> PResult<Type> {
        let base = self.ident()?;
        let mut t = Type::parse(&base).or_else(|e| self.err::<Type>(e).map(|_| Type::Void))?;
        while self.at_punct("[") && matches!(self.peek2(), Tok::Punct("]")) {
            self.bump();
            self.bump();
            t = t.array_of();
        }
        Ok(t)
    }

    /// Parses a method name: a plain identifier or `<init>` / `<clinit>`.
    fn member_name(&mut self) -> PResult<String> {
        if self.at_punct("<") {
            self.bump();
            let n = self.ident()?;
            if n != "init" && n != "clinit" {
                return self.err(format!("expected init/clinit in angle name, found `{n}`"));
            }
            self.eat_punct(">")?;
            Ok(format!("<{n}>"))
        } else {
            self.ident()
        }
    }

    /// Parses `<class: ty name>` (field ref) or `<class: ty name(params)>`
    /// (method ref), distinguishing by the trailing `(`.
    fn member_ref(&mut self) -> PResult<MemberRef> {
        self.eat_punct("<")?;
        let class = self.ident()?;
        self.eat_punct(":")?;
        let ty = self.ty()?;
        let name = self.member_name()?;
        if self.at_punct("(") {
            self.bump();
            let mut params = Vec::new();
            if !self.at_punct(")") {
                loop {
                    params.push(self.ty()?);
                    if self.at_punct(",") {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.eat_punct(")")?;
            self.eat_punct(">")?;
            Ok(MemberRef::Method(MethodRef { class, name, params, ret: ty }))
        } else {
            self.eat_punct(">")?;
            Ok(MemberRef::Field(FieldRef { class, name, ty }))
        }
    }
}

enum MemberRef {
    Field(FieldRef),
    Method(MethodRef),
}

// ---------------------------------------------------------------------------
// Top-level grammar
// ---------------------------------------------------------------------------

/// Parses a complete APK from text.
pub fn parse_apk(src: &str) -> PResult<Apk> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.eat_kw("apk")?;
    let name = p.string()?;
    p.eat_kw("package")?;
    let package = p.ident()?;
    p.eat_punct("{")?;
    let mut apk = Apk {
        name,
        manifest: Manifest { package, ..Manifest::default() },
        resources: Resources::new(),
        classes: Vec::new(),
    };
    loop {
        if p.at_punct("}") {
            p.bump();
            break;
        }
        if p.at_kw("resource") {
            p.bump();
            let k = p.string()?;
            p.eat_punct("=")?;
            let v = p.string()?;
            p.eat_punct(";")?;
            apk.resources.put_string(&k, &v);
        } else if p.at_kw("activity") {
            p.bump();
            let c = p.ident()?;
            p.eat_punct(";")?;
            apk.manifest.activities.push(c);
        } else if p.at_kw("service") {
            p.bump();
            let c = p.ident()?;
            p.eat_punct(";")?;
            apk.manifest.services.push(c);
        } else if p.at_kw("receiver") {
            p.bump();
            let c = p.ident()?;
            p.eat_punct(";")?;
            apk.manifest.receivers.push(c);
        } else if p.at_kw("permission") {
            p.bump();
            let c = p.ident()?;
            p.eat_punct(";")?;
            apk.manifest.permissions.push(c);
        } else if p.at_kw("class") || p.at_kw("interface") {
            apk.classes.push(parse_class(&mut p)?);
        } else {
            return p.err(format!("unexpected token at APK level: {:?}", p.peek()));
        }
    }
    Ok(apk)
}

fn parse_class(p: &mut Parser) -> PResult<Class> {
    let is_interface = p.at_kw("interface");
    p.bump();
    let name = p.ident()?;
    let mut superclass = None;
    let mut interfaces = Vec::new();
    if p.at_kw("extends") {
        p.bump();
        superclass = Some(p.ident()?);
    }
    if p.at_kw("implements") {
        p.bump();
        loop {
            interfaces.push(p.ident()?);
            if p.at_punct(",") {
                p.bump();
            } else {
                break;
            }
        }
    }
    p.eat_punct("{")?;
    let mut class = Class {
        name,
        superclass,
        interfaces,
        fields: Vec::new(),
        methods: Vec::new(),
        is_interface,
        is_library: false,
    };
    loop {
        if p.at_punct("}") {
            p.bump();
            break;
        }
        if p.at_kw("library") {
            p.bump();
            p.eat_punct(";")?;
            class.is_library = true;
        } else if p.at_kw("field") {
            p.bump();
            let ty = p.ty()?;
            let fname = p.ident()?;
            p.eat_punct(";")?;
            class.fields.push(FieldDecl { name: fname, ty, is_static: false });
        } else if p.at_kw("static") && matches!(p.peek2(), Tok::Ident(s) if s == "field") {
            p.bump();
            p.bump();
            let ty = p.ty()?;
            let fname = p.ident()?;
            p.eat_punct(";")?;
            class.fields.push(FieldDecl { name: fname, ty, is_static: true });
        } else if p.at_kw("method") || p.at_kw("static") || p.at_kw("stub") {
            class.methods.push(parse_method(p)?);
        } else {
            return p.err(format!("unexpected token in class body: {:?}", p.peek()));
        }
    }
    Ok(class)
}

fn parse_method(p: &mut Parser) -> PResult<Method> {
    let is_stub = p.at_kw("stub");
    if is_stub {
        p.bump();
    }
    let is_static = p.at_kw("static");
    if is_static {
        p.bump();
    }
    p.eat_kw("method")?;
    let ret = p.ty()?;
    let name = p.member_name()?;
    p.eat_punct("(")?;
    let mut params = Vec::new();
    if !p.at_punct(")") {
        loop {
            params.push(p.ty()?);
            if p.at_punct(",") {
                p.bump();
            } else {
                break;
            }
        }
    }
    p.eat_punct(")")?;
    if is_stub {
        p.eat_punct(";")?;
        return Ok(Method {
            name,
            params,
            ret,
            is_static,
            has_body: false,
            locals: Vec::new(),
            body: Vec::new(),
        });
    }
    p.eat_punct("{")?;
    // locals block
    let mut locals = Vec::new();
    let mut local_ids: HashMap<String, Local> = HashMap::new();
    if p.at_kw("locals") {
        p.bump();
        p.eat_punct("{")?;
        while !p.at_punct("}") {
            let lname = p.ident()?;
            p.eat_punct(":")?;
            let lty = p.ty()?;
            p.eat_punct(";")?;
            let id = Local(locals.len() as u32);
            local_ids.insert(lname.clone(), id);
            locals.push(LocalDecl { name: lname, ty: lty });
        }
        p.bump(); // }
    }
    // statements with labels
    let mut stmts: Vec<RawParsed> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    loop {
        if p.at_punct("}") {
            p.bump();
            break;
        }
        if p.at_kw("label") {
            p.bump();
            let l = p.ident()?;
            p.eat_punct(":")?;
            labels.insert(l, stmts.len());
            continue;
        }
        stmts.push(parse_stmt(p, &local_ids)?);
        p.eat_punct(";")?;
    }
    // resolve labels
    let resolve = |l: &str, p: &Parser| -> PResult<usize> {
        labels.get(l).copied().ok_or_else(|| {
            let (line, col) = p.here();
            ParseError { line, col, message: format!("undefined label `{l}`") }
        })
    };
    let mut body = Vec::with_capacity(stmts.len());
    for rs in stmts {
        body.push(match rs {
            RawParsed::Plain(s) => s,
            RawParsed::If(cond, l) => Stmt::If { cond, target: resolve(&l, p)? },
            RawParsed::Goto(l) => Stmt::Goto { target: resolve(&l, p)? },
            RawParsed::Switch(v, arms, d) => Stmt::Switch {
                scrutinee: v,
                arms: arms
                    .into_iter()
                    .map(|(k, l)| resolve(&l, p).map(|t| (k, t)))
                    .collect::<PResult<Vec<_>>>()?,
                default: resolve(&d, p)?,
            },
        });
    }
    Ok(Method { name, params, ret, is_static, has_body: true, locals, body })
}

enum RawParsed {
    Plain(Stmt),
    If(Cond, String),
    Goto(String),
    Switch(Value, Vec<(i64, String)>, String),
}

fn parse_stmt(p: &mut Parser, locals: &HashMap<String, Local>) -> PResult<RawParsed> {
    // control flow and keyword statements
    if p.at_kw("return") {
        p.bump();
        if p.at_punct(";") {
            return Ok(RawParsed::Plain(Stmt::Return(None)));
        }
        let v = parse_value(p, locals)?;
        return Ok(RawParsed::Plain(Stmt::Return(Some(v))));
    }
    if p.at_kw("goto") {
        p.bump();
        let l = p.ident()?;
        return Ok(RawParsed::Goto(l));
    }
    if p.at_kw("nop") {
        p.bump();
        return Ok(RawParsed::Plain(Stmt::Nop));
    }
    if p.at_kw("throw") {
        p.bump();
        let v = parse_value(p, locals)?;
        return Ok(RawParsed::Plain(Stmt::Throw(v)));
    }
    if p.at_kw("if") {
        p.bump();
        let lhs = parse_value(p, locals)?;
        let op = parse_cond_op(p)?;
        let rhs = parse_value(p, locals)?;
        p.eat_kw("goto")?;
        let l = p.ident()?;
        return Ok(RawParsed::If(Cond { op, lhs, rhs }, l));
    }
    if p.at_kw("switch") {
        p.bump();
        let v = parse_value(p, locals)?;
        p.eat_punct("{")?;
        let mut arms = Vec::new();
        let mut default = None;
        loop {
            if p.at_punct("}") {
                p.bump();
                break;
            }
            if p.at_kw("case") {
                p.bump();
                let k = match p.bump() {
                    Tok::Int(i) => i,
                    Tok::Punct("-") => match p.bump() {
                        Tok::Int(i) => -i,
                        other => return p.err(format!("expected int after -, found {other:?}")),
                    },
                    other => return p.err(format!("expected case value, found {other:?}")),
                };
                p.eat_punct(":")?;
                let l = p.ident()?;
                p.eat_punct(";")?;
                arms.push((k, l));
            } else if p.at_kw("default") {
                p.bump();
                p.eat_punct(":")?;
                let l = p.ident()?;
                p.eat_punct(";")?;
                default = Some(l);
            } else {
                return p.err(format!("unexpected token in switch: {:?}", p.peek()));
            }
        }
        let d = match default {
            Some(d) => d,
            None => return p.err("switch without default"),
        };
        return Ok(RawParsed::Switch(v, arms, d));
    }
    // bare invokes
    if let Some(kind) = peek_invoke_kind(p) {
        let call = parse_call(p, locals, kind)?;
        return Ok(RawParsed::Plain(Stmt::Invoke(call)));
    }
    // static-field store: `<C: T f> = expr`
    if p.at_punct("<") {
        let mref = p.member_ref()?;
        let field = match mref {
            MemberRef::Field(f) => f,
            MemberRef::Method(_) => return p.err("method ref cannot be assigned"),
        };
        p.eat_punct("=")?;
        let expr = parse_expr(p, locals)?;
        return Ok(RawParsed::Plain(Stmt::Assign { place: Place::StaticField(field), expr }));
    }
    // identity / assignment, starting with a local name
    let lname = p.ident()?;
    let local = |p: &Parser, n: &str| -> PResult<Local> {
        locals.get(n).copied().ok_or_else(|| {
            let (line, col) = p.here();
            ParseError { line, col, message: format!("undeclared local `{n}`") }
        })
    };
    if p.at_punct(":=") {
        p.bump();
        p.eat_punct("@")?;
        let which = p.ident()?;
        let kind = if which == "this" {
            IdentityKind::This
        } else if which == "caughtexception" {
            IdentityKind::CaughtException
        } else if let Some(num) = which.strip_prefix("param") {
            IdentityKind::Param(num.parse().map_err(|_| {
                let (line, col) = p.here();
                ParseError { line, col, message: format!("bad param index `{which}`") }
            })?)
        } else {
            return p.err(format!("unknown identity source `@{which}`"));
        };
        let l = local(p, &lname)?;
        return Ok(RawParsed::Plain(Stmt::Identity { local: l, kind }));
    }
    // place: local | local.<field> | local[idx]
    let place = if p.at_punct(".") && matches!(p.peek2(), Tok::Punct("<")) {
        p.bump(); // .
        match p.member_ref()? {
            MemberRef::Field(f) => Place::InstanceField { base: local(p, &lname)?, field: f },
            MemberRef::Method(_) => return p.err("expected field ref after `.`"),
        }
    } else if p.at_punct("[") {
        p.bump();
        let idx = parse_value(p, locals)?;
        p.eat_punct("]")?;
        Place::ArrayElem { base: local(p, &lname)?, index: idx }
    } else {
        Place::Local(local(p, &lname)?)
    };
    p.eat_punct("=")?;
    let expr = parse_expr(p, locals)?;
    Ok(RawParsed::Plain(Stmt::Assign { place, expr }))
}

fn peek_invoke_kind(p: &Parser) -> Option<CallKind> {
    match p.peek() {
        Tok::Ident(s) => match s.as_str() {
            "virtualinvoke" => Some(CallKind::Virtual),
            "interfaceinvoke" => Some(CallKind::Interface),
            "staticinvoke" => Some(CallKind::Static),
            "specialinvoke" => Some(CallKind::Special),
            _ => None,
        },
        _ => None,
    }
}

fn parse_call(p: &mut Parser, locals: &HashMap<String, Local>, kind: CallKind) -> PResult<Call> {
    p.bump(); // the invoke keyword
    let receiver = if kind == CallKind::Static {
        None
    } else {
        let v = parse_value(p, locals)?;
        p.eat_punct(".")?;
        Some(v)
    };
    let callee = match p.member_ref()? {
        MemberRef::Method(m) => m,
        MemberRef::Field(_) => return p.err("expected method ref in invoke"),
    };
    p.eat_punct("(")?;
    let mut args = Vec::new();
    if !p.at_punct(")") {
        loop {
            args.push(parse_value(p, locals)?);
            if p.at_punct(",") {
                p.bump();
            } else {
                break;
            }
        }
    }
    p.eat_punct(")")?;
    Ok(Call { kind, callee, receiver, args })
}

fn parse_cond_op(p: &mut Parser) -> PResult<CondOp> {
    let op = match p.peek() {
        Tok::Punct("==") => CondOp::Eq,
        Tok::Punct("!=") => CondOp::Ne,
        Tok::Punct("<=") => CondOp::Le,
        Tok::Punct(">=") => CondOp::Ge,
        Tok::Punct("<") => CondOp::Lt,
        Tok::Punct(">") => CondOp::Gt,
        other => return p.err(format!("expected comparison operator, found {other:?}")),
    };
    p.bump();
    Ok(op)
}

fn parse_bin_op(p: &mut Parser) -> Option<BinOp> {
    let op = match p.peek() {
        Tok::Punct("+") => BinOp::Add,
        Tok::Punct("-") => BinOp::Sub,
        Tok::Punct("*") => BinOp::Mul,
        Tok::Punct("/") => BinOp::Div,
        Tok::Punct("%") => BinOp::Rem,
        Tok::Punct("&") => BinOp::And,
        Tok::Punct("|") => BinOp::Or,
        Tok::Punct("^") => BinOp::Xor,
        Tok::Punct("<<") => BinOp::Shl,
        Tok::Punct(">>") => BinOp::Shr,
        Tok::Ident(s) if s == "cmp" => BinOp::Cmp,
        _ => return None,
    };
    Some(op)
}

fn parse_expr(p: &mut Parser, locals: &HashMap<String, Local>) -> PResult<Expr> {
    // keyword-led expressions
    if p.at_kw("new") && !matches!(p.peek2(), Tok::Punct(":")) {
        p.bump();
        let c = p.ident()?;
        return Ok(Expr::New(c));
    }
    if p.at_kw("newarray") {
        p.bump();
        let t = p.ty()?;
        // printed as `newarray T[len]`; the `[` here is the length bracket
        p.eat_punct("[")?;
        let len = parse_value(p, locals)?;
        p.eat_punct("]")?;
        return Ok(Expr::NewArray(t, len));
    }
    if p.at_kw("lengthof") {
        p.bump();
        return Ok(Expr::Un(UnOp::Len, parse_value(p, locals)?));
    }
    if p.at_kw("neg") {
        p.bump();
        return Ok(Expr::Un(UnOp::Neg, parse_value(p, locals)?));
    }
    if p.at_kw("not") {
        p.bump();
        return Ok(Expr::Un(UnOp::Not, parse_value(p, locals)?));
    }
    if p.at_punct("(") {
        // cast: `(T) v`
        p.bump();
        let t = p.ty()?;
        p.eat_punct(")")?;
        let v = parse_value(p, locals)?;
        return Ok(Expr::Cast(t, v));
    }
    if let Some(kind) = peek_invoke_kind(p) {
        return Ok(Expr::Invoke(parse_call(p, locals, kind)?));
    }
    // static field load
    if p.at_punct("<") {
        match p.member_ref()? {
            MemberRef::Field(f) => return Ok(Expr::Load(Place::StaticField(f))),
            MemberRef::Method(_) => return p.err("unexpected method ref in expression"),
        }
    }
    // value-led: value | value binop value | value instanceof C |
    // local.<field> | local[idx]
    // Distinguish loads from plain idents before consuming the value.
    if let Tok::Ident(name) = p.peek().clone() {
        if locals.contains_key(&name) {
            if matches!(p.peek2(), Tok::Punct(".")) {
                // might be `local.<field>` — look one further (a `<`)
                let save = p.pos;
                p.bump(); // ident
                p.bump(); // .
                if p.at_punct("<") {
                    match p.member_ref()? {
                        MemberRef::Field(f) => {
                            let base = locals[&name];
                            return Ok(Expr::Load(Place::InstanceField { base, field: f }));
                        }
                        MemberRef::Method(_) => {
                            return p.err("unexpected method ref in field load")
                        }
                    }
                }
                p.pos = save;
            } else if matches!(p.peek2(), Tok::Punct("[")) {
                p.bump(); // ident
                p.bump(); // [
                let idx = parse_value(p, locals)?;
                p.eat_punct("]")?;
                let base = locals[&name];
                return Ok(Expr::Load(Place::ArrayElem { base, index: idx }));
            }
        }
    }
    let v = parse_value(p, locals)?;
    if p.at_kw("instanceof") {
        p.bump();
        let c = p.ident()?;
        return Ok(Expr::InstanceOf(c, v));
    }
    if let Some(op) = parse_bin_op(p) {
        p.bump();
        let rhs = parse_value(p, locals)?;
        return Ok(Expr::Bin(op, v, rhs));
    }
    Ok(Expr::Use(v))
}

fn parse_value(p: &mut Parser, locals: &HashMap<String, Local>) -> PResult<Value> {
    match p.peek().clone() {
        Tok::Str(s) => {
            p.bump();
            Ok(Value::Const(Const::Str(s)))
        }
        Tok::Int(i) => {
            p.bump();
            Ok(Value::Const(Const::Int(i)))
        }
        Tok::Float(f) => {
            p.bump();
            Ok(Value::Const(Const::Float(f)))
        }
        Tok::Punct("-") => {
            p.bump();
            match p.bump() {
                Tok::Int(i) => Ok(Value::Const(Const::Int(-i))),
                Tok::Float(f) => Ok(Value::Const(Const::Float(-f))),
                other => p.err(format!("expected number after `-`, found {other:?}")),
            }
        }
        Tok::Punct("@") => {
            p.bump();
            p.eat_kw("resource")?;
            p.eat_punct("(")?;
            let k = p.string()?;
            p.eat_punct(")")?;
            Ok(Value::Resource(k))
        }
        Tok::Ident(s) => match s.as_str() {
            "null" => {
                p.bump();
                Ok(Value::Const(Const::Null))
            }
            "true" => {
                p.bump();
                Ok(Value::Const(Const::Bool(true)))
            }
            "false" => {
                p.bump();
                Ok(Value::Const(Const::Bool(false)))
            }
            "class" => {
                p.bump();
                let c = p.ident()?;
                Ok(Value::Const(Const::Class(c)))
            }
            name => {
                if let Some(l) = locals.get(name) {
                    p.bump();
                    Ok(Value::Local(*l))
                } else {
                    p.err(format!("undeclared local `{name}`"))
                }
            }
        },
        other => p.err(format!("expected value, found {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ApkBuilder;
    use crate::printer::print_apk;
    use crate::stmt::CondOp;

    #[test]
    fn parses_minimal_apk() {
        let src = r#"
            apk "demo" package com.d {
              resource "k" = "v";
              activity com.d.Main;
              class com.d.Main extends android.app.Activity {
                field java.lang.String mUrl;
                method void go(int) {
                  locals { this: com.d.Main; n: int; s: java.lang.String; }
                  this := @this;
                  n := @param0;
                  s = "http://x/";
                  this.<com.d.Main: java.lang.String mUrl> = s;
                  if n == 0 goto end;
                  s = @resource("k");
                  label end:
                  return;
                }
                stub method void stubby(java.lang.String);
              }
            }
        "#;
        let apk = parse_apk(src).unwrap();
        assert_eq!(apk.name, "demo");
        assert_eq!(apk.resources.string("k"), Some("v"));
        let c = apk.class("com.d.Main").unwrap();
        assert_eq!(c.superclass.as_deref(), Some("android.app.Activity"));
        let m = c.method("go", 1).unwrap();
        assert_eq!(m.body.len(), 7);
        match &m.body[4] {
            Stmt::If { cond, target } => {
                assert_eq!(cond.op, CondOp::Eq);
                assert_eq!(*target, 6);
            }
            other => panic!("expected if, got {other:?}"),
        }
        assert!(!c.method("stubby", 1).unwrap().has_body);
    }

    #[test]
    fn parses_invokes_and_member_refs() {
        let src = r#"
            apk "a" package p {
              class p.C {
                method java.lang.String run() {
                  locals { sb: java.lang.StringBuilder; s: java.lang.String; }
                  sb = new java.lang.StringBuilder;
                  specialinvoke sb.<java.lang.StringBuilder: void <init>(java.lang.String)>("x");
                  s = virtualinvoke sb.<java.lang.StringBuilder: java.lang.String toString()>();
                  staticinvoke <p.C: void log(java.lang.String)>(s);
                  return s;
                }
              }
            }
        "#;
        let apk = parse_apk(src).unwrap();
        let m = apk.class("p.C").unwrap().method("run", 0).unwrap();
        let init = m.body[1].call().unwrap();
        assert_eq!(init.callee.name, "<init>");
        assert_eq!(init.kind, CallKind::Special);
        let log = m.body[3].call().unwrap();
        assert_eq!(log.kind, CallKind::Static);
        assert!(log.receiver.is_none());
    }

    #[test]
    fn round_trips_printer_output() {
        let mut b = ApkBuilder::new("rt", "com.r");
        b.resource("base", "https://api.r.com");
        b.activity("com.r.Main");
        b.permission("android.permission.INTERNET");
        b.class("com.r.Main", |c| {
            c.extends("android.app.Activity");
            c.implements("java.lang.Runnable");
            let f = c.field("mUrl", Type::string());
            let sf = c.static_field("COUNT", Type::Int);
            c.method("go", vec![Type::Int, Type::string()], Type::string(), |m| {
                let this = m.recv("com.r.Main");
                let n = m.arg(0, "n");
                let q = m.arg(1, "q");
                let s = m.temp(Type::string());
                m.cres(s, "base");
                m.put_field(this, &f, s);
                m.put_static(&sf, n);
                let arr = m.temp(Type::string().array_of());
                m.new_array(arr, Type::string(), Value::int(2));
                m.store_elem(arr, Value::int(0), q);
                let e = m.temp(Type::string());
                m.load_elem(e, arr, Value::int(0));
                m.iff(CondOp::Ne, e, Value::null(), "t");
                m.switch(n, vec![(1, "t"), (2, "u")], "t");
                m.label("u");
                let sb = m.new_obj("java.lang.StringBuilder", vec![]);
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("x")]);
                m.label("t");
                m.ret(e);
            });
            c.stub_method("cb", vec![Type::obj_root()], Type::Void);
        });
        let apk = b.build();
        let txt = print_apk(&apk);
        let reparsed = parse_apk(&txt).unwrap_or_else(|e| panic!("reparse failed: {e}\n{txt}"));
        assert_eq!(apk, reparsed, "round trip mismatch:\n{txt}");
    }

    #[test]
    fn error_reports_position() {
        let err = parse_apk("apk \"x\" package p {\n  bogus;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unexpected token"));
    }
}
