//! Structural well-formedness checks for IR, used throughout the test
//! suites to catch malformed corpus apps early.

use crate::apk::Apk;
use crate::class::{Class, Method};
use crate::stmt::{Expr, IdentityKind, Stmt};
use crate::values::{FieldRef, Local, Place, Value};
use std::collections::HashMap;
use std::fmt;

/// A single well-formedness violation.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationError {
    /// `class.method` context.
    pub context: String,
    /// Statement index, when the error is statement-local.
    pub stmt: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.stmt {
            Some(i) => write!(f, "{} @{}: {}", self.context, i, self.message),
            None => write!(f, "{}: {}", self.context, self.message),
        }
    }
}

/// Validates every class and method of an APK; returns all violations.
pub fn validate_apk(apk: &Apk) -> Vec<ValidationError> {
    let mut errs = Vec::new();
    for c in &apk.classes {
        for m in &c.methods {
            validate_method(&format!("{}.{}", c.name, m.name), m, &mut errs);
        }
    }
    validate_heap_shape(apk, &mut errs);
    errs
}

/// Platform/library namespaces an app references without bundling. A `new`
/// of (or a field on) a class under these prefixes is legal even when the
/// APK declares no such class — the runtime provides it.
const PLATFORM_PREFIXES: &[&str] = &[
    "java.",
    "javax.",
    "android.",
    "androidx.",
    "dalvik.",
    "kotlin.",
    "org.apache.",
    "org.json.",
    "org.w3c.",
    "org.xml.",
    "com.android.",
];

fn is_platform_class(name: &str) -> bool {
    PLATFORM_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Whole-program heap-shape checks: every allocated class must be declared
/// in the APK or belong to a platform namespace, and every field access on
/// a declared class must name a field that exists somewhere on its
/// superclass chain. Catches typo'd corpus apps and obfuscator-mangled
/// field references before an analysis silently resolves them to nothing.
fn validate_heap_shape(apk: &Apk, errs: &mut Vec<ValidationError>) {
    let classes: HashMap<&str, &Class> = apk.classes.iter().map(|c| (c.name.as_str(), c)).collect();
    // A field reference is fine when: the declaring class is undeclared
    // platform/library surface, or some class on the (declared part of
    // the) superclass chain declares the field, or the chain escapes into
    // undeclared territory where the field may live.
    let field_ok = |fr: &FieldRef| -> bool {
        let mut cur: &str = &fr.class;
        loop {
            let Some(c) = classes.get(cur) else {
                // The chain left the declared program. `java.lang.Object`
                // declares no fields, so reaching it means the field does
                // not exist; any other undeclared class (a platform
                // superclass like `android.app.Activity`, or an undeclared
                // library type) may hold the field, so accept — except an
                // undeclared *declaring* class outside the platform
                // namespaces, which is a dangling reference.
                if cur == "java.lang.Object" {
                    return false;
                }
                return cur != fr.class || is_platform_class(cur);
            };
            if c.fields.iter().any(|f| f.name == fr.name) {
                return true;
            }
            match c.superclass.as_deref() {
                Some(s) => cur = s,
                None => return false,
            }
        }
    };
    let check_field = |ctx: &str, i: usize, fr: &FieldRef, errs: &mut Vec<ValidationError>| {
        if !field_ok(fr) {
            errs.push(ValidationError {
                context: ctx.to_string(),
                stmt: Some(i),
                message: format!("field {}.{} is not declared", fr.class, fr.name),
            });
        }
    };
    for c in &apk.classes {
        for m in &c.methods {
            let ctx = format!("{}.{}", c.name, m.name);
            for (i, s) in m.body.iter().enumerate() {
                if let Stmt::Assign { place, expr } = s {
                    if let Expr::New(class) = expr {
                        if !classes.contains_key(class.as_str()) && !is_platform_class(class) {
                            errs.push(ValidationError {
                                context: ctx.clone(),
                                stmt: Some(i),
                                message: format!("new of undeclared class {class}"),
                            });
                        }
                    }
                    let loaded = match expr {
                        Expr::Load(p) => Some(p),
                        _ => None,
                    };
                    for p in [Some(place), loaded].into_iter().flatten() {
                        match p {
                            Place::InstanceField { field, .. } | Place::StaticField(field) => {
                                check_field(&ctx, i, field, errs);
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }
}

fn check_local(ctx: &str, i: usize, l: Local, n: usize, errs: &mut Vec<ValidationError>) {
    if l.index() >= n {
        errs.push(ValidationError {
            context: ctx.to_string(),
            stmt: Some(i),
            message: format!("local {l} out of range (have {n} locals)"),
        });
    }
}

fn check_value(ctx: &str, i: usize, v: &Value, n: usize, errs: &mut Vec<ValidationError>) {
    if let Value::Local(l) = v {
        check_local(ctx, i, *l, n, errs);
    }
}

fn check_place(ctx: &str, i: usize, p: &Place, n: usize, errs: &mut Vec<ValidationError>) {
    match p {
        Place::Local(l) => check_local(ctx, i, *l, n, errs),
        Place::InstanceField { base, .. } => check_local(ctx, i, *base, n, errs),
        Place::StaticField(_) => {}
        Place::ArrayElem { base, index } => {
            check_local(ctx, i, *base, n, errs);
            check_value(ctx, i, index, n, errs);
        }
    }
}

/// Validates a single method.
pub fn validate_method(ctx: &str, m: &Method, errs: &mut Vec<ValidationError>) {
    if !m.has_body {
        if !m.body.is_empty() {
            errs.push(ValidationError {
                context: ctx.to_string(),
                stmt: None,
                message: "bodyless method has statements".into(),
            });
        }
        return;
    }
    let n = m.locals.len();
    let len = m.body.len();
    let mut seen_non_identity = false;
    for (i, s) in m.body.iter().enumerate() {
        for t in s.branch_targets() {
            if t >= len {
                errs.push(ValidationError {
                    context: ctx.to_string(),
                    stmt: Some(i),
                    message: format!("branch target {t} out of range (body has {len})"),
                });
            }
        }
        match s {
            Stmt::Identity { local, kind } => {
                check_local(ctx, i, *local, n, errs);
                match kind {
                    IdentityKind::This | IdentityKind::Param(_) => {
                        if seen_non_identity {
                            errs.push(ValidationError {
                                context: ctx.to_string(),
                                stmt: Some(i),
                                message: "this/param identity after non-identity statement".into(),
                            });
                        }
                        if *kind == IdentityKind::This && m.is_static {
                            errs.push(ValidationError {
                                context: ctx.to_string(),
                                stmt: Some(i),
                                message: "@this in static method".into(),
                            });
                        }
                        if let IdentityKind::Param(p) = kind {
                            if *p as usize >= m.params.len() {
                                errs.push(ValidationError {
                                    context: ctx.to_string(),
                                    stmt: Some(i),
                                    message: format!(
                                        "@param{p} out of range ({} params)",
                                        m.params.len()
                                    ),
                                });
                            }
                        }
                    }
                    IdentityKind::CaughtException => {}
                }
            }
            Stmt::Assign { place, expr } => {
                seen_non_identity = true;
                check_place(ctx, i, place, n, errs);
                for v in expr.operands() {
                    check_value(ctx, i, v, n, errs);
                }
                if let Expr::Load(p) = expr {
                    check_place(ctx, i, p, n, errs);
                }
            }
            Stmt::Invoke(c) => {
                seen_non_identity = true;
                for v in c.operands() {
                    check_value(ctx, i, v, n, errs);
                }
            }
            Stmt::If { cond, .. } => {
                seen_non_identity = true;
                check_value(ctx, i, &cond.lhs, n, errs);
                check_value(ctx, i, &cond.rhs, n, errs);
            }
            Stmt::Switch { scrutinee, .. } => {
                seen_non_identity = true;
                check_value(ctx, i, scrutinee, n, errs);
            }
            Stmt::Return(v) => {
                seen_non_identity = true;
                if let Some(v) = v {
                    check_value(ctx, i, v, n, errs);
                }
            }
            Stmt::Throw(v) => {
                seen_non_identity = true;
                check_value(ctx, i, v, n, errs);
            }
            Stmt::Goto { .. } | Stmt::Nop => {
                seen_non_identity = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ApkBuilder;
    use crate::types::Type;

    #[test]
    fn clean_apk_validates() {
        let mut b = ApkBuilder::new("v", "com.v");
        b.class("com.v.A", |c| {
            c.method("m", vec![Type::Int], Type::Void, |m| {
                let this = m.recv("com.v.A");
                let p = m.arg(0, "p");
                let _ = (this, p);
                m.ret_void();
            });
        });
        assert!(validate_apk(&b.build()).is_empty());
    }

    #[test]
    fn catches_out_of_range_local_and_target() {
        let m = Method {
            name: "bad".into(),
            params: vec![],
            ret: Type::Void,
            is_static: true,
            has_body: true,
            locals: vec![],
            body: vec![Stmt::Goto { target: 99 }, Stmt::Return(Some(Value::Local(Local(5))))],
        };
        let mut errs = Vec::new();
        validate_method("t.bad", &m, &mut errs);
        assert_eq!(errs.len(), 2);
        assert!(errs[0].message.contains("out of range"));
    }

    #[test]
    fn catches_new_of_undeclared_class() {
        let mut b = ApkBuilder::new("v", "com.v");
        b.class("com.v.A", |c| {
            c.method("m", vec![], Type::Void, |m| {
                m.recv("com.v.A");
                // Platform allocation with no declaration: fine.
                let s = m.new_obj("java.lang.StringBuilder", vec![]);
                let _ = s;
                // App-namespace allocation of a class nobody declared: error.
                let g = m.new_obj("com.v.Ghost", vec![]);
                let _ = g;
                m.ret_void();
            });
        });
        let errs = validate_apk(&b.build());
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].message.contains("undeclared class com.v.Ghost"), "{}", errs[0]);
    }

    #[test]
    fn catches_undeclared_field_but_accepts_inherited() {
        let mut b = ApkBuilder::new("v", "com.v");
        b.class("com.v.Base", |c| {
            c.field("shared", Type::string());
        });
        b.class("com.v.A", |c| {
            c.extends("com.v.Base");
            let f = c.field("own", Type::Int);
            c.method("m", vec![], Type::Void, |m| {
                let this = m.recv("com.v.A");
                let x = m.temp(Type::Int);
                m.get_field(x, this, &f); // declared: fine
                let y = m.temp(Type::string());
                // Inherited from com.v.Base: fine.
                m.get_field(
                    y,
                    this,
                    &crate::values::FieldRef {
                        class: "com.v.A".into(),
                        name: "shared".into(),
                        ty: Type::string(),
                    },
                );
                let z = m.temp(Type::Int);
                // Nobody declares `phantom` anywhere on the chain: error.
                m.get_field(
                    z,
                    this,
                    &crate::values::FieldRef {
                        class: "com.v.A".into(),
                        name: "phantom".into(),
                        ty: Type::Int,
                    },
                );
                m.ret_void();
            });
        });
        let errs = validate_apk(&b.build());
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].message.contains("com.v.A.phantom"), "{}", errs[0]);
    }

    #[test]
    fn catches_this_in_static() {
        let m = Method {
            name: "s".into(),
            params: vec![],
            ret: Type::Void,
            is_static: true,
            has_body: true,
            locals: vec![crate::class::LocalDecl { name: "x".into(), ty: Type::obj_root() }],
            body: vec![Stmt::Identity { local: Local(0), kind: IdentityKind::This }],
        };
        let mut errs = Vec::new();
        validate_method("t.s", &m, &mut errs);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("@this in static"));
    }
}
