//! Operand values, places (l-values), and symbolic references to fields and
//! methods.

use crate::types::Type;
use std::fmt;

/// A local variable slot, indexing into the owning method's `locals` table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Local(pub u32);

impl Local {
    /// The slot index as `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Local {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

/// A compile-time constant operand.
#[derive(Clone, Debug, PartialEq)]
pub enum Const {
    /// A string literal. The single most important constant kind for
    /// protocol analysis: URLs, JSON keys, query parameter names.
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Null,
    /// A class literal (`Foo.class`), used by reflection-based JSON
    /// libraries such as gson/Jackson/retrofit (paper §3.2).
    Class(String),
}

impl Const {
    /// The static type of the constant.
    pub fn ty(&self) -> Type {
        match self {
            Const::Str(_) => Type::string(),
            Const::Int(_) => Type::Int,
            Const::Float(_) => Type::Double,
            Const::Bool(_) => Type::Bool,
            Const::Null => Type::obj_root(),
            Const::Class(_) => Type::object("java.lang.Class"),
        }
    }
}

/// An operand: a local, a constant, or a reference to an Android resource
/// (`R.string.*`), whose concrete value lives in the APK's
/// `res/values/strings.xml` (modelled by [`crate::apk::Resources`]).
///
/// The paper's slicing step explicitly resolves such resource references
/// ("we handle references to resource objects, such as Android.R, whose
/// values are stored in user-defined files in the APK", §3.1).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Local(Local),
    Const(Const),
    Resource(String),
}

impl Value {
    /// Shorthand for a string constant operand.
    pub fn str(s: &str) -> Value {
        Value::Const(Const::Str(s.to_string()))
    }

    /// Shorthand for an integer constant operand.
    pub fn int(i: i64) -> Value {
        Value::Const(Const::Int(i))
    }

    /// Shorthand for `null`.
    pub fn null() -> Value {
        Value::Const(Const::Null)
    }

    /// The local this operand reads, if any.
    pub fn as_local(&self) -> Option<Local> {
        match self {
            Value::Local(l) => Some(*l),
            _ => None,
        }
    }
}

impl From<Local> for Value {
    fn from(l: Local) -> Value {
        Value::Local(l)
    }
}

/// A symbolic reference to a field, resolved by name (Dalvik-style).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldRef {
    /// Declaring class, fully qualified.
    pub class: String,
    /// Field name.
    pub name: String,
    /// Declared field type.
    pub ty: Type,
}

impl FieldRef {
    /// Convenience constructor.
    pub fn new(class: &str, name: &str, ty: Type) -> FieldRef {
        FieldRef { class: class.to_string(), name: name.to_string(), ty }
    }
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}: {} {}>", self.class, self.ty, self.name)
    }
}

/// A symbolic reference to a method, resolved by name and signature
/// (Dalvik-style). Virtual calls are resolved against the class hierarchy by
/// the analysis crate; the reference itself names the *static* target.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodRef {
    /// Static receiver class, fully qualified.
    pub class: String,
    /// Simple method name.
    pub name: String,
    /// Parameter types (no receiver).
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
}

impl MethodRef {
    /// Convenience constructor.
    pub fn new(class: &str, name: &str, params: Vec<Type>, ret: Type) -> MethodRef {
        MethodRef { class: class.to_string(), name: name.to_string(), params, ret }
    }

    /// `class.name` — the form used in semantic-model lookups, where
    /// overloads share one model entry.
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.class, self.name)
    }

    /// The *shape signature* used by the obfuscated-library mapper
    /// (paper §3.4): return type and parameter types with class names erased
    /// to `L` (any reference). Renaming identifiers does not change it.
    pub fn shape(&self) -> String {
        fn erase(t: &Type) -> String {
            match t {
                Type::Object(_) => "L".to_string(),
                Type::Array(e) => format!("{}[]", erase(e)),
                other => other.to_string(),
            }
        }
        let params: Vec<String> = self.params.iter().map(erase).collect();
        format!("{}({})", erase(&self.ret), params.join(","))
    }
}

impl fmt::Display for MethodRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params: Vec<String> = self.params.iter().map(|t| t.to_string()).collect();
        write!(f, "<{}: {} {}({})>", self.class, self.ret, self.name, params.join(", "))
    }
}

/// An l-value: the destination of an assignment or the source of a load.
#[derive(Clone, Debug, PartialEq)]
pub enum Place {
    /// A local slot.
    Local(Local),
    /// `base.field` for an instance field.
    InstanceField {
        /// The receiver local.
        base: Local,
        /// The referenced field.
        field: FieldRef,
    },
    /// A static field.
    StaticField(FieldRef),
    /// `base[index]`.
    ArrayElem {
        /// The array local.
        base: Local,
        /// The element index operand.
        index: Value,
    },
}

impl Place {
    /// The root local this place is anchored at, if any (static fields have
    /// none). Used pervasively by taint transfer functions.
    pub fn base_local(&self) -> Option<Local> {
        match self {
            Place::Local(l) => Some(*l),
            Place::InstanceField { base, .. } => Some(*base),
            Place::ArrayElem { base, .. } => Some(*base),
            Place::StaticField(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_ref_shape_erases_names() {
        let m = MethodRef::new(
            "com.a.B",
            "doIt",
            vec![Type::string(), Type::Int, Type::object("x.Y").array_of()],
            Type::object("z.W"),
        );
        assert_eq!(m.shape(), "L(L,int,L[])");
        // An obfuscated rename of every class yields the same shape.
        let m2 = MethodRef::new(
            "a.a",
            "a",
            vec![Type::object("a.b"), Type::Int, Type::object("a.c").array_of()],
            Type::object("a.d"),
        );
        assert_eq!(m.shape(), m2.shape());
    }

    #[test]
    fn display_forms() {
        let f = FieldRef::new("com.a.B", "mUrl", Type::string());
        assert_eq!(f.to_string(), "<com.a.B: java.lang.String mUrl>");
        let m = MethodRef::new("com.a.B", "get", vec![Type::Int], Type::Void);
        assert_eq!(m.to_string(), "<com.a.B: void get(int)>");
    }

    #[test]
    fn place_base_local() {
        let f = FieldRef::new("c.D", "x", Type::Int);
        assert_eq!(Place::Local(Local(3)).base_local(), Some(Local(3)));
        assert_eq!(
            Place::InstanceField { base: Local(1), field: f.clone() }.base_local(),
            Some(Local(1))
        );
        assert_eq!(Place::StaticField(f).base_local(), None);
    }
}
