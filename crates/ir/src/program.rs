//! An indexed view over an [`Apk`]: stable class/method identifiers, name
//! lookup, and class-hierarchy queries (the substrate for CHA call-graph
//! construction in the analysis crate).

use crate::apk::Apk;
use crate::class::{Class, Method};
use std::collections::HashMap;

/// Index of a class within the APK's class table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Index of a method: `(class, method-within-class)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId {
    pub class: ClassId,
    pub method: u32,
}

/// An indexed, read-only view over an [`Apk`].
///
/// Built once per analysis run; all analyses address code through
/// [`MethodId`]s obtained here.
pub struct ProgramIndex<'a> {
    apk: &'a Apk,
    by_name: HashMap<&'a str, ClassId>,
    /// Direct subclasses / implementors per class name.
    children: HashMap<&'a str, Vec<ClassId>>,
}

impl<'a> ProgramIndex<'a> {
    /// Indexes the APK. Duplicate class names keep the first occurrence
    /// (matching dexer behavior for duplicate-in classpath).
    pub fn new(apk: &'a Apk) -> ProgramIndex<'a> {
        let mut by_name = HashMap::new();
        let mut children: HashMap<&'a str, Vec<ClassId>> = HashMap::new();
        for (i, c) in apk.classes.iter().enumerate() {
            let id = ClassId(i as u32);
            by_name.entry(c.name.as_str()).or_insert(id);
            if let Some(sup) = &c.superclass {
                children.entry(sup.as_str()).or_default().push(id);
            }
            for itf in &c.interfaces {
                children.entry(itf.as_str()).or_default().push(id);
            }
        }
        ProgramIndex { apk, by_name, children }
    }

    /// The underlying APK.
    pub fn apk(&self) -> &'a Apk {
        self.apk
    }

    /// Resolves a class name to its id.
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// The class for an id.
    pub fn class(&self, id: ClassId) -> &'a Class {
        &self.apk.classes[id.0 as usize]
    }

    /// The method for an id.
    pub fn method(&self, id: MethodId) -> &'a Method {
        &self.class(id.class).methods[id.method as usize]
    }

    /// Iterates over all `(ClassId, &Class)` pairs.
    pub fn classes(&self) -> impl Iterator<Item = (ClassId, &'a Class)> + '_ {
        self.apk.classes.iter().enumerate().map(|(i, c)| (ClassId(i as u32), c))
    }

    /// Iterates over every method id in the program.
    pub fn methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.classes().flat_map(|(cid, c)| {
            (0..c.methods.len() as u32).map(move |m| MethodId { class: cid, method: m })
        })
    }

    /// Iterates over every method with a concrete body.
    pub fn concrete_methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.methods().filter(|id| self.method(*id).has_body)
    }

    /// Finds the declared method `name/arity` in `class` without walking the
    /// hierarchy.
    pub fn declared_method(&self, class: ClassId, name: &str, arity: usize) -> Option<MethodId> {
        self.class(class)
            .methods
            .iter()
            .position(|m| m.name == name && m.params.len() == arity)
            .map(|m| MethodId { class, method: m as u32 })
    }

    /// Resolves `name/arity` starting at `class` and walking up the
    /// superclass chain (Java virtual-dispatch resolution for the static
    /// type).
    pub fn resolve_method(&self, class: &str, name: &str, arity: usize) -> Option<MethodId> {
        let mut cur = self.class_id(class);
        while let Some(cid) = cur {
            if let Some(mid) = self.declared_method(cid, name, arity) {
                return Some(mid);
            }
            cur = self.class(cid).superclass.as_deref().and_then(|s| self.class_id(s));
        }
        None
    }

    /// Direct subclasses (and implementors) of the named class/interface.
    pub fn direct_subtypes(&self, name: &str) -> &[ClassId] {
        self.children.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All transitive subtypes of the named class/interface, excluding the
    /// class itself. This is the cone used by CHA to resolve virtual calls.
    pub fn all_subtypes(&self, name: &str) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut stack: Vec<ClassId> = self.direct_subtypes(name).to_vec();
        while let Some(id) = stack.pop() {
            if out.contains(&id) {
                continue;
            }
            out.push(id);
            stack.extend_from_slice(self.direct_subtypes(&self.class(id).name));
        }
        out
    }

    /// True if `sub` names the same type as `sup` or a transitive subtype of
    /// it (through superclasses and interfaces).
    pub fn is_subtype(&self, sub: &str, sup: &str) -> bool {
        if sub == sup {
            return true;
        }
        let Some(mut cur) = self.class_id(sub) else { return false };
        loop {
            let c = self.class(cur);
            if c.interfaces.iter().any(|i| self.is_subtype(i, sup)) {
                return true;
            }
            match c.superclass.as_deref() {
                Some(s) if s == sup => return true,
                Some(s) => match self.class_id(s) {
                    Some(id) => cur = id,
                    None => return false,
                },
                None => return false,
            }
        }
    }

    /// The method ref display string `<class: ret name(params)>` for an id.
    pub fn method_display(&self, id: MethodId) -> String {
        let c = self.class(id.class);
        let m = self.method(id);
        m.make_ref(&c.name).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ApkBuilder;
    use crate::types::Type;

    fn sample() -> Apk {
        let mut b = ApkBuilder::new("t", "com.t");
        b.class("java.lang.Object", |c| {
            c.no_super();
        });
        b.class("com.t.A", |c| {
            c.extends("java.lang.Object");
            c.method("m", vec![], Type::Void, |_| {});
        });
        b.class("com.t.B", |c| {
            c.extends("com.t.A");
            c.implements("com.t.I");
            c.method("m", vec![], Type::Void, |_| {});
        });
        b.class("com.t.C", |c| {
            c.extends("com.t.B");
        });
        b.iface("com.t.I", |_| {});
        b.build()
    }

    #[test]
    fn hierarchy_queries() {
        let apk = sample();
        let p = ProgramIndex::new(&apk);
        assert!(p.is_subtype("com.t.C", "com.t.A"));
        assert!(p.is_subtype("com.t.C", "com.t.I"));
        assert!(p.is_subtype("com.t.B", "java.lang.Object"));
        assert!(!p.is_subtype("com.t.A", "com.t.B"));
        let subs: Vec<String> =
            p.all_subtypes("com.t.A").into_iter().map(|id| p.class(id).name.clone()).collect();
        assert!(subs.contains(&"com.t.B".to_string()));
        assert!(subs.contains(&"com.t.C".to_string()));
    }

    #[test]
    fn method_resolution_walks_superclasses() {
        let apk = sample();
        let p = ProgramIndex::new(&apk);
        // C declares no m(); resolution finds B's.
        let mid = p.resolve_method("com.t.C", "m", 0).unwrap();
        assert_eq!(p.class(mid.class).name, "com.t.B");
        assert!(p.resolve_method("com.t.C", "nope", 0).is_none());
    }
}
