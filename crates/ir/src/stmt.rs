//! Statements and right-hand-side expressions, mirroring Jimple's grammar.

use crate::types::Type;
use crate::values::{Local, MethodRef, Place, Value};

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical/bitwise not.
    Not,
    /// `lengthof` an array.
    Len,
}

/// Binary operators (arithmetic and bitwise; comparisons live in [`CondOp`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    /// Three-way compare (`cmp` family), result in {-1, 0, 1}.
    Cmp,
}

/// Comparison operators used in `if` conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CondOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// An `if` condition: `lhs op rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct Cond {
    pub op: CondOp,
    pub lhs: Value,
    pub rhs: Value,
}

/// The dispatch mode of a call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// `virtualinvoke` — resolved against the receiver's dynamic type.
    Virtual,
    /// `interfaceinvoke` — like virtual, through an interface reference.
    Interface,
    /// `staticinvoke` — no receiver.
    Static,
    /// `specialinvoke` — constructors, `super.m()`, private methods.
    Special,
}

/// A call site.
#[derive(Clone, Debug, PartialEq)]
pub struct Call {
    pub kind: CallKind,
    /// The static target.
    pub callee: MethodRef,
    /// Receiver operand; `None` for static calls.
    pub receiver: Option<Value>,
    /// Argument operands.
    pub args: Vec<Value>,
}

impl Call {
    /// All operands of the call: receiver (if any) followed by arguments.
    pub fn operands(&self) -> impl Iterator<Item = &Value> {
        self.receiver.iter().chain(self.args.iter())
    }
}

/// What an identity statement binds (Jimple `@this`, `@parameterN`,
/// `@caughtexception`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IdentityKind {
    /// The receiver of an instance method.
    This,
    /// The N-th declared parameter.
    Param(u32),
    /// The in-flight exception at the head of a handler block.
    CaughtException,
}

/// A right-hand-side expression. Exactly one operation per statement, as in
/// three-address code.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A plain operand copy.
    Use(Value),
    /// Read from a field or array element.
    Load(Place),
    /// Unary operation.
    Un(UnOp, Value),
    /// Binary operation.
    Bin(BinOp, Value, Value),
    /// Allocate an instance of the named class (constructor is a separate
    /// `specialinvoke <init>` statement, as in Jimple).
    New(String),
    /// Allocate an array of the element type with the given length.
    NewArray(Type, Value),
    /// Checked cast.
    Cast(Type, Value),
    /// `instanceof` test.
    InstanceOf(String, Value),
    /// A call whose result is assigned.
    Invoke(Call),
}

impl Expr {
    /// The call inside this expression, if it is an invoke.
    pub fn as_call(&self) -> Option<&Call> {
        match self {
            Expr::Invoke(c) => Some(c),
            _ => None,
        }
    }

    /// All value operands read by this expression.
    pub fn operands(&self) -> Vec<&Value> {
        match self {
            Expr::Use(v)
            | Expr::Un(_, v)
            | Expr::NewArray(_, v)
            | Expr::Cast(_, v)
            | Expr::InstanceOf(_, v) => vec![v],
            Expr::Bin(_, a, b) => vec![a, b],
            Expr::Load(p) => match p {
                Place::ArrayElem { index, .. } => vec![index],
                _ => vec![],
            },
            Expr::New(_) => vec![],
            Expr::Invoke(c) => c.operands().collect(),
        }
    }
}

/// A statement. Branch targets are indices into the owning method's body.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `place = expr`.
    Assign { place: Place, expr: Expr },
    /// A call whose result (if any) is discarded.
    Invoke(Call),
    /// Conditional branch: fall through or jump to `target`.
    If { cond: Cond, target: usize },
    /// Unconditional jump.
    Goto { target: usize },
    /// `lookupswitch`: jump to the arm matching the scrutinee, else default.
    Switch {
        scrutinee: Value,
        /// `(case value, target index)` pairs.
        arms: Vec<(i64, usize)>,
        default: usize,
    },
    /// Return, optionally with a value.
    Return(Option<Value>),
    /// Throw an exception.
    Throw(Value),
    /// Identity binding at method entry / handler head.
    Identity { local: Local, kind: IdentityKind },
    /// No-op (used as a label placeholder by the builder).
    Nop,
}

impl Stmt {
    /// The call at this statement, whether its result is used or not.
    pub fn call(&self) -> Option<&Call> {
        match self {
            Stmt::Invoke(c) => Some(c),
            Stmt::Assign { expr: Expr::Invoke(c), .. } => Some(c),
            _ => None,
        }
    }

    /// The place defined (written) by this statement, if any.
    pub fn def(&self) -> Option<&Place> {
        match self {
            Stmt::Assign { place, .. } => Some(place),
            _ => None,
        }
    }

    /// True if control cannot fall through to the next statement.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Stmt::Goto { .. } | Stmt::Return(_) | Stmt::Throw(_) | Stmt::Switch { .. })
    }

    /// Explicit branch targets of this statement (excluding fallthrough).
    pub fn branch_targets(&self) -> Vec<usize> {
        match self {
            Stmt::If { target, .. } | Stmt::Goto { target } => vec![*target],
            Stmt::Switch { arms, default, .. } => {
                let mut t: Vec<usize> = arms.iter().map(|(_, i)| *i).collect();
                t.push(*default);
                t
            }
            _ => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::Const;

    fn call() -> Call {
        Call {
            kind: CallKind::Virtual,
            callee: MethodRef::new("a.B", "m", vec![], Type::Void),
            receiver: Some(Value::Local(Local(0))),
            args: vec![Value::str("x")],
        }
    }

    #[test]
    fn stmt_call_extraction() {
        assert!(Stmt::Invoke(call()).call().is_some());
        let s = Stmt::Assign { place: Place::Local(Local(1)), expr: Expr::Invoke(call()) };
        assert!(s.call().is_some());
        assert!(Stmt::Nop.call().is_none());
    }

    #[test]
    fn terminators_and_targets() {
        let g = Stmt::Goto { target: 7 };
        assert!(g.is_terminator());
        assert_eq!(g.branch_targets(), vec![7]);
        let i = Stmt::If {
            cond: Cond { op: CondOp::Eq, lhs: Value::int(0), rhs: Value::int(0) },
            target: 3,
        };
        assert!(!i.is_terminator());
        assert_eq!(i.branch_targets(), vec![3]);
        let sw = Stmt::Switch {
            scrutinee: Value::Local(Local(0)),
            arms: vec![(1, 10), (2, 20)],
            default: 30,
        };
        assert!(sw.is_terminator());
        assert_eq!(sw.branch_targets(), vec![10, 20, 30]);
    }

    #[test]
    fn expr_operands() {
        let e = Expr::Bin(BinOp::Add, Value::int(1), Value::Local(Local(2)));
        assert_eq!(e.operands().len(), 2);
        let c = Expr::Invoke(call());
        assert_eq!(c.operands().len(), 2); // receiver + 1 arg
        let l = Expr::Load(Place::ArrayElem { base: Local(0), index: Value::int(3) });
        assert_eq!(l.operands(), vec![&Value::Const(Const::Int(3))]);
    }
}
