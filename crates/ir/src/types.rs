//! The IR's type lattice: Java primitive types, reference types, and arrays.

use std::fmt;

/// A Jimple-level type.
///
/// `Object` carries the fully-qualified dotted class name; `Array` nests.
/// Equality/ordering are structural, which makes the type usable directly as
/// map keys in analyses and semantic-model lookups.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// The `void` pseudo-type (only valid as a return type).
    Void,
    Bool,
    Byte,
    Char,
    Int,
    Long,
    Float,
    Double,
    /// A class or interface reference, e.g. `java.lang.String`.
    Object(String),
    /// An array of the element type, e.g. `byte[]`.
    Array(Box<Type>),
}

impl Type {
    /// Convenience constructor for reference types.
    pub fn object(name: &str) -> Type {
        Type::Object(name.to_string())
    }

    /// `java.lang.String`, the single most common type in protocol code.
    pub fn string() -> Type {
        Type::object("java.lang.String")
    }

    /// `java.lang.Object`.
    pub fn obj_root() -> Type {
        Type::object("java.lang.Object")
    }

    /// An array of this type.
    pub fn array_of(self) -> Type {
        Type::Array(Box::new(self))
    }

    /// True for the numeric primitives (used when deriving regex wildcards:
    /// numeric unknowns become `[0-9]+`, everything else `.*`; paper §3.2).
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            Type::Byte | Type::Char | Type::Int | Type::Long | Type::Float | Type::Double
        )
    }

    /// True for any reference (class or array) type.
    pub fn is_reference(&self) -> bool {
        matches!(self, Type::Object(_) | Type::Array(_))
    }

    /// The class name if this is a plain object type.
    pub fn class_name(&self) -> Option<&str> {
        match self {
            Type::Object(n) => Some(n),
            _ => None,
        }
    }

    /// Parses the display form produced by [`fmt::Display`]: a primitive
    /// keyword or dotted class name, followed by any number of `[]` pairs.
    pub fn parse(s: &str) -> Result<Type, String> {
        let s = s.trim();
        let mut dims = 0;
        let mut base = s;
        while let Some(stripped) = base.strip_suffix("[]") {
            base = stripped.trim_end();
            dims += 1;
        }
        let mut t = match base {
            "void" => Type::Void,
            "boolean" => Type::Bool,
            "byte" => Type::Byte,
            "char" => Type::Char,
            "int" => Type::Int,
            "long" => Type::Long,
            "float" => Type::Float,
            "double" => Type::Double,
            "" => return Err(format!("empty type in `{s}`")),
            name => {
                if name.chars().all(|c| c.is_alphanumeric() || c == '.' || c == '_' || c == '$') {
                    Type::Object(name.to_string())
                } else {
                    return Err(format!("invalid type name `{name}`"));
                }
            }
        };
        for _ in 0..dims {
            t = t.array_of();
        }
        if dims > 0 && t == Type::Void.clone().array_of() {
            return Err("void[] is not a type".into());
        }
        Ok(t)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Bool => write!(f, "boolean"),
            Type::Byte => write!(f, "byte"),
            Type::Char => write!(f, "char"),
            Type::Int => write!(f, "int"),
            Type::Long => write!(f, "long"),
            Type::Float => write!(f, "float"),
            Type::Double => write!(f, "double"),
            Type::Object(n) => write!(f, "{n}"),
            Type::Array(t) => write!(f, "{t}[]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        let cases = [
            Type::Void,
            Type::Int,
            Type::Bool,
            Type::string(),
            Type::Byte.array_of(),
            Type::string().array_of().array_of(),
            Type::object("com.example.Foo$Inner"),
        ];
        for t in cases {
            let s = t.to_string();
            assert_eq!(Type::parse(&s).unwrap(), t, "round trip of `{s}`");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Type::parse("").is_err());
        assert!(Type::parse("int[").is_err());
        assert!(Type::parse("foo bar").is_err());
        assert!(Type::parse("void[]").is_err());
    }

    #[test]
    fn numeric_classification() {
        assert!(Type::Int.is_numeric());
        assert!(Type::Double.is_numeric());
        assert!(!Type::Bool.is_numeric());
        assert!(!Type::string().is_numeric());
        assert!(Type::string().is_reference());
        assert!(Type::Int.array_of().is_reference());
    }
}
