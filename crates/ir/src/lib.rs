//! # extractocol-ir
//!
//! A Jimple-like typed three-address intermediate representation (IR) for
//! Android application code, together with an APK container model
//! (manifest, resources, classes).
//!
//! The original Extractocol system (CoNEXT '16) consumes Dalvik bytecode and
//! immediately lifts it to Soot's Jimple IR via Dexpler; every analysis in
//! the paper — slicing, signature extraction, pairing, dependency analysis —
//! "operates at Jimple/Shimple code level, instead of the Dalvik bytecode"
//! (paper §4). This crate is the Rust stand-in for that layer: a small,
//! fully-typed 3-address-code IR with classes, fields, virtual dispatch,
//! branches and loops, plus:
//!
//! * a fluent [`builder`] API used by the synthetic app corpus,
//! * a Jimple-flavoured [text format](parser) with a parser and
//!   [pretty-printer](printer) that round-trip,
//! * a ProGuard-style [obfuscator](obfuscate) used to reproduce the paper's
//!   obfuscation experiments (§3.4, §5.1),
//! * a structural [validator](validate) used throughout the test suite.
//!
//! The IR intentionally mirrors Jimple's statement forms (assignments with a
//! single operation on the right-hand side, identity statements binding
//! `this`/parameters, explicit `goto`/`if`) so that analyses written against
//! it exercise the same shapes the real system sees.

pub mod apk;
pub mod builder;
pub mod class;
pub mod hash;
pub mod obfuscate;
pub mod parser;
pub mod printer;
pub mod program;
pub mod rng;
pub mod stmt;
pub mod types;
pub mod validate;
pub mod values;

pub use apk::{Apk, Manifest, Resources};
pub use builder::{ApkBuilder, ClassBuilder, MethodBuilder};
pub use class::{Class, FieldDecl, LocalDecl, Method};
pub use program::{ClassId, MethodId, ProgramIndex};
pub use stmt::{BinOp, Call, CallKind, Cond, CondOp, Expr, IdentityKind, Stmt, UnOp};
pub use types::Type;
pub use values::{Const, FieldRef, Local, MethodRef, Place, Value};
