//! Shared content hashing: 64-bit FNV-1a.
//!
//! One hash, one implementation. The serving-side archives
//! (`serve::archive`, `.exsv`) and the incremental summary cache
//! (`incr::archive`, `.exsm`) both checksum their payloads with this
//! function, and the incremental engine additionally fingerprints every
//! method body with it (over the canonical [`crate::printer`] form). FNV-1a
//! is not cryptographic — it guards against corruption and stale inputs,
//! not adversaries with hash-collision budgets — but it is deterministic
//! across platforms, dependency-free, and fast enough to hash every method
//! of an app on every run.

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Incremental variant: folds `bytes` into an existing FNV-1a state.
/// `fnv1a64_update(fnv1a64(a), b) == fnv1a64(a ++ b)`.
pub fn fnv1a64_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn update_matches_concatenation() {
        let whole = fnv1a64(b"hello world");
        let split = fnv1a64_update(fnv1a64(b"hello "), b"world");
        assert_eq!(whole, split);
        assert_eq!(fnv1a64_update(fnv1a64(b""), b"abc"), fnv1a64(b"abc"));
    }
}
