//! Fluent construction of APKs, classes, and method bodies.
//!
//! The synthetic corpus (crate `extractocol-corpus`) authors whole apps
//! through this API. It mirrors what Dexpler emits: flat statement lists
//! with symbolic labels resolved to statement indices at build time.

use crate::apk::{Apk, Manifest, Resources};
use crate::class::{Class, FieldDecl, LocalDecl, Method};
use crate::stmt::{Call, CallKind, Cond, CondOp, Expr, IdentityKind, Stmt};
use crate::types::Type;
use crate::values::{FieldRef, Local, MethodRef, Place, Value};
use std::collections::HashMap;

/// Builds a complete [`Apk`].
pub struct ApkBuilder {
    name: String,
    manifest: Manifest,
    resources: Resources,
    classes: Vec<Class>,
}

impl ApkBuilder {
    /// Starts a new APK with the given display name and package.
    pub fn new(app_name: &str, package: &str) -> ApkBuilder {
        ApkBuilder {
            name: app_name.to_string(),
            manifest: Manifest { package: package.to_string(), ..Manifest::default() },
            resources: Resources::new(),
            classes: Vec::new(),
        }
    }

    /// Adds a string resource (`res/values/strings.xml` entry).
    pub fn resource(&mut self, key: &str, value: &str) -> &mut Self {
        self.resources.put_string(key, value);
        self
    }

    /// Registers an activity in the manifest.
    pub fn activity(&mut self, class: &str) -> &mut Self {
        self.manifest.activities.push(class.to_string());
        self
    }

    /// Registers a service in the manifest.
    pub fn service(&mut self, class: &str) -> &mut Self {
        self.manifest.services.push(class.to_string());
        self
    }

    /// Registers a broadcast receiver in the manifest.
    pub fn receiver(&mut self, class: &str) -> &mut Self {
        self.manifest.receivers.push(class.to_string());
        self
    }

    /// Requests a permission in the manifest.
    pub fn permission(&mut self, perm: &str) -> &mut Self {
        self.manifest.permissions.push(perm.to_string());
        self
    }

    /// Defines a class. The closure configures it through a [`ClassBuilder`].
    pub fn class(&mut self, name: &str, f: impl FnOnce(&mut ClassBuilder)) -> &mut Self {
        let mut cb = ClassBuilder::new(name, false);
        f(&mut cb);
        self.classes.push(cb.finish());
        self
    }

    /// Defines an interface.
    pub fn iface(&mut self, name: &str, f: impl FnOnce(&mut ClassBuilder)) -> &mut Self {
        let mut cb = ClassBuilder::new(name, true);
        f(&mut cb);
        self.classes.push(cb.finish());
        self
    }

    /// Finalizes the APK. Classes declared in multiple `class()` calls
    /// under the same name are merged (fields and methods appended), so
    /// incremental app generators can add members per feature.
    pub fn build(self) -> Apk {
        let mut merged: Vec<Class> = Vec::new();
        let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        for c in self.classes {
            match index.get(&c.name) {
                Some(&i) => {
                    let dst = &mut merged[i];
                    dst.fields.extend(c.fields);
                    dst.methods.extend(c.methods);
                    for itf in c.interfaces {
                        if !dst.interfaces.contains(&itf) {
                            dst.interfaces.push(itf);
                        }
                    }
                    dst.is_library |= c.is_library;
                }
                None => {
                    index.insert(c.name.clone(), merged.len());
                    merged.push(c);
                }
            }
        }
        Apk { name: self.name, manifest: self.manifest, resources: self.resources, classes: merged }
    }
}

/// Builds one [`Class`].
pub struct ClassBuilder {
    class: Class,
}

impl ClassBuilder {
    fn new(name: &str, is_interface: bool) -> ClassBuilder {
        ClassBuilder {
            class: Class {
                name: name.to_string(),
                superclass: Some("java.lang.Object".to_string()),
                interfaces: Vec::new(),
                fields: Vec::new(),
                methods: Vec::new(),
                is_interface,
                is_library: false,
            },
        }
    }

    /// Sets the superclass (default: `java.lang.Object`).
    pub fn extends(&mut self, superclass: &str) -> &mut Self {
        self.class.superclass = Some(superclass.to_string());
        self
    }

    /// Removes the superclass (for `java.lang.Object` itself).
    pub fn no_super(&mut self) -> &mut Self {
        self.class.superclass = None;
        self
    }

    /// Adds an implemented interface.
    pub fn implements(&mut self, iface: &str) -> &mut Self {
        self.class.interfaces.push(iface.to_string());
        self
    }

    /// Marks this class as bundled third-party library code.
    pub fn library(&mut self) -> &mut Self {
        self.class.is_library = true;
        self
    }

    /// Declares an instance field and returns its reference.
    pub fn field(&mut self, name: &str, ty: Type) -> FieldRef {
        self.class.fields.push(FieldDecl {
            name: name.to_string(),
            ty: ty.clone(),
            is_static: false,
        });
        FieldRef::new(&self.class.name, name, ty)
    }

    /// Declares a static field and returns its reference.
    pub fn static_field(&mut self, name: &str, ty: Type) -> FieldRef {
        self.class.fields.push(FieldDecl {
            name: name.to_string(),
            ty: ty.clone(),
            is_static: true,
        });
        FieldRef::new(&self.class.name, name, ty)
    }

    /// Defines an instance method with a body.
    pub fn method(
        &mut self,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        f: impl FnOnce(&mut MethodBuilder),
    ) -> &mut Self {
        self.add_method(name, params, ret, false, f)
    }

    /// Defines a static method with a body.
    pub fn static_method(
        &mut self,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        f: impl FnOnce(&mut MethodBuilder),
    ) -> &mut Self {
        self.add_method(name, params, ret, true, f)
    }

    fn add_method(
        &mut self,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        is_static: bool,
        f: impl FnOnce(&mut MethodBuilder),
    ) -> &mut Self {
        let mut mb = MethodBuilder::new(name, params, ret, is_static);
        f(&mut mb);
        self.class.methods.push(mb.finish());
        self
    }

    /// Declares a bodyless method (abstract / native / platform stub).
    pub fn stub_method(&mut self, name: &str, params: Vec<Type>, ret: Type) -> &mut Self {
        self.class.methods.push(Method {
            name: name.to_string(),
            params,
            ret,
            is_static: false,
            has_body: false,
            locals: Vec::new(),
            body: Vec::new(),
        });
        self
    }

    fn finish(self) -> Class {
        self.class
    }
}

/// A statement with possibly-unresolved symbolic branch targets.
enum RawStmt {
    Plain(Stmt),
    If(Cond, String),
    Goto(String),
    Switch(Value, Vec<(i64, String)>, String),
}

/// Builds one [`Method`] body. Statements are emitted in order; labels are
/// symbolic and resolved when the method is finished.
pub struct MethodBuilder {
    name: String,
    params: Vec<Type>,
    ret: Type,
    is_static: bool,
    locals: Vec<LocalDecl>,
    stmts: Vec<RawStmt>,
    labels: HashMap<String, usize>,
    temp_count: u32,
}

impl MethodBuilder {
    fn new(name: &str, params: Vec<Type>, ret: Type, is_static: bool) -> MethodBuilder {
        MethodBuilder {
            name: name.to_string(),
            params,
            ret,
            is_static,
            locals: Vec::new(),
            stmts: Vec::new(),
            labels: HashMap::new(),
            temp_count: 0,
        }
    }

    // ---- locals -----------------------------------------------------------

    /// Declares a named local of the given type.
    pub fn local(&mut self, name: &str, ty: Type) -> Local {
        let l = Local(self.locals.len() as u32);
        self.locals.push(LocalDecl { name: name.to_string(), ty });
        l
    }

    /// Declares an anonymous temporary local.
    pub fn temp(&mut self, ty: Type) -> Local {
        self.temp_count += 1;
        let name = format!("$t{}", self.temp_count);
        self.local(&name, ty)
    }

    /// Declares a local bound to `this` and emits the identity statement.
    pub fn recv(&mut self, class: &str) -> Local {
        let l = self.local("this", Type::object(class));
        self.push(Stmt::Identity { local: l, kind: IdentityKind::This });
        l
    }

    /// Declares a local bound to parameter `i` and emits the identity
    /// statement. The type comes from the declared parameter list.
    pub fn arg(&mut self, i: u32, name: &str) -> Local {
        let ty = self.params.get(i as usize).cloned().unwrap_or_else(Type::obj_root);
        let l = self.local(name, ty);
        self.push(Stmt::Identity { local: l, kind: IdentityKind::Param(i) });
        l
    }

    // ---- raw statement emission -------------------------------------------

    /// Emits an arbitrary resolved statement.
    pub fn push(&mut self, s: Stmt) -> &mut Self {
        self.stmts.push(RawStmt::Plain(s));
        self
    }

    /// Emits `local = expr`.
    pub fn assign(&mut self, local: Local, expr: Expr) -> &mut Self {
        self.push(Stmt::Assign { place: Place::Local(local), expr })
    }

    /// Emits `place = expr` for any l-value.
    pub fn set(&mut self, place: Place, expr: Expr) -> &mut Self {
        self.push(Stmt::Assign { place, expr })
    }

    // ---- constants and copies ---------------------------------------------

    /// `local = "s"`.
    pub fn cstr(&mut self, local: Local, s: &str) -> &mut Self {
        self.assign(local, Expr::Use(Value::str(s)))
    }

    /// `local = i`.
    pub fn cint(&mut self, local: Local, i: i64) -> &mut Self {
        self.assign(local, Expr::Use(Value::int(i)))
    }

    /// `local = @resource(key)` — an `Android.R` string lookup.
    pub fn cres(&mut self, local: Local, key: &str) -> &mut Self {
        self.assign(local, Expr::Use(Value::Resource(key.to_string())))
    }

    /// `dst = src`.
    pub fn copy(&mut self, dst: Local, src: impl Into<Value>) -> &mut Self {
        self.assign(dst, Expr::Use(src.into()))
    }

    // ---- fields and arrays --------------------------------------------------

    /// `dst = base.field`.
    pub fn get_field(&mut self, dst: Local, base: Local, field: &FieldRef) -> &mut Self {
        self.assign(dst, Expr::Load(Place::InstanceField { base, field: field.clone() }))
    }

    /// `base.field = v`.
    pub fn put_field(&mut self, base: Local, field: &FieldRef, v: impl Into<Value>) -> &mut Self {
        self.set(Place::InstanceField { base, field: field.clone() }, Expr::Use(v.into()))
    }

    /// `dst = Class.field`.
    pub fn get_static(&mut self, dst: Local, field: &FieldRef) -> &mut Self {
        self.assign(dst, Expr::Load(Place::StaticField(field.clone())))
    }

    /// `Class.field = v`.
    pub fn put_static(&mut self, field: &FieldRef, v: impl Into<Value>) -> &mut Self {
        self.set(Place::StaticField(field.clone()), Expr::Use(v.into()))
    }

    /// `dst = base[idx]`.
    pub fn load_elem(&mut self, dst: Local, base: Local, idx: impl Into<Value>) -> &mut Self {
        self.assign(dst, Expr::Load(Place::ArrayElem { base, index: idx.into() }))
    }

    /// `base[idx] = v`.
    pub fn store_elem(
        &mut self,
        base: Local,
        idx: impl Into<Value>,
        v: impl Into<Value>,
    ) -> &mut Self {
        self.set(Place::ArrayElem { base, index: idx.into() }, Expr::Use(v.into()))
    }

    /// `dst = new ty[len]`.
    pub fn new_array(&mut self, dst: Local, elem: Type, len: impl Into<Value>) -> &mut Self {
        self.assign(dst, Expr::NewArray(elem, len.into()))
    }

    // ---- allocation and calls -----------------------------------------------

    /// Allocates and constructs an object: emits `l = new C` followed by
    /// `specialinvoke l.<C: void <init>(..)>(args)`; returns the new local.
    pub fn new_obj(&mut self, class: &str, args: Vec<Value>) -> Local {
        let l = self.temp(Type::object(class));
        self.assign(l, Expr::New(class.to_string()));
        let params = self.arg_types(&args);
        self.push(Stmt::Invoke(Call {
            kind: CallKind::Special,
            callee: MethodRef::new(class, "<init>", params, Type::Void),
            receiver: Some(Value::Local(l)),
            args,
        }));
        l
    }

    /// Like [`Self::new_obj`] but assigns into an existing local.
    pub fn new_obj_into(&mut self, dst: Local, class: &str, args: Vec<Value>) -> &mut Self {
        self.assign(dst, Expr::New(class.to_string()));
        let params = self.arg_types(&args);
        self.push(Stmt::Invoke(Call {
            kind: CallKind::Special,
            callee: MethodRef::new(class, "<init>", params, Type::Void),
            receiver: Some(Value::Local(dst)),
            args,
        }));
        self
    }

    fn arg_types(&self, args: &[Value]) -> Vec<Type> {
        args.iter()
            .map(|v| match v {
                Value::Local(l) => self.locals[l.index()].ty.clone(),
                Value::Const(c) => c.ty(),
                Value::Resource(_) => Type::string(),
            })
            .collect()
    }

    fn mk_call(
        &self,
        kind: CallKind,
        class: &str,
        name: &str,
        recv: Option<Value>,
        args: Vec<Value>,
        ret: Type,
    ) -> Call {
        let params = self.arg_types(&args);
        Call { kind, callee: MethodRef::new(class, name, params, ret), receiver: recv, args }
    }

    /// Virtual call whose result is assigned to a fresh temp of type `ret`.
    pub fn vcall(
        &mut self,
        recv: Local,
        class: &str,
        name: &str,
        args: Vec<Value>,
        ret: Type,
    ) -> Local {
        let dst = self.temp(ret.clone());
        let call =
            self.mk_call(CallKind::Virtual, class, name, Some(Value::Local(recv)), args, ret);
        self.assign(dst, Expr::Invoke(call));
        dst
    }

    /// Virtual call assigned into an existing local.
    pub fn vcall_into(
        &mut self,
        dst: Local,
        recv: Local,
        class: &str,
        name: &str,
        args: Vec<Value>,
    ) -> &mut Self {
        let ret = self.locals[dst.index()].ty.clone();
        let call =
            self.mk_call(CallKind::Virtual, class, name, Some(Value::Local(recv)), args, ret);
        self.assign(dst, Expr::Invoke(call))
    }

    /// Virtual call with discarded result.
    pub fn vcall_void(
        &mut self,
        recv: Local,
        class: &str,
        name: &str,
        args: Vec<Value>,
    ) -> &mut Self {
        let call = self.mk_call(
            CallKind::Virtual,
            class,
            name,
            Some(Value::Local(recv)),
            args,
            Type::Void,
        );
        self.push(Stmt::Invoke(call))
    }

    /// Interface call whose result is assigned to a fresh temp.
    pub fn icall(
        &mut self,
        recv: Local,
        class: &str,
        name: &str,
        args: Vec<Value>,
        ret: Type,
    ) -> Local {
        let dst = self.temp(ret.clone());
        let call =
            self.mk_call(CallKind::Interface, class, name, Some(Value::Local(recv)), args, ret);
        self.assign(dst, Expr::Invoke(call));
        dst
    }

    /// Static call whose result is assigned to a fresh temp.
    pub fn scall(&mut self, class: &str, name: &str, args: Vec<Value>, ret: Type) -> Local {
        let dst = self.temp(ret.clone());
        let call = self.mk_call(CallKind::Static, class, name, None, args, ret);
        self.assign(dst, Expr::Invoke(call));
        dst
    }

    /// Static call with discarded result.
    pub fn scall_void(&mut self, class: &str, name: &str, args: Vec<Value>) -> &mut Self {
        let call = self.mk_call(CallKind::Static, class, name, None, args, Type::Void);
        self.push(Stmt::Invoke(call))
    }

    /// `specialinvoke` (constructor chaining, `super.m()`).
    pub fn special_void(
        &mut self,
        recv: Local,
        class: &str,
        name: &str,
        args: Vec<Value>,
    ) -> &mut Self {
        let call = self.mk_call(
            CallKind::Special,
            class,
            name,
            Some(Value::Local(recv)),
            args,
            Type::Void,
        );
        self.push(Stmt::Invoke(call))
    }

    // ---- control flow --------------------------------------------------------

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        self.labels.insert(name.to_string(), self.stmts.len());
        self
    }

    /// Conditional jump to `label` when `lhs op rhs` holds.
    pub fn iff(
        &mut self,
        op: CondOp,
        lhs: impl Into<Value>,
        rhs: impl Into<Value>,
        label: &str,
    ) -> &mut Self {
        self.stmts
            .push(RawStmt::If(Cond { op, lhs: lhs.into(), rhs: rhs.into() }, label.to_string()));
        self
    }

    /// Unconditional jump.
    pub fn goto(&mut self, label: &str) -> &mut Self {
        self.stmts.push(RawStmt::Goto(label.to_string()));
        self
    }

    /// `lookupswitch`.
    pub fn switch(
        &mut self,
        v: impl Into<Value>,
        arms: Vec<(i64, &str)>,
        default: &str,
    ) -> &mut Self {
        self.stmts.push(RawStmt::Switch(
            v.into(),
            arms.into_iter().map(|(k, l)| (k, l.to_string())).collect(),
            default.to_string(),
        ));
        self
    }

    /// `return;`
    pub fn ret_void(&mut self) -> &mut Self {
        self.push(Stmt::Return(None))
    }

    /// `return v;`
    pub fn ret(&mut self, v: impl Into<Value>) -> &mut Self {
        self.push(Stmt::Return(Some(v.into())))
    }

    // ---- finish ----------------------------------------------------------------

    fn finish(mut self) -> Method {
        // A label at the very end of the body needs a landing statement.
        let needs_tail_nop = self.labels.values().any(|&i| i == self.stmts.len());
        if needs_tail_nop {
            self.stmts.push(RawStmt::Plain(Stmt::Nop));
        }
        let labels = self.labels;
        let resolve = |l: &str| -> usize {
            *labels
                .get(l)
                .unwrap_or_else(|| panic!("undefined label `{l}` in method `{}`", self.name))
        };
        let body: Vec<Stmt> = self
            .stmts
            .into_iter()
            .map(|rs| match rs {
                RawStmt::Plain(s) => s,
                RawStmt::If(cond, l) => Stmt::If { cond, target: resolve(&l) },
                RawStmt::Goto(l) => Stmt::Goto { target: resolve(&l) },
                RawStmt::Switch(v, arms, d) => Stmt::Switch {
                    scrutinee: v,
                    arms: arms.iter().map(|(k, l)| (*k, resolve(l))).collect(),
                    default: resolve(&d),
                },
            })
            .collect();
        Method {
            name: self.name,
            params: self.params,
            ret: self.ret,
            is_static: self.is_static,
            has_body: true,
            locals: self.locals,
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straight_line_method() {
        let mut b = ApkBuilder::new("app", "com.x");
        b.resource("base", "https://x.com");
        b.class("com.x.M", |c| {
            c.method("go", vec![Type::Int], Type::string(), |m| {
                let this = m.recv("com.x.M");
                let p = m.arg(0, "n");
                let sb = m.new_obj("java.lang.StringBuilder", vec![Value::str("http://a/")]);
                let s = m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let _ = (this, p);
                m.ret(s);
            });
        });
        let apk = b.build();
        let c = apk.class("com.x.M").unwrap();
        let meth = c.method("go", 1).unwrap();
        assert!(meth.has_body);
        // recv, arg, new, <init>, toString, return
        assert_eq!(meth.body.len(), 6);
        assert!(matches!(meth.body[5], Stmt::Return(Some(_))));
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = ApkBuilder::new("app", "com.x");
        b.class("com.x.L", |c| {
            c.method("loop", vec![], Type::Void, |m| {
                let i = m.local("i", Type::Int);
                m.cint(i, 0);
                m.label("head");
                m.iff(CondOp::Ge, i, Value::int(10), "done");
                m.assign(i, Expr::Bin(crate::stmt::BinOp::Add, Value::Local(i), Value::int(1)));
                m.goto("head");
                m.label("done");
                m.ret_void();
            });
        });
        let apk = b.build();
        let meth = apk.class("com.x.L").unwrap().method("loop", 0).unwrap();
        match &meth.body[1] {
            Stmt::If { target, .. } => assert_eq!(*target, 4),
            other => panic!("expected if, got {other:?}"),
        }
        match &meth.body[3] {
            Stmt::Goto { target } => assert_eq!(*target, 1),
            other => panic!("expected goto, got {other:?}"),
        }
    }

    #[test]
    fn trailing_label_gets_nop() {
        let mut b = ApkBuilder::new("app", "com.x");
        b.class("com.x.T", |c| {
            c.method("t", vec![], Type::Void, |m| {
                m.goto("end");
                m.label("end");
            });
        });
        let apk = b.build();
        let meth = apk.class("com.x.T").unwrap().method("t", 0).unwrap();
        assert_eq!(meth.body.len(), 2);
        assert!(matches!(meth.body[1], Stmt::Nop));
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut b = ApkBuilder::new("app", "com.x");
        b.class("com.x.Bad", |c| {
            c.method("t", vec![], Type::Void, |m| {
                m.goto("nowhere");
            });
        });
    }
}
