//! The APK container model: manifest, resources, and classes.
//!
//! Extractocol's only input is the application package ("Extractocol only
//! uses Android application binary as input", paper §1). Besides code, two
//! pieces of the package matter to the analysis:
//!
//! * the **manifest**, which names the entry-point components whose
//!   lifecycle callbacks seed the call graph, and
//! * the **resources** (`res/values/strings.xml`), because apps routinely
//!   store API base URLs and API keys there and reference them as
//!   `Android.R` values (paper §3.1 resolves these during slicing; the TED
//!   case study's api-key lives in `android.content.res.Resources`, §5.2).

use crate::class::Class;
use std::collections::BTreeMap;

/// The subset of `AndroidManifest.xml` the analysis consumes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Manifest {
    /// The application package name.
    pub package: String,
    /// Activity classes (UI entry points).
    pub activities: Vec<String>,
    /// Service classes (background entry points, e.g. timer-driven sync).
    pub services: Vec<String>,
    /// Broadcast receiver classes (push/server-triggered entry points).
    pub receivers: Vec<String>,
    /// Requested permissions (`INTERNET`, `RECORD_AUDIO`, ...), used by the
    /// origin/consumption characterization.
    pub permissions: Vec<String>,
}

/// String resources bundled in the APK (`res/values/strings.xml`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Resources {
    strings: BTreeMap<String, String>,
}

impl Resources {
    /// Creates an empty resource table.
    pub fn new() -> Resources {
        Resources::default()
    }

    /// Inserts or replaces a string resource.
    pub fn put_string(&mut self, key: &str, value: &str) {
        self.strings.insert(key.to_string(), value.to_string());
    }

    /// Looks up a string resource by key.
    pub fn string(&self, key: &str) -> Option<&str> {
        self.strings.get(key).map(String::as_str)
    }

    /// Iterates over all `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.strings.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of string resources.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no resources are present.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// A complete application package: the unit of analysis.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Apk {
    /// Display name of the app (e.g. "Diode"), for reports.
    pub name: String,
    /// Manifest data.
    pub manifest: Manifest,
    /// Bundled string resources.
    pub resources: Resources,
    /// All classes in the package: the app's own code, bundled third-party
    /// libraries (`is_library`), and bodyless platform stubs.
    pub classes: Vec<Class>,
}

impl Apk {
    /// Total number of statements across all concrete methods — the "app
    /// size" metric used when reporting slice fractions (paper Fig. 3 notes
    /// Diode's slices cover 6.3% of all code).
    pub fn total_statements(&self) -> usize {
        self.classes.iter().flat_map(|c| c.methods.iter()).map(|m| m.body.len()).sum()
    }

    /// Looks up a class by fully-qualified name.
    pub fn class(&self, name: &str) -> Option<&Class> {
        self.classes.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resources_round_trip() {
        let mut r = Resources::new();
        assert!(r.is_empty());
        r.put_string("api_key", "abc123");
        r.put_string("base_url", "https://api.example.com");
        assert_eq!(r.string("api_key"), Some("abc123"));
        assert_eq!(r.string("missing"), None);
        assert_eq!(r.len(), 2);
        let keys: Vec<&str> = r.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["api_key", "base_url"]); // sorted
    }
}
