//! A tiny, dependency-free deterministic PRNG.
//!
//! The workspace must build and test with no network access, so nothing
//! here may pull in the `rand` crate. Every consumer that needs
//! pseudo-randomness — corpus generation, fuzzing simulators, randomized
//! tests — uses this module instead: a [`SplitMix64`] seeder feeding a
//! xorshift-family generator ([`Xorshift128Plus`]). Both are tiny, fast,
//! and fully deterministic in the seed, which is exactly what reproducible
//! corpora and tests want (NOT cryptographic randomness, which nothing in
//! this workspace needs).

/// Sebastiano Vigna's SplitMix64: a 64-bit mixer with a simple additive
/// state walk. Good enough as a generator on its own, and the standard
/// way to expand one seed word into the state of a larger generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xorshift128+ — the workhorse generator. Two words of state seeded via
/// SplitMix64 (so any seed, including 0, yields a usable state).
#[derive(Clone, Debug)]
pub struct Xorshift128Plus {
    s0: u64,
    s1: u64,
}

/// The default generator alias consumers should reach for.
pub type Rng = Xorshift128Plus;

impl Xorshift128Plus {
    /// A generator deterministically derived from `seed`.
    pub fn new(seed: u64) -> Xorshift128Plus {
        let mut sm = SplitMix64::new(seed);
        let s0 = sm.next_u64();
        let mut s1 = sm.next_u64();
        if s0 == 0 && s1 == 0 {
            s1 = 0x9E37_79B9_7F4A_7C15; // all-zero state is a fixpoint
        }
        Xorshift128Plus { s0, s1 }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// The next 32-bit value (upper bits, which are the stronger ones).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `0..bound`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        // Multiply-shift (Lemire) keeps the bias negligible for the small
        // bounds used here without a rejection loop.
        (((self.next_u64() >> 32) * bound as u64) >> 32) as usize
    }

    /// A uniform value in `lo..hi` (half-open); `lo < hi` required.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as usize) as i64
    }

    /// A coin flip with probability `num/den` of returning true.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// A string of `len` characters drawn from `alphabet`.
    pub fn ascii_string(&mut self, alphabet: &[char], len: usize) -> String {
        (0..len).map(|_| *self.pick(alphabet)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_the_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        let vals: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn below_respects_bound_and_covers_it() {
        let mut r = Rng::new(7);
        let mut seen = [false; 7];
        for _ in 0..2000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached: {seen:?}");
    }

    #[test]
    fn range_and_pick_and_chance() {
        let mut r = Rng::new(9);
        for _ in 0..500 {
            let v = r.range(-3, 4);
            assert!((-3..4).contains(&v));
        }
        let items = ["a", "b", "c"];
        for _ in 0..100 {
            assert!(items.contains(r.pick(&items)));
        }
        let heads = (0..4000).filter(|_| r.chance(1, 4)).count();
        assert!((600..1400).contains(&heads), "~25% expected, got {heads}/4000");
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // First three outputs of the published SplitMix64 algorithm for
        // seed 1234567 (computed independently).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 0x599e_d017_fb08_fc85);
        assert_eq!(sm.next_u64(), 0x2c73_f084_5854_0fa5);
        assert_eq!(sm.next_u64(), 0x883e_bce5_a3f2_7c77);
    }
}
