//! Pretty-printer for the Jimple-flavoured text format.
//!
//! The output round-trips through [`crate::parser`]; the test suite checks
//! `parse(print(apk)) == apk` for corpus apps. Labels are synthesized as
//! `L<index>` at every branch target.

use crate::apk::Apk;
use crate::class::{Class, Method};
use crate::stmt::{BinOp, Call, CallKind, CondOp, Expr, IdentityKind, Stmt, UnOp};
use crate::values::{Const, Local, Place, Value};
use std::collections::BTreeSet;
use std::fmt::Write;

/// Renders a whole APK in the text format.
pub fn print_apk(apk: &Apk) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "apk \"{}\" package {} {{", escape(&apk.name), apk.manifest.package);
    for (k, v) in apk.resources.iter() {
        let _ = writeln!(out, "  resource \"{}\" = \"{}\";", escape(k), escape(v));
    }
    for a in &apk.manifest.activities {
        let _ = writeln!(out, "  activity {a};");
    }
    for s in &apk.manifest.services {
        let _ = writeln!(out, "  service {s};");
    }
    for r in &apk.manifest.receivers {
        let _ = writeln!(out, "  receiver {r};");
    }
    for p in &apk.manifest.permissions {
        let _ = writeln!(out, "  permission {p};");
    }
    for c in &apk.classes {
        print_class(&mut out, c);
    }
    out.push_str("}\n");
    out
}

fn print_class(out: &mut String, c: &Class) {
    let kw = if c.is_interface { "interface" } else { "class" };
    let _ = write!(out, "  {kw} {}", c.name);
    if let Some(s) = &c.superclass {
        let _ = write!(out, " extends {s}");
    }
    if !c.interfaces.is_empty() {
        let _ = write!(out, " implements {}", c.interfaces.join(", "));
    }
    out.push_str(" {\n");
    if c.is_library {
        out.push_str("    library;\n");
    }
    for f in &c.fields {
        let st = if f.is_static { "static " } else { "" };
        let _ = writeln!(out, "    {st}field {} {};", f.ty, f.name);
    }
    for m in &c.methods {
        print_method(out, m);
    }
    out.push_str("  }\n");
}

/// Renders one method in the canonical text form — the exact bytes
/// `print_apk` emits for it. This is the content-hash basis for the
/// incremental engine: two methods with identical `method_text` are
/// analysis-equivalent at the body level (signature, locals, statements,
/// labels all included).
pub fn method_text(m: &Method) -> String {
    let mut out = String::new();
    print_method(&mut out, m);
    out
}

fn print_method(out: &mut String, m: &Method) {
    let st = if m.is_static { "static " } else { "" };
    let params: Vec<String> = m.params.iter().map(|t| t.to_string()).collect();
    if !m.has_body {
        let _ = writeln!(out, "    stub {st}method {} {}({});", m.ret, m.name, params.join(", "));
        return;
    }
    let _ = writeln!(out, "    {st}method {} {}({}) {{", m.ret, m.name, params.join(", "));
    if !m.locals.is_empty() {
        out.push_str("      locals {");
        for l in &m.locals {
            let _ = write!(out, " {}: {};", l.name, l.ty);
        }
        out.push_str(" }\n");
    }
    // Collect branch targets so labels are emitted where needed.
    let mut targets = BTreeSet::new();
    for s in &m.body {
        for t in s.branch_targets() {
            targets.insert(t);
        }
    }
    let name_of = |l: Local| m.locals[l.index()].name.clone();
    for (i, s) in m.body.iter().enumerate() {
        if targets.contains(&i) {
            let _ = writeln!(out, "      label L{i}:");
        }
        let _ = writeln!(out, "      {};", fmt_stmt(s, &name_of));
    }
    out.push_str("    }\n");
}

fn fmt_stmt(s: &Stmt, name: &dyn Fn(Local) -> String) -> String {
    match s {
        Stmt::Assign { place, expr } => {
            format!("{} = {}", fmt_place(place, name), fmt_expr(expr, name))
        }
        Stmt::Invoke(c) => fmt_call(c, name),
        Stmt::If { cond, target } => format!(
            "if {} {} {} goto L{target}",
            fmt_value(&cond.lhs, name),
            fmt_cond_op(cond.op),
            fmt_value(&cond.rhs, name)
        ),
        Stmt::Goto { target } => format!("goto L{target}"),
        Stmt::Switch { scrutinee, arms, default } => {
            let mut t = format!("switch {} {{", fmt_value(scrutinee, name));
            for (k, tgt) in arms {
                let _ = write!(t, " case {k}: L{tgt};");
            }
            let _ = write!(t, " default: L{default}; }}");
            t
        }
        Stmt::Return(None) => "return".to_string(),
        Stmt::Return(Some(v)) => format!("return {}", fmt_value(v, name)),
        Stmt::Throw(v) => format!("throw {}", fmt_value(v, name)),
        Stmt::Identity { local, kind } => {
            let rhs = match kind {
                IdentityKind::This => "@this".to_string(),
                IdentityKind::Param(i) => format!("@param{i}"),
                IdentityKind::CaughtException => "@caughtexception".to_string(),
            };
            format!("{} := {rhs}", name(*local))
        }
        Stmt::Nop => "nop".to_string(),
    }
}

fn fmt_place(p: &Place, name: &dyn Fn(Local) -> String) -> String {
    match p {
        Place::Local(l) => name(*l),
        Place::InstanceField { base, field } => format!("{}.{field}", name(*base)),
        Place::StaticField(field) => field.to_string(),
        Place::ArrayElem { base, index } => {
            format!("{}[{}]", name(*base), fmt_value(index, name))
        }
    }
}

fn fmt_expr(e: &Expr, name: &dyn Fn(Local) -> String) -> String {
    match e {
        Expr::Use(v) => fmt_value(v, name),
        Expr::Load(p) => fmt_place(p, name),
        Expr::Un(op, v) => {
            let o = match op {
                UnOp::Neg => "neg",
                UnOp::Not => "not",
                UnOp::Len => "lengthof",
            };
            format!("{o} {}", fmt_value(v, name))
        }
        Expr::Bin(op, a, b) => {
            format!("{} {} {}", fmt_value(a, name), fmt_bin_op(*op), fmt_value(b, name))
        }
        Expr::New(c) => format!("new {c}"),
        Expr::NewArray(t, n) => format!("newarray {t}[{}]", fmt_value(n, name)),
        Expr::Cast(t, v) => format!("({t}) {}", fmt_value(v, name)),
        Expr::InstanceOf(c, v) => format!("{} instanceof {c}", fmt_value(v, name)),
        Expr::Invoke(c) => fmt_call(c, name),
    }
}

fn fmt_call(c: &Call, name: &dyn Fn(Local) -> String) -> String {
    let kw = match c.kind {
        CallKind::Virtual => "virtualinvoke",
        CallKind::Interface => "interfaceinvoke",
        CallKind::Static => "staticinvoke",
        CallKind::Special => "specialinvoke",
    };
    let args: Vec<String> = c.args.iter().map(|a| fmt_value(a, name)).collect();
    match &c.receiver {
        Some(r) => format!("{kw} {}.{}({})", fmt_value(r, name), c.callee, args.join(", ")),
        None => format!("{kw} {}({})", c.callee, args.join(", ")),
    }
}

fn fmt_value(v: &Value, name: &dyn Fn(Local) -> String) -> String {
    match v {
        Value::Local(l) => name(*l),
        Value::Const(c) => fmt_const(c),
        Value::Resource(k) => format!("@resource(\"{}\")", escape(k)),
    }
}

fn fmt_const(c: &Const) -> String {
    match c {
        Const::Str(s) => format!("\"{}\"", escape(s)),
        Const::Int(i) => i.to_string(),
        Const::Float(f) => {
            // Always keep a decimal point so the parser can distinguish
            // floats from ints.
            let s = f.to_string();
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Const::Bool(b) => b.to_string(),
        Const::Null => "null".to_string(),
        Const::Class(c) => format!("class {c}"),
    }
}

fn fmt_cond_op(op: CondOp) -> &'static str {
    match op {
        CondOp::Eq => "==",
        CondOp::Ne => "!=",
        CondOp::Lt => "<",
        CondOp::Le => "<=",
        CondOp::Gt => ">",
        CondOp::Ge => ">=",
    }
}

fn fmt_bin_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Cmp => "cmp",
    }
}

/// Escapes `"` and `\` and control characters for string literals.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ApkBuilder;
    use crate::types::Type;

    #[test]
    fn prints_a_small_apk() {
        let mut b = ApkBuilder::new("demo", "com.d");
        b.resource("k", "v");
        b.activity("com.d.Main");
        b.class("com.d.Main", |c| {
            c.extends("android.app.Activity");
            let f = c.field("mUrl", Type::string());
            c.method("go", vec![Type::Int], Type::Void, |m| {
                let this = m.recv("com.d.Main");
                let s = m.temp(Type::string());
                m.cstr(s, "http://x/");
                m.put_field(this, &f, s);
                m.ret_void();
            });
        });
        let txt = print_apk(&b.build());
        assert!(txt.contains("apk \"demo\" package com.d {"));
        assert!(txt.contains("resource \"k\" = \"v\";"));
        assert!(txt.contains("field java.lang.String mUrl;"));
        assert!(txt.contains("this := @this;"));
        assert!(txt.contains("$t1 = \"http://x/\";"));
        assert!(txt.contains("this.<com.d.Main: java.lang.String mUrl> = $t1;"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
