//! The paper's in-depth case studies as executable assertions:
//! radio reddit (Table 3, Fig. 8), TED (Table 4, Fig. 1), Diode (Fig. 3),
//! Kayak (Tables 5–6, §5.3), and the weather-notification async example
//! (§3.4).

use extractocol_core::interdep::DepVia;
use extractocol_core::sigbuild::ResponseSig;
use extractocol_core::slicing::SliceOptions;
use extractocol_core::{Extractocol, Options};
use extractocol_dynamic::eval::AppEval;
use extractocol_dynamic::replay::replay_kayak_flight_search;
use extractocol_http::{HttpMethod, Regex};

#[test]
fn radio_reddit_reconstructs_table3() {
    let app = extractocol_corpus::app("radio reddit").unwrap();
    let eval = AppEval::run(&app);
    let r = &eval.report;
    assert_eq!(r.transactions.len(), 6, "six transactions (Table 3)\n{}", r.to_table());

    // #3 login: POST with user/passwd/api_type form body.
    let login =
        r.transactions.iter().find(|t| t.uri_regex.contains("api/login")).expect("login txn");
    assert_eq!(login.method, HttpMethod::Post);
    let kw = login.request_keywords();
    for k in ["user", "passwd", "api_type"] {
        assert!(kw.contains(&k.to_string()), "login keywords: {kw:?}");
    }
    match &login.response {
        Some(ResponseSig::Json(j)) => {
            let keys = j.keys();
            for k in ["modhash", "cookie", "need_https"] {
                assert!(keys.contains(&k), "login response keys: {keys:?}");
            }
        }
        other => panic!("login response: {other:?}"),
    }

    // Save/unsave: disjunctive URI.
    let save = r.transactions.iter().find(|t| t.uri_regex.contains("save")).expect("save txn");
    let re = Regex::new(&save.uri_regex).unwrap();
    assert!(re.is_match("http://www.reddit.com/api/save"));
    assert!(re.is_match("http://www.reddit.com/api/unsave"));

    // Dependencies: login's modhash → uh form field; cookie → Cookie
    // header; the status relay → the media stream.
    let deps = &r.dependencies;
    assert!(
        deps.iter().any(|d| matches!(&d.via, DepVia::Field(f) if f.contains("mModhash"))
            && d.req_field.as_deref() == Some("form:uh")),
        "modhash → uh: {deps:?}"
    );
    assert!(
        deps.iter().any(|d| matches!(&d.via, DepVia::Field(f) if f.contains("mCookie"))
            && d.req_field.as_deref() == Some("header:Cookie")),
        "cookie → Cookie header: {deps:?}"
    );
    assert!(
        deps.iter().any(|d| matches!(&d.via, DepVia::Field(f) if f.contains("mRelay"))),
        "status relay → stream: {deps:?}"
    );

    // Fig. 8: the status signature reads 16 keys, not album/score.
    let status =
        r.transactions.iter().find(|t| t.uri_regex.contains("status")).expect("status txn");
    let keys = status.response_keywords();
    assert_eq!(keys.len(), 16, "{keys:?}");
    assert!(!keys.contains(&"album".to_string()));
    assert!(!keys.contains(&"score".to_string()));

    // The stream is consumed by the media player.
    let stream = r
        .transactions
        .iter()
        .find(|t| t.consumptions.iter().any(|c| c == "media-player"))
        .expect("media stream txn");
    assert!(stream.is_dynamic_uri(), "the relay URI is dynamically derived");
}

#[test]
fn ted_reconstructs_table4_and_fig1() {
    let app = extractocol_corpus::app("TED").unwrap();
    let eval = AppEval::run(&app);
    let r = &eval.report;

    // The api-key from resources is inlined into URIs (§5.2: the key lives
    // in android.content.res.Resources).
    let speakers =
        r.transactions.iter().find(|t| t.uri_regex.contains("speakers")).expect("speakers txn");
    assert!(
        speakers.uri_regex.contains("k9a7f3e2"),
        "resource-resolved api-key: {}",
        speakers.uri_regex
    );

    // Fig. 1 chain: ad query → (url field) → ad fetch → (video field) →
    // media player; Table 4: DB-mediated thumbnail/video fetches.
    let via_strings: Vec<String> = r.dependencies.iter().map(|d| d.via.to_string()).collect();
    assert!(via_strings.iter().any(|v| v.contains("mAdQueryUri")), "{via_strings:?}");
    assert!(via_strings.iter().any(|v| v.contains("mAdVideoUri")), "{via_strings:?}");
    assert!(via_strings.iter().any(|v| v.contains("db talks")), "{via_strings:?}");

    // The ad response's url key is identified (Fig. 1's prefetch hook).
    let ad = r.transactions.iter().find(|t| t.uri_regex.contains("android_ad")).expect("ad txn");
    match &ad.response {
        Some(ResponseSig::Json(j)) => assert!(j.keys().contains(&"url")),
        other => panic!("ad response: {other:?}"),
    }

    // Media consumption notes on the dynamic fetches.
    assert!(
        r.transactions
            .iter()
            .filter(|t| t.consumptions.iter().any(|c| c == "media-player"))
            .count()
            >= 2,
        "ad video + talk video to the player"
    );
}

#[test]
fn diode_reconstructs_fig3() {
    let app = extractocol_corpus::app("Diode").unwrap();
    let eval = AppEval::run(&app);
    let r = &eval.report;
    let listing =
        r.transactions.iter().find(|t| t.uri_regex.contains("search")).expect("Fig. 3 listing txn");
    assert_eq!(listing.uri_pattern_count(), 9, "nine URI patterns\n{}", listing.uri.display());
    let re = Regex::new(&listing.uri_regex).unwrap();
    // The paper's example pattern.
    assert!(re.is_match("http://www.reddit.com/search/.json?q=cats&sort=hot"));
    // The search query comes from user input.
    assert!(listing.origins.iter().any(|o| o == "user-input"), "{:?}", listing.origins);
    // Slice fraction is small (paper: 6.3%).
    let f = r.stats.slice_fraction();
    assert!((0.03..0.12).contains(&f), "slice fraction {f}");
}

#[test]
fn kayak_reverse_engineering_works_end_to_end() {
    let app = extractocol_corpus::app("KAYAK").unwrap();
    let opts = Options { scope_prefix: Some("com.kayak".into()), ..Options::default() };
    let report = Extractocol::with_options(opts).analyze(&app.apk);

    // §5.3: all three previously-known flight APIs plus many more.
    for fragment in ["authajax", "flight/start", "flight/poll"] {
        assert!(
            report.transactions.iter().any(|t| t.uri_regex.contains(fragment)),
            "missing {fragment}"
        );
    }
    assert!(report.transactions.len() >= 40, "14x more APIs than the manual analysis");

    // The flight/poll signature carries its constant query parts.
    let poll = report.transactions.iter().find(|t| t.uri_regex.contains("flight/poll")).unwrap();
    for k in ["searchid", "nc", "currency", "includeopaques"] {
        assert!(
            poll.query_keys().contains(&k.to_string()),
            "poll query keys: {:?}",
            poll.query_keys()
        );
    }

    // The User-Agent header is recovered and the replay retrieves fares.
    assert!(report
        .transactions
        .iter()
        .any(|t| t.headers.iter().any(|(k, v)| k == "User-Agent" && v.contains("kayakandroid"))));
    let outcome = replay_kayak_flight_search(&report, &app.server);
    assert!(outcome.auth_ok, "authajax accepted with the recovered UA");
    assert!(outcome.fares_retrieved, "flight fares retrieved from signatures alone");
}

#[test]
fn weather_async_heuristic_recovers_the_location_query() {
    let app = extractocol_corpus::app("Weather Notification").unwrap();
    let analyze = |on: bool| {
        let opts = Options {
            slice: SliceOptions { async_heuristic: on, ..Default::default() },
            ..Options::default()
        };
        Extractocol::with_options(opts).analyze(&app.apk)
    };
    let with = analyze(true);
    let without = analyze(false);
    let current = |r: &extractocol_core::AnalysisReport| {
        r.transactions
            .iter()
            .find(|t| t.uri_regex.contains("current"))
            .map(|t| t.uri_regex.clone())
            .expect("current-conditions txn")
    };
    // With the heuristic, the location-callback's query-string fragment
    // (q=<city>&units=metric) is part of the signature; without it the
    // heap-carried part is a wildcard (§3.4's motivating example).
    assert!(current(&with).contains("units=metric"), "{}", current(&with));
    assert!(!current(&without).contains("units=metric"), "{}", current(&without));
    // And the origin is attributed to GPS.
    assert!(with.transactions.iter().any(|t| t.origins.iter().any(|o| o == "gps")));
}
