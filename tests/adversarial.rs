//! Adversarial robustness property suite (ISSUE 6).
//!
//! Seeded attack traffic from `extractocol_dynamic::adversarial` against
//! the full serving path, pinning the robustness contract:
//!
//! * **totality** — every generated line parses or yields a structured
//!   error; the round-trip property holds under arbitrary byte noise;
//! * **bounded work** — regex *and* body matching run under step
//!   budgets; pathological signatures yield `BudgetExceeded`-as-non-match
//!   identically on the trie-pruned and brute-force paths;
//! * **determinism** — verdicts and deterministic-family metrics are
//!   byte-identical across runs and across `--jobs` levels.
//!
//! Seeds are fixed here; `extractocol-serve attack --seed` replays any
//! case by suite seed, and each `AttackCase` carries its derived
//! per-case seed for single-case reproduction.

use extractocol_core::metrics::Metrics;
use extractocol_core::pairing::Pairing;
use extractocol_core::report::{AnalysisReport, Stats, TxnReport};
use extractocol_core::siglang::SigPat;
use extractocol_dynamic::{generate_attacks, AdversarialConfig, AttackClass, TrafficTrace};
use extractocol_http::{HttpMethod, Request};
use extractocol_ir::rng::Rng;
use extractocol_serve::{classify_batch, classify_batch_observed, SignatureIndex};
use extractocol_serve::{AttackMetrics, ServeMetrics};

fn corpus_index_and_requests() -> (SignatureIndex, Vec<Request>) {
    let apps = extractocol_corpus::all_apps();
    let reports: Vec<_> = apps
        .iter()
        .map(|app| {
            extractocol_dynamic::conformance::analyze_app(&app.apk, app.truth.open_source, 1)
        })
        .collect();
    let index = SignatureIndex::compile(&reports);
    let requests: Vec<_> = apps
        .iter()
        .take(8)
        .flat_map(|app| {
            extractocol_dynamic::run_perfect_fuzzer(app).transactions.into_iter().map(|t| t.request)
        })
        .collect();
    (index, requests)
}

fn attack_suite(base: &[Request]) -> Vec<extractocol_dynamic::AttackCase> {
    generate_attacks(&AdversarialConfig { seed: 0xDEAD_BEEF, per_class: 8 }, base)
}

/// Satellite (a): serialize/parse round-trip under PRNG byte noise. The
/// parser must return the original trace, or a structured error — never
/// panic, never silently drop or alter a request.
#[test]
fn round_trip_survives_byte_noise_or_fails_structured() {
    let (_, requests) = corpus_index_and_requests();
    let trace = TrafficTrace {
        app: "noise".into(),
        transactions: requests
            .iter()
            .take(40)
            .cloned()
            .map(|request| extractocol_http::Transaction {
                request,
                response: extractocol_http::Response::ok(extractocol_http::Body::Empty),
            })
            .collect(),
    };
    let clean = trace.to_request_text();

    // Unmutated text round-trips exactly.
    let back = TrafficTrace::parse_request_text("noise", &clean).expect("clean round trip");
    assert_eq!(back.transactions.len(), trace.transactions.len());
    for (orig, rt) in trace.transactions.iter().zip(&back.transactions) {
        assert_eq!(orig.request.method, rt.request.method);
        assert_eq!(orig.request.uri.to_uri_string(), rt.request.uri.to_uri_string());
        assert_eq!(orig.request.body, rt.request.body);
    }

    // Mutated bytes: flip/insert/delete random bytes, parse, and demand
    // totality. When parsing still succeeds, re-serializing must be a
    // fixpoint (no silent truncation: whatever survived parses the same
    // way forever after).
    let mut rng = Rng::new(0x0B57_AC1E);
    for _ in 0..200 {
        let mut bytes = clean.clone().into_bytes();
        for _ in 0..1 + rng.below(8) {
            if bytes.is_empty() {
                break;
            }
            let at = rng.below(bytes.len());
            match rng.below(3) {
                0 => bytes[at] = rng.below(256) as u8,
                1 => bytes.insert(at, rng.below(256) as u8),
                _ => {
                    bytes.remove(at);
                }
            }
        }
        match TrafficTrace::parse_request_bytes("noise", &bytes) {
            Err(e) => {
                // Structured and anchored: the error names a line within
                // the (mutated) input.
                assert!(e.line >= 1);
                assert!(!e.to_string().is_empty());
            }
            Ok(parsed) => {
                let reserialized = parsed.to_request_text();
                let again = TrafficTrace::parse_request_text("noise", &reserialized)
                    .expect("re-serialized trace must parse");
                assert_eq!(again.transactions.len(), parsed.transactions.len());
                for (a, b) in parsed.transactions.iter().zip(&again.transactions) {
                    assert_eq!(a.request.method, b.request.method);
                    assert_eq!(a.request.uri.to_uri_string(), b.request.uri.to_uri_string());
                    assert_eq!(a.request.body, b.request.body);
                }
            }
        }
    }
}

/// Tentpole: every attack class yields a deterministic verdict with no
/// panic, and the trie-pruned path agrees with brute force on every
/// adversarial input (the differential oracle extended to hostile
/// traffic).
#[test]
fn every_attack_class_gets_deterministic_brute_equal_verdicts() {
    let (index, requests) = corpus_index_and_requests();
    let cases = attack_suite(&requests);
    assert_eq!(cases.len(), AttackClass::ALL.len() * 8);

    let mut seen_parse_errors = 0usize;
    for case in &cases {
        // First parse: total.
        let first = case.parse();
        // Second parse: byte-identical outcome (determinism).
        let second = case.parse();
        match (&first, &second) {
            (Err(a), Err(b)) => {
                assert_eq!(a, b, "nondeterministic parse error for case {}", case.id);
                seen_parse_errors += 1;
            }
            (Ok(_), Ok(_)) => {}
            _ => panic!(
                "parse nondeterminism on {:?} case {} (seed {})",
                case.class, case.id, case.seed
            ),
        }
        if let Ok(Some(req)) = first {
            let (v1, _) = index.classify(&req);
            let (v2, _) = index.classify(&req);
            assert_eq!(v1, v2, "classify nondeterministic for case {}", case.id);
            let (brute, _) = index.classify_brute(&req);
            assert_eq!(
                v1, brute,
                "trie vs brute-force divergence on {:?} case {} (seed {}): {}",
                case.class, case.id, case.seed, case.line
            );
        }
    }
    // The malformed classes must actually exercise the error paths.
    assert!(seen_parse_errors > 0, "attack suite produced no parse errors at all");
}

/// Satellite (c): the same adversarial corpus must classify to
/// byte-identical verdicts and deterministic-family metrics at jobs=1
/// vs jobs=8.
#[test]
fn adversarial_corpus_is_jobs_invariant() {
    let (index, requests) = corpus_index_and_requests();
    let cases = attack_suite(&requests);
    let parsed: Vec<Request> = cases.iter().filter_map(|c| c.parse().ok().flatten()).collect();
    assert!(parsed.len() > 20, "too few parseable attack cases: {}", parsed.len());

    let (v1, s1) = classify_batch(&index, &parsed, 1);
    let (v8, s8) = classify_batch(&index, &parsed, 8);
    assert_eq!(v1, v8, "verdicts differ between jobs=1 and jobs=8");
    assert_eq!(s1, s8, "stats differ between jobs=1 and jobs=8");

    // Deterministic metric families render byte-identically too.
    let m1 = ServeMetrics::new();
    let m8 = ServeMetrics::new();
    let t = extractocol_core::TraceCollector::disabled();
    classify_batch_observed(&index, &parsed, 1, &m1, &t);
    classify_batch_observed(&index, &parsed, 8, &m8, &t);
    assert_eq!(
        m1.registry.render_deterministic(),
        m8.registry.render_deterministic(),
        "deterministic metric families differ across jobs"
    );
}

fn txn(id: usize, method: HttpMethod, uri: SigPat) -> TxnReport {
    TxnReport {
        id,
        dp_class: "org.apache.http.client.HttpClient".into(),
        root: "t.C.go".into(),
        method,
        uri_regex: uri.to_regex(),
        uri,
        headers: Vec::new(),
        header_sigs: Vec::new(),
        request_body: None,
        response: None,
        pairing: Pairing::Unique,
        origins: Vec::new(),
        consumptions: Vec::new(),
    }
}

fn report(app: &str, txns: Vec<TxnReport>) -> AnalysisReport {
    AnalysisReport {
        app: app.into(),
        transactions: txns,
        dependencies: Vec::new(),
        stats: Stats::default(),
        metrics: Metrics::default(),
    }
}

/// A nested-Rep/Or signature whose structural match blows the step
/// budget on a long ambiguous input (the regexlite regression test's
/// shape, lifted to the serving index).
fn pathological_sig() -> SigPat {
    let arm = SigPat::lit("q=")
        .concat(SigPat::lit("cats").or(SigPat::lit("dogs")).or(SigPat::any_str()))
        .concat(SigPat::lit("&"));
    // Each extra Rep layer re-runs the position-set closure, multiplying
    // step cost; eight layers over a ~220 KiB ambiguous input needs ~7M
    // steps, comfortably past DEFAULT_MATCH_BUDGET (~4.2M).
    let mut rep = SigPat::Rep(Box::new(arm));
    for _ in 1..8 {
        rep = SigPat::Rep(Box::new(rep));
    }
    SigPat::lit("http://h/api?").concat(rep).concat(SigPat::lit("tail"))
}

/// Tentpole hardening: budget blowout is `BudgetExceeded`-as-non-match
/// under BOTH the trie and brute-force paths, counted in the probe, and
/// deterministic — so the differential oracle holds even when budgets
/// trip.
#[test]
fn budget_exhaustion_is_a_deterministic_nonmatch_on_both_paths() {
    let index = SignatureIndex::compile(&[report(
        "patho",
        vec![txn(0, HttpMethod::Get, pathological_sig())],
    )]);

    // Long ambiguous input with the right literal prefix (survives trie
    // pruning) and no trailing "tail": the structural matcher burns its
    // budget on Rep-loop fan-out.
    let uri = format!("http://h/api?{}", "q=cats&q=0&".repeat(20000));
    let req = Request::get(&uri);

    let (v_trie, p_trie) = index.classify(&req);
    let (v_brute, p_brute) = index.classify_brute(&req);
    assert_eq!(v_trie, extractocol_serve::Verdict::Unmatched);
    assert_eq!(v_trie, v_brute);
    assert!(p_trie.budget_exhausted > 0, "expected the pathological probe to exhaust the budget");
    assert_eq!(p_trie.budget_exhausted, p_brute.budget_exhausted);

    // Determinism: identical probes on repeat runs.
    let (v2, p2) = index.classify(&req);
    assert_eq!(v_trie, v2);
    assert_eq!(p_trie.budget_exhausted, p2.budget_exhausted);

    // A matching short input still matches on both paths.
    let ok = Request::get("http://h/api?q=cats&tail");
    assert_eq!(index.classify(&ok).0, index.classify_brute(&ok).0);
    assert_eq!(index.classify(&ok).0, extractocol_serve::Verdict::Match(0));
}

/// Tentpole hardening: deep and giant bodies are either parsed under the
/// depth/node/byte limits or rejected with a structured error — and a
/// body whose *matching* (not parsing) would blow the budget is a
/// deterministic non-match on both classify paths.
#[test]
fn body_budgets_bound_parsing_and_matching() {
    use extractocol_core::sigbuild::BodySig;
    use extractocol_core::siglang::JsonSig;

    // Parsing: a 100k-deep nesting bomb is a structured parse error.
    let bomb = format!("POST\thttp://h/api\tapplication/json\t{}", "[".repeat(100_000));
    let err = TrafficTrace::parse_request_text("bomb", &bomb).unwrap_err();
    assert!(err.to_string().contains("depth limit"), "{err}");

    // A 100-deep document parses fine (limit is 128)...
    let deep_json = format!("{}1{}", "[".repeat(100), "]".repeat(100));
    let line = format!("POST\thttp://h/api\tapplication/json\t{deep_json}");
    let trace = TrafficTrace::parse_request_text("deep", &line).expect("within limits");
    let deep_req = trace.transactions[0].request.clone();

    // ...and matching it against a body signature is budget-bounded and
    // identical across both classify paths.
    let mut body_sig = JsonSig::object();
    body_sig.put("k", JsonSig::Unknown);
    let mut t = txn(0, HttpMethod::Post, SigPat::lit("http://h/api"));
    t.request_body = Some(BodySig::Json(body_sig.clone()));
    let index = SignatureIndex::compile(&[report("deep", vec![t])]);
    let (v_trie, _) = index.classify(&deep_req);
    let (v_brute, _) = index.classify_brute(&deep_req);
    assert_eq!(v_trie, v_brute);

    // Direct check: the budgeted body matcher reports BudgetExceeded
    // (distinct from false) when starved, like the regex engine.
    let sig = BodySig::Json(body_sig);
    let body = deep_req.body.clone();
    let starved = extractocol_core::conformance::request_body_matches_budgeted(&sig, &body, 3);
    assert!(starved.is_err(), "expected BudgetExceeded under a starved budget");
    let funded =
        extractocol_core::conformance::request_body_matches_budgeted(&sig, &body, usize::MAX);
    assert_eq!(funded, Ok(false));
}

/// Tentpole observability: the attack bench fills the per-class counter
/// families and the p99-under-attack histogram, and the deterministic
/// families are identical across repeat runs.
#[test]
fn attack_metrics_are_deterministic_and_complete() {
    let (index, requests) = corpus_index_and_requests();
    let cases = attack_suite(&requests);

    let run = || {
        let m = ServeMetrics::new();
        let a = AttackMetrics::on(&m.registry);
        for case in &cases {
            match case.parse() {
                Err(_) => a.observe_parse_error(case.class, None),
                Ok(None) => {}
                Ok(Some(req)) => {
                    let (verdict, probe) = index.classify(&req);
                    a.observe_classified(case.class, &verdict, &probe, None);
                }
            }
        }
        m.registry.render_deterministic()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "attack counters differ across identical runs");

    // Every class renders its counter family.
    for class in AttackClass::ALL {
        let needle = format!("serve_attack_cases_total{{class=\"{}\"}}", class.name());
        assert!(first.contains(&needle), "missing {needle} in:\n{first}");
    }
    assert!(first.contains("serve_attack_parse_errors_total"));
    assert!(first.contains("serve_attack_budget_exhausted_total"));
    assert!(first.contains("serve_attack_verdict_total"));
}
