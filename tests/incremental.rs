//! Integration tests for the targeted + incremental analysis subsystem:
//! persistent `.exsm` summary caching, one-method invalidation bounds,
//! archive round-trip determinism, hostile-archive refusal, and the
//! byte-identity of targeted/incremental runs with the cold whole-program
//! pipeline at any worker count.

use extractocol_core::{AnalysisReport, Extractocol, Options};
use extractocol_incr::archive::{self, SummaryArchiveError};
use extractocol_ir::{Apk, Const, Expr, Stmt, Value};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("exsm_it_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn opts(jobs: usize, targeted: bool, cache: Option<PathBuf>) -> Options {
    Options { jobs, targeted, summary_cache_path: cache, ..Options::default() }
}

fn analyze(apk: &Apk, o: Options) -> AnalysisReport {
    Extractocol::with_options(o).analyze(apk)
}

fn json(r: &AnalysisReport) -> String {
    r.to_json().to_json()
}

/// Appends `"x"` to the first string constant in the named method,
/// returning whether a constant was found. Any such change alters the
/// method's canonical printed form and therefore its content hash.
fn perturb_method(apk: &mut Apk, class: &str, method: &str) -> bool {
    let on_value = |v: &mut Value| -> bool {
        if let Value::Const(Const::Str(s)) = v {
            s.push('x');
            return true;
        }
        false
    };
    for c in &mut apk.classes {
        if c.name != class {
            continue;
        }
        for m in &mut c.methods {
            if m.name != method {
                continue;
            }
            for st in &mut m.body {
                match st {
                    Stmt::Assign { expr: Expr::Invoke(call), .. } | Stmt::Invoke(call) => {
                        for a in &mut call.args {
                            if on_value(a) {
                                return true;
                            }
                        }
                    }
                    Stmt::Assign { expr: Expr::Use(Value::Const(Const::Str(s))), .. } => {
                        s.push('x');
                        return true;
                    }
                    _ => {}
                }
            }
        }
    }
    false
}

/// The `(class, method)` of the first transaction's root — a method that
/// is certainly inside every DP cone and whose strings feed a signature.
fn first_root(report: &AnalysisReport) -> (String, String) {
    let root = &report.transactions[0].root;
    let dot = root.rfind('.').unwrap();
    (root[..dot].to_string(), root[dot + 1..].to_string())
}

/// A warm re-run of an unchanged app answers every summary from the
/// persistent cache and reproduces the cold report byte-for-byte.
#[test]
fn warm_rerun_is_fully_cached_and_byte_identical() {
    let app = extractocol_corpus::app("iFixIt").unwrap();
    let dir = tmp_dir("warm");
    let path = dir.join("app.exsm");

    let cold = analyze(&app.apk, opts(1, false, Some(path.clone())));
    let ci = cold.metrics.incr.as_ref().expect("incr stats on cold run");
    assert_eq!(ci.preloaded, 0, "no archive existed yet");
    assert!(ci.saved > 0, "cold run must persist summaries: {}", ci.to_line());

    let warm = analyze(&app.apk, opts(1, false, Some(path)));
    let wi = warm.metrics.incr.as_ref().unwrap();
    assert_eq!(wi.invalidated, 0, "{}", wi.to_line());
    assert_eq!(wi.recomputed_summaries, 0, "{}", wi.to_line());
    assert!(wi.hit_rate() >= 0.9, "{}", wi.to_line());
    assert_eq!(json(&cold), json(&warm), "cache reuse must not change the report");
}

/// Editing one method invalidates only that method's one-hop neighborhood:
/// the warm re-run recomputes ≤5% of methods yet produces a report
/// byte-identical to a cold run of the mutated app.
#[test]
fn one_method_mutation_recomputes_at_most_five_percent() {
    let app = extractocol_corpus::app("5miles").unwrap();
    let dir = tmp_dir("mutation");
    let path = dir.join("app.exsm");

    let cold = analyze(&app.apk, opts(1, false, Some(path.clone())));
    let (class, method) = first_root(&cold);
    let mut mutated = app.apk.clone();
    assert!(
        perturb_method(&mut mutated, &class, &method),
        "no string constant in {class}.{method}"
    );

    let warm = analyze(&mutated, opts(1, false, Some(path)));
    let wi = warm.metrics.incr.as_ref().unwrap();
    assert!(wi.invalidated > 0, "the edited method's summaries must go stale: {}", wi.to_line());
    assert!(wi.reused_summaries > 0, "untouched summaries must survive: {}", wi.to_line());
    assert!(
        wi.recomputed_methods * 20 <= wi.total_methods,
        "recompute bound blown: {}",
        wi.to_line()
    );

    let fresh = analyze(&mutated, opts(1, false, None));
    assert!(fresh.metrics.incr.is_none(), "no cache path, no incr stats");
    assert_eq!(json(&fresh), json(&warm), "warm run must equal a cold run of the mutated app");
}

/// `write(read(write(x))) == write(x)`: the archive codec is idempotent on
/// a real engine export.
#[test]
fn archive_round_trip_is_idempotent() {
    let app = extractocol_corpus::app("radio reddit").unwrap();
    let dir = tmp_dir("roundtrip");
    let path = dir.join("app.exsm");
    analyze(&app.apk, opts(1, false, Some(path.clone())));

    let bytes = std::fs::read(&path).unwrap();
    let arch = archive::read_archive(&bytes).expect("self-written archive must parse");
    assert!(!arch.summaries.is_empty());
    assert_eq!(archive::write_archive(&arch), bytes);
}

/// Corrupt, truncated, or version-skewed archives are refused with typed
/// errors at the codec layer — and the pipeline degrades to a cold run
/// (recording the error) instead of failing or mis-analyzing.
#[test]
fn hostile_archives_are_refused_and_run_cold() {
    let app = extractocol_corpus::app("radio reddit").unwrap();
    let dir = tmp_dir("hostile");
    let path = dir.join("app.exsm");
    let clean = analyze(&app.apk, opts(1, false, Some(path.clone())));
    let bytes = std::fs::read(&path).unwrap();

    // Payload bit-flip → checksum mismatch.
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF;
    assert!(matches!(
        archive::read_archive(&corrupt),
        Err(SummaryArchiveError::ChecksumMismatch { .. })
    ));

    // Future format version → version mismatch (bytes 8..12 of the header).
    let mut skewed = bytes.clone();
    skewed[8] = skewed[8].wrapping_add(1);
    assert!(matches!(
        archive::read_archive(&skewed),
        Err(SummaryArchiveError::VersionMismatch { .. })
    ));

    // Severed file → truncation, not a panic.
    assert!(archive::read_archive(&bytes[..bytes.len() / 2]).is_err());
    assert!(matches!(
        archive::read_archive(&bytes[..7]),
        Err(SummaryArchiveError::Truncated { .. })
    ));

    // Wrong magic.
    let mut magic = bytes.clone();
    magic[0] = b'X';
    assert!(matches!(archive::read_archive(&magic), Err(SummaryArchiveError::BadMagic)));

    // Pipeline-level: a trashed cache file degrades to a cold run with the
    // error recorded, and the report is unaffected.
    std::fs::write(&path, &corrupt).unwrap();
    let recovered = analyze(&app.apk, opts(1, false, Some(path)));
    let ri = recovered.metrics.incr.as_ref().unwrap();
    assert!(ri.load_error.is_some(), "{}", ri.to_line());
    assert_eq!(ri.reused_summaries, 0);
    assert_eq!(json(&clean), json(&recovered));
}

/// Summaries computed under different options (or for a different app) are
/// incomparable: the epoch check invalidates the whole archive.
#[test]
fn epoch_mismatch_invalidates_everything() {
    let app = extractocol_corpus::app("radio reddit").unwrap();
    let dir = tmp_dir("epoch");
    let path = dir.join("app.exsm");
    analyze(&app.apk, opts(1, true, Some(path.clone())));

    // Same app, targeted off → different epoch.
    let other = analyze(&app.apk, opts(1, false, Some(path)));
    let oi = other.metrics.incr.as_ref().unwrap();
    assert!(oi.epoch_mismatch, "{}", oi.to_line());
    assert_eq!(oi.valid, 0);
    assert_eq!(oi.reused_summaries, 0);
}

/// Targeted + incremental analysis is jobs-invariant: reports and archive
/// bytes agree between a sequential and a parallel run.
#[test]
fn targeted_incremental_is_jobs_invariant() {
    let app = extractocol_corpus::app("Diode").unwrap();
    let dir = tmp_dir("jobs");
    let (p1, p8) = (dir.join("j1.exsm"), dir.join("j8.exsm"));

    let r1 = analyze(&app.apk, opts(1, true, Some(p1.clone())));
    let r8 = analyze(&app.apk, opts(8, true, Some(p8.clone())));
    assert_eq!(json(&r1), json(&r8));
    assert_eq!(
        std::fs::read(&p1).unwrap(),
        std::fs::read(&p8).unwrap(),
        "archive bytes must not depend on the worker count"
    );
    assert_eq!(r1.metrics.incr.as_ref().unwrap(), r8.metrics.incr.as_ref().unwrap());
}

/// Targeted mode skips whole classes (the demand-driven payoff), exports
/// the skip counters through the deterministic metrics registry, and still
/// reproduces the whole-program report byte-for-byte.
#[test]
fn targeted_skips_classes_and_exports_metrics() {
    let app = extractocol_corpus::app("5miles").unwrap();
    let whole = analyze(&app.apk, opts(1, false, None));
    let targeted = analyze(&app.apk, opts(1, true, None));

    let tg = targeted.metrics.targeted.as_ref().expect("targeted stats");
    assert!(tg.skipped_classes >= 1, "{tg:?}");
    assert!(tg.cone_methods < tg.total_methods, "{tg:?}");
    assert_eq!(json(&whole), json(&targeted), "targeted mode must not change the report");

    let det = targeted.metrics.export_registry().render_deterministic();
    assert!(det.contains("incr_targeted_skipped_classes_total"), "{det}");
    assert!(det.contains("incr_targeted_cone_methods_total"), "{det}");
}

/// The `--no-incremental` ablation: with the switch off the cache path is
/// neither read nor written.
#[test]
fn no_incremental_ignores_the_cache_path() {
    let app = extractocol_corpus::app("radio reddit").unwrap();
    let dir = tmp_dir("ablate");
    let path = dir.join("app.exsm");
    let o = Options {
        incremental: false,
        summary_cache_path: Some(path.clone()),
        jobs: 1,
        ..Options::default()
    };
    let r = analyze(&app.apk, o);
    assert!(r.metrics.incr.is_none());
    assert!(!path.exists(), "ablated run must not write the archive");
}
