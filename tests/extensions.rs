//! The extensions §4 sketches as future work, implemented and tested:
//!
//! * **Multi-hop asynchronous chains** — "one can perform multiple
//!   iterations until it does not discover new dependencies for better
//!   accuracy and wider coverage";
//! * **Modeling additional network APIs via the plugin hook** — "direct
//!   use of socket can be handled by modeling socket APIs"; here the
//!   deliberately-unmodeled `com.adlib.Tracker` library becomes visible
//!   once registered, recovering the traffic only fuzzing saw before.

use extractocol_core::semantics::{DpRequestLoc, DpResponseLoc};
use extractocol_core::slicing::SliceOptions;
use extractocol_core::{stubs, Extractocol, Options};
use extractocol_http::{HttpMethod, Regex};
use extractocol_ir::{ApkBuilder, Type, Value};

/// A two-hop async chain: a server push writes field A, a timer copies A
/// into field B, a click sends B. One hop recovers nothing of the query;
/// two hops recover it.
#[test]
fn multi_hop_async_chains_recover_with_more_iterations() {
    let mut b = ApkBuilder::new("hops", "t");
    stubs::install(&mut b);
    b.class("t.C", |c| {
        let a = c.field("mStageA", Type::string());
        let bb = c.field("mStageB", Type::string());
        let a2 = a.clone();
        c.method("onPush", vec![Type::string()], Type::Void, move |m| {
            let this = m.recv("t.C");
            let v = m.arg(0, "payload");
            let sb = m.new_obj("java.lang.StringBuilder", vec![Value::str("topic=")]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(v)]);
            let s = m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
            m.put_field(this, &a2, s);
            m.ret_void();
        });
        let (a3, b3) = (a.clone(), bb.clone());
        c.method("onTimer", vec![], Type::Void, move |m| {
            let this = m.recv("t.C");
            let v = m.temp(Type::string());
            m.get_field(v, this, &a3);
            m.put_field(this, &b3, v);
            m.ret_void();
        });
        c.method("onClick", vec![], Type::Void, move |m| {
            let this = m.recv("t.C");
            let v = m.temp(Type::string());
            m.get_field(v, this, &bb);
            let sb = m.new_obj(
                "java.lang.StringBuilder",
                vec![Value::str("http://push.example.com/sub?")],
            );
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(v)]);
            let url = m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
            let req = m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
            let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
            m.vcall_void(
                client,
                "org.apache.http.client.HttpClient",
                "execute",
                vec![Value::Local(req)],
            );
            m.ret_void();
        });
    });
    let apk = b.build();
    let uri = |hops: usize| {
        let opts = Options {
            slice: SliceOptions { async_hops: hops, ..SliceOptions::default() },
            ..Options::default()
        };
        let r = Extractocol::with_options(opts).analyze(&apk);
        r.transactions[0].uri_regex.clone()
    };
    // One hop: stage B's store is found, but stage A's construction (the
    // `topic=` fragment) is still behind a second event boundary.
    assert!(!uri(1).contains("topic="), "one hop: {}", uri(1));
    // Two hops: the full query fragment is recovered.
    assert!(uri(2).contains("topic="), "two hops: {}", uri(2));
    let re = Regex::new(&uri(2)).unwrap();
    assert!(re.is_match("http://push.example.com/sub?topic=news"));
}

/// MusicDownloader's ad/analytics traffic is invisible to the default
/// model (raw-socket library). Registering the library's API through the
/// plugin hooks makes the analysis recover it — static counts then exceed
/// what even manual fuzzing observed.
#[test]
fn plugin_hook_recovers_unmodeled_library_traffic() {
    let app = extractocol_corpus::app("MusicDownloader").unwrap();

    // Default model: the Tracker traffic is missed (§5.1's missed rows).
    let default_report = Extractocol::new().analyze(&app.apk);
    let default_gets = default_report.method_count(HttpMethod::Get);

    // Plugin: model the ad library's send() / sendPost() as demarcation
    // points ("Extractocol can be extended to support most of them", §4).
    let mut analyzer = Extractocol::new();
    analyzer.model_mut().register_dp(
        "com.adlib.Tracker",
        "send",
        Some(1),
        DpRequestLoc::Arg(0),
        DpResponseLoc::Consumed,
        Some(HttpMethod::Get),
    );
    analyzer.model_mut().register_dp(
        "com.adlib.Tracker",
        "sendPost",
        Some(2),
        DpRequestLoc::Arg(0),
        DpResponseLoc::Consumed,
        Some(HttpMethod::Post),
    );
    let extended_report = analyzer.analyze(&app.apk);
    let extended_gets = extended_report.method_count(HttpMethod::Get);

    let socket_txns =
        app.truth.txns.iter().filter(|t| !t.static_visible && t.method == HttpMethod::Get).count();
    assert!(socket_txns > 0, "MusicDownloader carries socket traffic");
    assert_eq!(
        extended_gets,
        default_gets + socket_txns,
        "the plugin recovers exactly the socket transactions\n{}",
        extended_report.to_table()
    );
}
