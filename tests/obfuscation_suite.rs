//! §5.1's obfuscation experiment: "For open source apps, we obfuscate
//! their APKs using ProGuard and verify that the same results hold as
//! non-obfuscated APKs."

use extractocol_core::Extractocol;
use extractocol_ir::obfuscate::{obfuscate, ObfuscationOptions};
use std::collections::BTreeSet;

fn signature_set(report: &extractocol_core::AnalysisReport) -> BTreeSet<(String, String)> {
    report.transactions.iter().map(|t| (t.method.to_string(), t.uri_regex.clone())).collect()
}

#[test]
fn app_code_obfuscation_preserves_all_results() {
    let analyzer = Extractocol::new();
    for app in extractocol_corpus::open_source_apps() {
        let plain = analyzer.analyze(&app.apk);
        let (obf_apk, _) = obfuscate(&app.apk, &ObfuscationOptions::default());
        let obf = analyzer.analyze(&obf_apk);
        assert_eq!(
            signature_set(&plain),
            signature_set(&obf),
            "{}: signatures must survive app-code renaming",
            app.truth.name
        );
        assert_eq!(
            plain.pair_count(),
            obf.pair_count(),
            "{}: pairing must survive renaming",
            app.truth.name
        );
        assert_eq!(
            plain.dependencies.len(),
            obf.dependencies.len(),
            "{}: dependency count must survive renaming",
            app.truth.name
        );
    }
}

#[test]
fn library_obfuscation_recovers_through_shape_matching() {
    // Harder mode: bundled libraries renamed too; the §3.4 mapper must
    // recover enough of them for identical signatures. We check the apps
    // whose stacks the mapper can disambiguate (okhttp/retrofit/gson);
    // structural twins (BeeFramework vs loopj) legitimately degrade.
    let analyzer = Extractocol::new();
    for name in ["blippex", "TZM", "Diode", "radio reddit"] {
        let app = extractocol_corpus::app(name).unwrap();
        let plain = analyzer.analyze(&app.apk);
        let (obf_apk, _) = obfuscate(
            &app.apk,
            &ObfuscationOptions { obfuscate_libraries: true, extra_keep_prefixes: vec![] },
        );
        let obf = analyzer.analyze(&obf_apk);
        assert_eq!(
            signature_set(&plain),
            signature_set(&obf),
            "{name}: signatures must survive library renaming\nplain:\n{}\nobf:\n{}",
            plain.to_table(),
            obf.to_table()
        );
        assert!(
            obf.stats.deobfuscated_classes > 0,
            "{name}: the mapper must have recovered library classes"
        );
    }
}

#[test]
fn obfuscation_keeps_platform_overrides_and_constants() {
    let app = extractocol_corpus::app("Diode").unwrap();
    let (obf, map) = obfuscate(&app.apk, &ObfuscationOptions::default());
    // Lifecycle/callback overrides keep their names.
    assert!(
        !map.methods.keys().any(|(_, name, _)| name == "doInBackground" || name == "onPostExecute"),
        "platform overrides must not be renamed"
    );
    // String constants survive (URLs are still visible in the binary).
    let txt = extractocol_ir::printer::print_apk(&obf);
    assert!(txt.contains("http://www.reddit.com/search/.json?q="));
}
