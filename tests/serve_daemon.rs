//! Daemon behavior under real corpus traffic (ISSUE 8): the line
//! protocol answers every request, hot swap is atomic with zero dropped
//! in-flight requests, and the swap/load instrument families land in the
//! metrics exposition.

use extractocol_serve::daemon::{send_lines, Reply};
use extractocol_serve::{write_archive, Daemon, DaemonConfig, SignatureIndex, Verdict};
use std::sync::Arc;

fn app_index(name: &str) -> SignatureIndex {
    let app = extractocol_corpus::app(name).expect("corpus app");
    let report = extractocol_dynamic::conformance::analyze_app(&app.apk, app.truth.open_source, 1);
    SignatureIndex::compile(&[report])
}

fn app_traffic(name: &str) -> Vec<String> {
    let app = extractocol_corpus::app(name).expect("corpus app");
    extractocol_dynamic::run_perfect_fuzzer(&app)
        .to_request_text()
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn daemon_replies_agree_with_direct_classification() {
    let index = app_index("radio reddit");
    let daemon = Daemon::new(index.clone(), DaemonConfig::default());
    let lines = app_traffic("radio reddit");
    assert!(!lines.is_empty());
    for line in &lines {
        let req = extractocol_dynamic::parse_request_line(line)
            .expect("fuzzer traffic parses")
            .expect("non-empty line");
        let expected = match index.classify(&req).0 {
            Verdict::Match(id) => {
                let sig = index.sig(id);
                format!("match\t{}\t{}\t{}", sig.app, sig.txn_id, sig.dp_class)
            }
            Verdict::Unmatched => "unmatched".into(),
        };
        assert_eq!(daemon.process_line(line), Reply::Line(expected), "on {line:?}");
    }
}

#[test]
fn tcp_daemon_answers_all_requests_across_a_hot_swap() {
    // Serve app A (blippex — one concrete literal-prefix signature, so
    // foreign traffic can't match it), then hot-swap to an index
    // covering A+B while a client is mid-stream. Every line must get a
    // response (the zero-dropped guarantee) and post-swap traffic for B
    // must match.
    let index_a = app_index("blippex");
    let daemon = Arc::new(Daemon::new(index_a, DaemonConfig::default()));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = {
        let d = Arc::clone(&daemon);
        std::thread::spawn(move || d.serve_tcp(listener).expect("serve"))
    };

    let app_b = extractocol_corpus::app("radio reddit").expect("corpus app");
    let report_a = {
        let app = extractocol_corpus::app("blippex").unwrap();
        extractocol_dynamic::conformance::analyze_app(&app.apk, app.truth.open_source, 1)
    };
    let report_b =
        extractocol_dynamic::conformance::analyze_app(&app_b.apk, app_b.truth.open_source, 1);
    let swapped_index = SignatureIndex::compile(&[report_a, report_b]);
    let archive_path =
        std::env::temp_dir().join(format!("extractocol-daemon-swap-{}.exsv", std::process::id()));
    std::fs::write(&archive_path, write_archive(&swapped_index)).expect("write archive");

    let traffic_a = app_traffic("blippex");
    let traffic_b = app_traffic("radio reddit");
    let mut input = String::new();
    for l in &traffic_a {
        input.push_str(l);
        input.push('\n');
    }
    // Pre-swap, B's traffic must be unmatched; post-swap it must match.
    for l in &traffic_b {
        input.push_str(l);
        input.push('\n');
    }
    input.push_str(&format!("SWAP\t{}\n", archive_path.display()));
    for l in &traffic_b {
        input.push_str(l);
        input.push('\n');
    }
    input.push_str("STATS\nSHUTDOWN\n");

    let responses = send_lines(&addr, &input).expect("send");
    server.join().expect("server thread");
    let _ = std::fs::remove_file(&archive_path);

    let expected = traffic_a.len() + 2 * traffic_b.len() + 3;
    assert_eq!(responses.len(), expected, "dropped responses: {responses:?}");

    let mut i = 0;
    for _ in &traffic_a {
        assert!(responses[i].starts_with("match\tblippex\t"), "{}", responses[i]);
        i += 1;
    }
    for _ in &traffic_b {
        assert_eq!(responses[i], "unmatched", "pre-swap radio reddit traffic must not match");
        i += 1;
    }
    assert!(responses[i].starts_with("swapped\tgeneration=2"), "{}", responses[i]);
    i += 1;
    for _ in &traffic_b {
        assert!(responses[i].starts_with("match\tradio reddit\t"), "{}", responses[i]);
        i += 1;
    }
    assert!(responses[i].contains("generation=2"), "{}", responses[i]);
    assert!(responses[i].contains("swaps=1"), "{}", responses[i]);
    assert_eq!(responses[i + 1], "bye");

    // The swap/load families are in the exposition output.
    let metrics = daemon.registry.render();
    assert!(metrics.contains("serve_daemon_swaps_total 1"), "{metrics}");
    assert!(metrics.contains("serve_daemon_index_generation 2"), "{metrics}");
    assert!(metrics.contains("serve_daemon_index_load_us_count 1"), "{metrics}");
    assert!(metrics.contains("serve_daemon_requests_total"), "{metrics}");
    assert!(metrics.contains("serve_daemon_drain_timeouts_total 0"), "{metrics}");
}

#[test]
fn concurrent_clients_see_no_drops_while_swaps_churn() {
    // Hammer the daemon from several clients while the index is swapped
    // back and forth; every request gets a well-formed verdict line.
    let index = app_index("radio reddit");
    let archive_v1 = write_archive(&index);
    let daemon = Arc::new(Daemon::new(index, DaemonConfig::default()));
    let lines: Arc<Vec<String>> = Arc::new(app_traffic("radio reddit"));

    let swapper = {
        let d = Arc::clone(&daemon);
        let bytes = archive_v1.clone();
        std::thread::spawn(move || {
            for _ in 0..20 {
                d.swap_archive_bytes(&bytes).expect("swap");
            }
        })
    };
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let d = Arc::clone(&daemon);
            let lines = Arc::clone(&lines);
            std::thread::spawn(move || {
                let mut answered = 0usize;
                for _ in 0..50 {
                    for line in lines.iter() {
                        match d.process_line(line) {
                            Reply::Line(r) => {
                                assert!(
                                    r.starts_with("match\t") || r == "unmatched",
                                    "unexpected reply {r:?}"
                                );
                                answered += 1;
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                }
                answered
            })
        })
        .collect();
    swapper.join().expect("swapper");
    let per_client = 50 * lines.len();
    for c in clients {
        assert_eq!(c.join().expect("client"), per_client);
    }
    assert_eq!(daemon.generation(), 21, "20 swaps committed");
}
