//! Focused integration tests for analysis features the corpus exercises
//! only lightly: SharedPreferences-mediated dependencies, shared response
//! handlers (the not-one-to-one pairing case §3.3 mentions), static-field
//! cells, and the multi-stack semantic model.

use extractocol_core::interdep::DepVia;
use extractocol_core::pairing::Pairing;
use extractocol_core::{stubs, Extractocol};
use extractocol_http::HttpMethod;
use extractocol_ir::{ApkBuilder, Type, Value};

/// A login that stashes its token in SharedPreferences, and a fetch that
/// reads it back — the prefs-cell dependency channel.
#[test]
fn shared_preferences_bridge_transactions() {
    let mut b = ApkBuilder::new("prefs", "t");
    stubs::install(&mut b);
    b.class("t.Api", |c| {
        c.method("login", vec![], Type::Void, |m| {
            m.recv("t.Api");
            let req = m.new_obj(
                "org.apache.http.client.methods.HttpPost",
                vec![Value::str("https://s/login")],
            );
            let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
            let resp = m.vcall(
                client,
                "org.apache.http.client.HttpClient",
                "execute",
                vec![Value::Local(req)],
                Type::object("org.apache.http.HttpResponse"),
            );
            let ent = m.vcall(
                resp,
                "org.apache.http.HttpResponse",
                "getEntity",
                vec![],
                Type::object("org.apache.http.HttpEntity"),
            );
            let body = m.scall(
                "org.apache.http.util.EntityUtils",
                "toString",
                vec![Value::Local(ent)],
                Type::string(),
            );
            let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
            let tok = m.vcall(
                j,
                "org.json.JSONObject",
                "getString",
                vec![Value::str("session")],
                Type::string(),
            );
            let prefs = m.new_obj("android.content.SharedPreferences", vec![]);
            let ed = m.vcall(
                prefs,
                "android.content.SharedPreferences",
                "edit",
                vec![],
                Type::object("android.content.SharedPreferences$Editor"),
            );
            m.vcall_void(
                ed,
                "android.content.SharedPreferences$Editor",
                "putString",
                vec![Value::str("session_token"), Value::Local(tok)],
            );
            m.ret_void();
        });
        c.method("fetch", vec![], Type::Void, |m| {
            m.recv("t.Api");
            let prefs = m.new_obj("android.content.SharedPreferences", vec![]);
            let tok = m.vcall(
                prefs,
                "android.content.SharedPreferences",
                "getString",
                vec![Value::str("session_token"), Value::str("")],
                Type::string(),
            );
            let sb = m.new_obj("java.lang.StringBuilder", vec![Value::str("https://s/data?s=")]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(tok)]);
            let url = m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
            let req = m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
            let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
            m.vcall_void(
                client,
                "org.apache.http.client.HttpClient",
                "execute",
                vec![Value::Local(req)],
            );
            m.ret_void();
        });
    });
    let report = Extractocol::new().analyze(&b.build());
    assert_eq!(report.transactions.len(), 2);
    let edge = report
        .dependencies
        .iter()
        .find(|d| matches!(&d.via, DepVia::Prefs(k) if k == "session_token"))
        .unwrap_or_else(|| panic!("prefs dependency expected: {:?}", report.dependencies));
    assert_eq!(edge.resp_field.as_deref(), Some("session"));
    assert_eq!(edge.req_field.as_deref(), Some("uri"));
}

/// Two requests whose responses funnel through one common handler: the
/// paper notes "pairing may not always be one-to-one in general as there
/// might be a common response handler for multiple requests".
#[test]
fn common_response_handler_is_reported_as_shared() {
    let mut b = ApkBuilder::new("shared", "t");
    stubs::install(&mut b);
    b.class("t.Net", |c| {
        c.static_method("common", vec![Type::string()], Type::Void, |m| {
            let url = m.arg(0, "url");
            let req = m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
            let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
            let resp = m.vcall(
                client,
                "org.apache.http.client.HttpClient",
                "execute",
                vec![Value::Local(req)],
                Type::object("org.apache.http.HttpResponse"),
            );
            // The shared handler parses every response the same way.
            let ent = m.vcall(
                resp,
                "org.apache.http.HttpResponse",
                "getEntity",
                vec![],
                Type::object("org.apache.http.HttpEntity"),
            );
            let body = m.scall(
                "org.apache.http.util.EntityUtils",
                "toString",
                vec![Value::Local(ent)],
                Type::string(),
            );
            let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
            let v = m.vcall(
                j,
                "org.json.JSONObject",
                "getString",
                vec![Value::str("status")],
                Type::string(),
            );
            let _ = v;
            m.ret_void();
        });
        c.static_method("requestA", vec![], Type::Void, |m| {
            let u = m.temp(Type::string());
            m.cstr(u, "http://svc/a");
            m.scall_void("t.Net", "common", vec![Value::Local(u)]);
            m.ret_void();
        });
        c.static_method("requestB", vec![], Type::Void, |m| {
            let u = m.temp(Type::string());
            m.cstr(u, "http://svc/b");
            m.scall_void("t.Net", "common", vec![Value::Local(u)]);
            m.ret_void();
        });
    });
    let report = Extractocol::new().analyze(&b.build());
    assert_eq!(report.transactions.len(), 2, "{}", report.to_table());
    for t in &report.transactions {
        assert_eq!(
            t.pairing,
            Pairing::SharedHandler,
            "both candidates share the response code: {}",
            report.to_table()
        );
        assert!(t.response.is_some(), "the shared handler's parse is still attributed");
    }
}

/// Static fields carry tokens between transactions too.
#[test]
fn static_field_cells_create_dependencies() {
    let mut b = ApkBuilder::new("statics", "t");
    stubs::install(&mut b);
    b.class("t.Api", |c| {
        let sf = c.static_field("TOKEN", Type::string());
        let sf2 = sf.clone();
        c.static_method("login", vec![], Type::Void, move |m| {
            let req = m.new_obj(
                "org.apache.http.client.methods.HttpGet",
                vec![Value::str("https://s/token")],
            );
            let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
            let resp = m.vcall(
                client,
                "org.apache.http.client.HttpClient",
                "execute",
                vec![Value::Local(req)],
                Type::object("org.apache.http.HttpResponse"),
            );
            let ent = m.vcall(
                resp,
                "org.apache.http.HttpResponse",
                "getEntity",
                vec![],
                Type::object("org.apache.http.HttpEntity"),
            );
            let body = m.scall(
                "org.apache.http.util.EntityUtils",
                "toString",
                vec![Value::Local(ent)],
                Type::string(),
            );
            let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
            let tok = m.vcall(
                j,
                "org.json.JSONObject",
                "getString",
                vec![Value::str("token")],
                Type::string(),
            );
            m.put_static(&sf2, tok);
            m.ret_void();
        });
        let sf3 = sf.clone();
        c.static_method("use_token", vec![], Type::Void, move |m| {
            let tok = m.temp(Type::string());
            m.get_static(tok, &sf3);
            let sb = m.new_obj("java.lang.StringBuilder", vec![Value::str("https://s/q?t=")]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(tok)]);
            let url = m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
            let req = m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
            let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
            m.vcall_void(
                client,
                "org.apache.http.client.HttpClient",
                "execute",
                vec![Value::Local(req)],
            );
            m.ret_void();
        });
    });
    let report = Extractocol::new().analyze(&b.build());
    assert!(
        report
            .dependencies
            .iter()
            .any(|d| matches!(&d.via, DepVia::Static(s) if s.contains("TOKEN"))),
        "static-field dependency expected: {:?}",
        report.dependencies
    );
}

/// The semantic model understands every HTTP stack the corpus mixes; a
/// single app using four stacks yields four transactions with correct
/// methods.
#[test]
fn multi_stack_app_is_fully_reconstructed() {
    let mut b = ApkBuilder::new("multi", "t");
    stubs::install(&mut b);
    b.class("t.Api", |c| {
        // apache POST
        c.method("a", vec![], Type::Void, |m| {
            m.recv("t.Api");
            let req = m.new_obj(
                "org.apache.http.client.methods.HttpPost",
                vec![Value::str("https://h/apache")],
            );
            let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
            m.vcall_void(
                client,
                "org.apache.http.client.HttpClient",
                "execute",
                vec![Value::Local(req)],
            );
            m.ret_void();
        });
        // okhttp PUT
        c.method("b", vec![], Type::Void, |m| {
            m.recv("t.Api");
            let builder = m.new_obj("okhttp3.Request$Builder", vec![]);
            m.vcall_void(
                builder,
                "okhttp3.Request$Builder",
                "url",
                vec![Value::str("https://h/okhttp")],
            );
            let mt = m.scall(
                "okhttp3.MediaType",
                "parse",
                vec![Value::str("application/json")],
                Type::object("okhttp3.MediaType"),
            );
            let rb = m.scall(
                "okhttp3.RequestBody",
                "create",
                vec![Value::Local(mt), Value::str("{}")],
                Type::object("okhttp3.RequestBody"),
            );
            m.vcall_void(builder, "okhttp3.Request$Builder", "put", vec![Value::Local(rb)]);
            let req = m.vcall(
                builder,
                "okhttp3.Request$Builder",
                "build",
                vec![],
                Type::object("okhttp3.Request"),
            );
            let client = m.new_obj("okhttp3.OkHttpClient", vec![]);
            let call = m.vcall(
                client,
                "okhttp3.OkHttpClient",
                "newCall",
                vec![Value::Local(req)],
                Type::object("okhttp3.Call"),
            );
            let resp =
                m.vcall(call, "okhttp3.Call", "execute", vec![], Type::object("okhttp3.Response"));
            let _ = resp;
            m.ret_void();
        });
        // retrofit DELETE
        c.method("c", vec![], Type::Void, |m| {
            m.recv("t.Api");
            let call = m.scall(
                "retrofit2.CallFactory",
                "create",
                vec![Value::str("DELETE"), Value::str("https://h/retrofit"), Value::null()],
                Type::object("retrofit2.Call"),
            );
            let resp = m.vcall(
                call,
                "retrofit2.Call",
                "execute",
                vec![],
                Type::object("retrofit2.Response"),
            );
            let _ = resp;
            m.ret_void();
        });
        // java.net GET
        c.method("d", vec![], Type::Void, |m| {
            m.recv("t.Api");
            let u = m.new_obj("java.net.URL", vec![Value::str("https://h/urlconn")]);
            let conn = m.vcall(
                u,
                "java.net.URL",
                "openConnection",
                vec![],
                Type::object("java.net.HttpURLConnection"),
            );
            m.vcall_void(conn, "java.net.HttpURLConnection", "connect", vec![]);
            m.ret_void();
        });
    });
    let report = Extractocol::new().analyze(&b.build());
    assert_eq!(report.transactions.len(), 4, "{}", report.to_table());
    let method_of = |frag: &str| {
        report
            .transactions
            .iter()
            .find(|t| t.uri_regex.contains(frag))
            .map(|t| t.method)
            .unwrap_or_else(|| panic!("no txn for {frag}: {}", report.to_table()))
    };
    assert_eq!(method_of("apache"), HttpMethod::Post);
    assert_eq!(method_of("okhttp"), HttpMethod::Put);
    assert_eq!(method_of("retrofit"), HttpMethod::Delete);
    assert_eq!(method_of("urlconn"), HttpMethod::Get);
}
