//! Live daemon introspection (ISSUE 10): per-request trace ids stitch
//! the span tree, the event log, and the `SLOW` exemplar store together;
//! the `METRICS`/`HEALTH`/`SLOW` verbs answer mid-traffic over TCP; and
//! the `extractocol-obs-diff` gate flags a seeded counter perturbation
//! while passing on identical snapshots.

use extractocol_obs::{AttrValue, EventLog, Level, Registry, TraceCollector};
use extractocol_serve::{
    scrape, send_lines, trace_id_for, Daemon, DaemonConfig, Reply, SignatureIndex,
};
use std::io::Write;
use std::process::Command;
use std::sync::Arc;

fn app_index(name: &str, jobs: usize) -> SignatureIndex {
    let app = extractocol_corpus::app(name).expect("corpus app");
    let report =
        extractocol_dynamic::conformance::analyze_app(&app.apk, app.truth.open_source, jobs);
    SignatureIndex::compile(&[report])
}

fn app_traffic(name: &str) -> Vec<String> {
    let app = extractocol_corpus::app(name).expect("corpus app");
    extractocol_dynamic::run_perfect_fuzzer(&app)
        .to_request_text()
        .lines()
        .map(str::to_string)
        .collect()
}

fn observed_daemon(index: SignatureIndex) -> Daemon {
    Daemon::with_observability(
        index,
        DaemonConfig::default(),
        Registry::new(),
        TraceCollector::enabled(),
        EventLog::enabled(Level::Debug),
    )
}

fn span_trace_id(span: &extractocol_obs::SpanRecord) -> Option<String> {
    span.attrs.iter().find_map(|(k, v)| match (k.as_str(), v) {
        ("trace_id", AttrValue::Str(s)) => Some(s.clone()),
        _ => None,
    })
}

/// Satellite (d): every answered request has exactly one
/// `daemon_request` span, and its trace id resolves to exactly one
/// "request classified" event-log record.
#[test]
fn trace_ids_stitch_spans_to_event_log_records() {
    let daemon = Arc::new(observed_daemon(app_index("radio reddit", 1)));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = {
        let d = Arc::clone(&daemon);
        std::thread::spawn(move || d.serve_tcp(listener).expect("serve"))
    };

    let traffic = app_traffic("radio reddit");
    assert!(!traffic.is_empty());
    let mut input = traffic.join("\n");
    input.push_str("\nSHUTDOWN\n");
    let responses = send_lines(&addr, &input).expect("send");
    server.join().expect("server thread");
    assert_eq!(responses.len(), traffic.len() + 1, "zero dropped replies");

    // Exactly one daemon_request span per answered request, each with a
    // trace id deterministic from (conn_id=1, seq).
    let spans = daemon.trace.drain();
    let request_spans: Vec<_> = spans.iter().filter(|s| s.name == "daemon_request").collect();
    assert_eq!(request_spans.len(), traffic.len());
    let mut span_ids: Vec<String> =
        request_spans.iter().map(|s| span_trace_id(s).expect("span carries trace_id")).collect();
    span_ids.sort();
    let mut expected: Vec<String> =
        (1..=traffic.len() as u64).map(|seq| trace_id_for(1, seq)).collect();
    expected.sort();
    assert_eq!(span_ids, expected, "span ids are the deterministic (conn, seq) series");

    // Each span id resolves to exactly one "request classified" record.
    let records = daemon.events.snapshot();
    let classified: Vec<_> = records.iter().filter(|r| r.message == "request classified").collect();
    assert_eq!(classified.len(), traffic.len());
    for id in &expected {
        let hits = classified.iter().filter(|r| r.trace_id.as_deref() == Some(id)).count();
        assert_eq!(hits, 1, "exactly one event record for trace id {id}");
    }

    // The SLOW exemplar store only holds ids from the same series.
    for ex in daemon.exemplars.snapshot() {
        assert!(expected.contains(&ex.trace_id), "exemplar id {} unknown", ex.trace_id);
    }
}

/// Satellite (d): the id series is a pure function of (connection,
/// sequence) — rebuilding the index under a different worker count and
/// replaying the same traffic yields byte-identical ids and verdicts.
#[test]
fn trace_ids_and_verdicts_are_stable_across_jobs_settings() {
    let traffic = app_traffic("radio reddit");
    let mut runs: Vec<(Vec<String>, Vec<String>)> = Vec::new();
    for jobs in [1, 4] {
        let daemon = observed_daemon(app_index("radio reddit", jobs));
        let replies: Vec<String> = traffic
            .iter()
            .map(|l| match daemon.process_line(l) {
                Reply::Line(r) => r,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        let ids: Vec<String> = daemon
            .events
            .snapshot()
            .iter()
            .filter(|r| r.message == "request classified")
            .map(|r| r.trace_id.clone().expect("classified record has id"))
            .collect();
        runs.push((replies, ids));
    }
    assert_eq!(runs[0].0, runs[1].0, "verdicts identical across jobs");
    assert_eq!(runs[0].1, runs[1].1, "trace ids identical across jobs");
    let expected: Vec<String> =
        (1..=traffic.len() as u64).map(|seq| trace_id_for(0, seq)).collect();
    assert_eq!(runs[0].1, expected, "stdin ids are trace_id_for(0, seq)");
}

/// The three introspection verbs answer over TCP mid-traffic, and the
/// `scrape` client strips block framing for file capture.
#[test]
fn metrics_health_and_slow_answer_over_tcp_mid_traffic() {
    let daemon = Arc::new(observed_daemon(app_index("radio reddit", 1)));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = {
        let d = Arc::clone(&daemon);
        std::thread::spawn(move || d.serve_tcp(listener).expect("serve"))
    };

    // Interleave control verbs with traffic on one connection: control
    // verbs must not consume request sequence numbers.
    let traffic = app_traffic("radio reddit");
    let mut input = String::new();
    input.push_str(&traffic[0]);
    input.push_str("\nMETRICS\nHEALTH\n");
    for l in &traffic[1..] {
        input.push_str(l);
        input.push('\n');
    }
    input.push_str("SLOW\n");
    let responses = send_lines(&addr, &input).expect("send");
    assert_eq!(responses.len(), traffic.len() + 3, "one logical response per request");

    let metrics = &responses[1];
    assert!(metrics.starts_with("metrics\tlines="), "{metrics}");
    assert!(metrics.contains("serve_daemon_requests_total 1"), "{metrics}");
    assert!(metrics.contains("# VOLATILITY serve_daemon_requests_total deterministic"));

    let health = &responses[2];
    assert!(health.starts_with("health\tstatus=ok"), "{health}");
    assert!(health.contains("generation=1"), "{health}");
    assert!(health.contains("last_swap=none"), "{health}");

    let slow = responses.last().unwrap();
    assert!(slow.starts_with("slow\tlines="), "{slow}");
    assert!(slow.contains(&format!("trace_id={}", trace_id_for(1, 1))), "{slow}");

    // A second connection scrapes concurrently; the payload is frameless.
    let scraped = scrape(&addr, "HEALTH").expect("scrape");
    assert!(scraped.starts_with("health\tstatus=ok"), "{scraped}");
    let scraped_metrics = scrape(&addr, "METRICS").expect("scrape");
    assert!(scraped_metrics.starts_with("# HELP"), "{scraped_metrics}");
    assert!(!scraped_metrics.contains("metrics\tlines="), "frame header stripped");

    let bye = send_lines(&addr, "SHUTDOWN\n").expect("shutdown");
    assert_eq!(bye, vec!["bye".to_string()]);
    server.join().expect("server thread");
    let final_metrics = daemon.registry.render();
    assert!(
        final_metrics.contains(&format!("serve_daemon_requests_total {}", traffic.len())),
        "control verbs are not counted as classify requests: {final_metrics}"
    );
}

fn obs_diff() -> Command {
    // Resolve the freshly-built binary next to the test executable.
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // deps/
    path.pop(); // debug|release/
    path.push(format!("extractocol-obs-diff{}", std::env::consts::EXE_SUFFIX));
    Command::new(path)
}

fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("extractocol-obsdiff-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents.as_bytes()).expect("write");
    path
}

/// Acceptance: obs-diff passes on identical snapshots and exits nonzero
/// on a seeded deterministic-counter perturbation — through the real
/// binary, on a real daemon exposition.
#[test]
fn obs_diff_gate_detects_a_seeded_counter_perturbation() {
    let daemon = observed_daemon(app_index("radio reddit", 1));
    for line in &app_traffic("radio reddit") {
        daemon.process_line(line);
    }
    let exposition = daemon.registry.render();
    assert!(exposition.contains("serve_daemon_requests_total"), "{exposition}");

    let baseline = temp_file("base.txt", &exposition);
    let identical = temp_file("same.txt", &exposition);
    let out = obs_diff().args([&baseline, &identical]).output().expect("run obs-diff");
    assert!(
        out.status.success(),
        "identical snapshots must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Seed a perturbation in a deterministic counter.
    let perturbed_text = exposition
        .lines()
        .map(|l| {
            if l.starts_with("serve_daemon_requests_total ") {
                "serve_daemon_requests_total 999999".to_string()
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let perturbed = temp_file("perturbed.txt", &perturbed_text);
    let out = obs_diff().args([&baseline, &perturbed]).output().expect("run obs-diff");
    assert_eq!(out.status.code(), Some(1), "perturbation must be a regression");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("serve_daemon_requests_total"), "{stdout}");

    for p in [baseline, identical, perturbed] {
        let _ = std::fs::remove_file(p);
    }
}
