//! Points-to devirtualization contract (the SPARK layer): on a site where
//! class-hierarchy analysis sees every subtype implementing an interface,
//! the points-to solver proves which concrete receiver actually flows
//! there. The call graph shrinks, slices shrink with it — and the
//! *extracted protocol signature does not move*, because the pruned
//! targets never execute.

use extractocol_analysis::{CallGraph, CallbackRegistry, PointsTo};
use extractocol_core::{stubs, Extractocol, Options};
use extractocol_ir::{Apk, ProgramIndex, Type, Value};

/// An app whose URL runs through an interface method with three
/// implementors. Only `Plain` is ever allocated; `Hex` and `Rot13` carry
/// junk statements that a CHA-built slice drags in.
fn polymorphic_app() -> Apk {
    let mut b = extractocol_ir::ApkBuilder::new("poly", "com.poly");
    stubs::install(&mut b);
    b.iface("com.poly.Enc", |c| {
        c.stub_method("pass", vec![Type::string()], Type::string());
    });
    // The receiver that actually flows to the call site.
    b.class("com.poly.Plain", |c| {
        c.implements("com.poly.Enc");
        c.method("pass", vec![Type::string()], Type::string(), |m| {
            m.recv("com.poly.Plain");
            let s = m.arg(0, "s");
            m.ret(s);
        });
    });
    // Two CHA-visible implementors that never execute. Their bodies return
    // the argument unchanged (so a CHA slice extracts the same signature)
    // but pad it with local shuffling a slicer must carry.
    for name in ["com.poly.Hex", "com.poly.Rot13"] {
        b.class(name, |c| {
            c.implements("com.poly.Enc");
            let scratch = c.field("scratch", Type::string());
            c.method("pass", vec![Type::string()], Type::string(), |m| {
                let this = m.recv(name);
                let s = m.arg(0, "s");
                let a = m.temp(Type::string());
                m.copy(a, s);
                let b2 = m.temp(Type::string());
                m.copy(b2, a);
                m.put_field(this, &scratch, b2);
                let c2 = m.temp(Type::string());
                m.get_field(c2, this, &scratch);
                m.ret(c2);
            });
        });
    }
    b.activity("com.poly.Main");
    b.class("com.poly.Main", |c| {
        c.extends("android.app.Activity");
        c.method("fetch", vec![Type::string()], Type::Void, |m| {
            m.recv("com.poly.Main");
            let user = m.arg(0, "user");
            let enc = m.new_obj("com.poly.Plain", vec![]);
            let clean =
                m.icall(enc, "com.poly.Enc", "pass", vec![Value::Local(user)], Type::string());
            let sb =
                m.new_obj("java.lang.StringBuilder", vec![Value::str("https://api.poly.com/u/")]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(clean)]);
            let url = m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
            let req = m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
            let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
            let resp = m.vcall(
                client,
                "org.apache.http.client.HttpClient",
                "execute",
                vec![Value::Local(req)],
                Type::object("org.apache.http.HttpResponse"),
            );
            let _ = resp;
            m.ret_void();
        });
    });
    b.build()
}

fn analyze(apk: &Apk, pointsto: bool) -> extractocol_core::AnalysisReport {
    Extractocol::with_options(Options { pointsto, ..Options::default() }).analyze(apk)
}

#[test]
fn pta_prunes_cha_targets_at_the_interface_site() {
    let apk = polymorphic_app();
    let prog = ProgramIndex::new(&apk);
    let registry = CallbackRegistry::android_defaults();
    let cha = CallGraph::build(&prog, &registry);
    let pts = PointsTo::solve(&prog);
    let pta = CallGraph::build_with_pointsto(&prog, &registry, &pts);

    // Find the interface call site in Main.fetch.
    let main =
        prog.concrete_methods().find(|&m| prog.method(m).name == "fetch").expect("Main.fetch");
    let site = prog
        .method(main)
        .body
        .iter()
        .enumerate()
        .find_map(|(i, s)| s.call().filter(|c| c.callee.name == "pass").map(|_| (main, i)))
        .expect("pass call site");

    assert_eq!(cha.targets_of(site).len(), 3, "CHA sees every implementor");
    assert_eq!(pta.targets_of(site).len(), 1, "points-to proves the one receiver");
    let only = pta.targets_of(site)[0];
    assert_eq!(prog.class(only.class).name, "com.poly.Plain");
    assert_eq!(prog.method(only).name, "pass");
    assert!(
        pta.total_explicit_targets() < cha.total_explicit_targets(),
        "devirtualization must strictly shrink the call graph \
         ({} -> {})",
        cha.total_explicit_targets(),
        pta.total_explicit_targets()
    );
}

/// Acceptance on the bundled corpus: the PTA-built call graph carries
/// strictly fewer explicit virtual-site targets than pure CHA, and the
/// leaner graph shows up as smaller slices — while every app's canonical
/// report stays byte-identical (the pruned targets never executed).
#[test]
fn corpus_pta_is_strictly_leaner_than_cha_with_identical_reports() {
    let mut cha_targets = 0usize;
    let mut pta_targets = 0usize;
    let mut cha_stmts = 0usize;
    let mut pta_stmts = 0usize;
    for app in extractocol_corpus::open_source_apps()
        .into_iter()
        .chain(extractocol_corpus::closed_source_apps())
    {
        let prog = ProgramIndex::new(&app.apk);
        let registry = CallbackRegistry::android_defaults();
        let cha_graph = CallGraph::build(&prog, &registry);
        let pts = PointsTo::solve(&prog);
        let pta_graph = CallGraph::build_with_pointsto(&prog, &registry, &pts);
        assert!(
            pta_graph.total_explicit_targets() <= cha_graph.total_explicit_targets(),
            "{}: devirtualization may only prune targets",
            app.truth.name
        );
        cha_targets += cha_graph.total_explicit_targets();
        pta_targets += pta_graph.total_explicit_targets();

        let cha_report = analyze(&app.apk, false);
        let pta_report = analyze(&app.apk, true);
        assert_eq!(
            cha_report.to_table(),
            pta_report.to_table(),
            "{}: the protocol report must not depend on the call-graph mode",
            app.truth.name
        );
        cha_stmts += cha_report.metrics.per_dp.iter().map(|d| d.total_stmts()).sum::<usize>();
        pta_stmts += pta_report.metrics.per_dp.iter().map(|d| d.total_stmts()).sum::<usize>();
    }
    assert!(
        pta_targets < cha_targets,
        "corpus-wide, PTA must prune at least one CHA target ({cha_targets} -> {pta_targets})"
    );
    assert!(
        pta_stmts < cha_stmts,
        "corpus-wide, mean slice size must drop under devirtualization \
         ({cha_stmts} -> {pta_stmts} total sliced statements)"
    );
}

#[test]
fn slices_shrink_but_signatures_hold() {
    let apk = polymorphic_app();
    let cha = analyze(&apk, false);
    let pta = analyze(&apk, true);

    // Same protocol behavior out of both graphs.
    assert_eq!(cha.transactions.len(), 1);
    assert_eq!(pta.transactions.len(), 1);
    assert_eq!(cha.transactions[0].uri_regex, pta.transactions[0].uri_regex);
    assert_eq!(cha.transactions[0].method, pta.transactions[0].method);
    assert_eq!(cha.transactions[0].headers, pta.transactions[0].headers);

    // But the PTA request slice left the never-executed implementors out.
    let cha_req: usize = cha.metrics.per_dp.iter().map(|d| d.request_stmts).sum();
    let pta_req: usize = pta.metrics.per_dp.iter().map(|d| d.request_stmts).sum();
    assert!(
        pta_req < cha_req,
        "request slice must shrink under devirtualization ({cha_req} -> {pta_req})"
    );
}
