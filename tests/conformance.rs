//! The differential conformance oracle's corpus gates (ISSUE 3 tentpole):
//!
//! * **Clean corpus** — every statically extracted signature must conform
//!   to the traffic the dynamic interpreter actually produces; zero
//!   diagnostics across all 34 apps.
//! * **Teeth** — seeded constant perturbations (in-repo PRNG) must be
//!   flagged at ≥ 90%: an oracle that passes the clean corpus but misses
//!   injected drift would be vacuous.

use extractocol_dynamic::conformance::{conformance_check, mutation_self_test};

#[test]
fn corpus_is_conformant() {
    for app in extractocol_corpus::all_apps() {
        let (report, conf) = conformance_check(&app, 1);
        assert!(
            conf.is_clean(),
            "{}: static signatures disagree with dynamic traffic\n{}",
            app.truth.name,
            conf.to_text()
        );
        assert_eq!(conf.signatures_checked, report.transactions.len(), "{}", app.truth.name);
        assert!(conf.messages_checked > 0, "{}: empty trace", app.truth.name);
        // The result is surfaced on the report's metrics.
        assert_eq!(report.metrics.conformance.as_ref(), Some(&conf), "{}", app.truth.name);
    }
}

#[test]
fn orphan_messages_are_exactly_the_statically_invisible_traffic() {
    // The oracle counts orphans informationally; on the calibrated corpus
    // they must line up with the ground truth's raw-socket (statically
    // invisible) transactions, scaled by how often the perfect fuzzer
    // triggers each.
    let mut saw_orphans = false;
    for app in extractocol_corpus::all_apps() {
        let (_, conf) = conformance_check(&app, 1);
        let invisible = app.truth.txns.iter().filter(|t| !t.static_visible).count();
        if invisible == 0 {
            assert_eq!(
                conf.orphan_messages, 0,
                "{}: orphans without statically invisible ground-truth traffic",
                app.truth.name
            );
        }
        saw_orphans |= conf.orphan_messages > 0;
    }
    assert!(saw_orphans, "the corpus deliberately contains raw-socket ad/analytics traffic");
}

#[test]
fn mutation_mode_detects_seeded_perturbations() {
    let apps = extractocol_corpus::all_apps();
    let summary = mutation_self_test(&apps, 0xE7_AC_0C_01, 2, 1);
    assert!(summary.total() >= 30, "too few mutation sites seeded: {}", summary.total());
    assert!(
        summary.rate() >= 0.9,
        "oracle detected only {:.1}% of seeded mutations:\n{}",
        100.0 * summary.rate(),
        summary.to_text()
    );
}

#[test]
fn mutation_run_is_deterministic() {
    let app = extractocol_corpus::app("radio reddit").expect("corpus app");
    let apps = std::slice::from_ref(&app);
    let a = mutation_self_test(apps, 7, 3, 1);
    let b = mutation_self_test(apps, 7, 3, 0);
    assert_eq!(a.to_text(), b.to_text(), "mutation outcome depends on worker count");
    let c = mutation_self_test(apps, 8, 3, 1);
    // A different seed perturbs different characters (sites are the same).
    assert_eq!(a.total(), c.total());
}
