//! Property-based tests (proptest) on the core data structures:
//!
//! * the regex-lite engine agrees with a reference backtracking matcher
//!   on the signature dialect;
//! * signature normalization is idempotent and meaning-preserving
//!   (concrete strings drawn from a signature always match its regex);
//! * JSON parse∘serialize is a fixpoint;
//! * the IR printer/parser round-trips generated methods.

use extractocol_core::siglang::{SigPat, TypeHint};
use extractocol_http::regexlite::escape_literal;
use extractocol_http::{JsonValue, Regex};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// A tiny reference backtracking matcher for the same dialect.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Rx {
    Lit(char),
    Any,
    Digit,
    Star(Box<Rx>),
    Plus(Box<Rx>),
    Opt(Box<Rx>),
    Seq(Vec<Rx>),
    Alt(Box<Rx>, Box<Rx>),
}

impl Rx {
    fn to_pattern(&self) -> String {
        match self {
            Rx::Lit(c) => escape_literal(&c.to_string()),
            Rx::Any => ".".into(),
            Rx::Digit => "[0-9]".into(),
            Rx::Star(r) => format!("({})*", r.to_pattern()),
            Rx::Plus(r) => format!("({})+", r.to_pattern()),
            Rx::Opt(r) => format!("({})?", r.to_pattern()),
            Rx::Seq(items) => items.iter().map(Rx::to_pattern).collect(),
            Rx::Alt(a, b) => format!("({}|{})", a.to_pattern(), b.to_pattern()),
        }
    }

    /// Reference matcher: returns all suffix positions reachable after
    /// matching a prefix of `s[i..]`.
    fn match_at(&self, s: &[char], i: usize, out: &mut Vec<usize>) {
        match self {
            Rx::Lit(c) => {
                if s.get(i) == Some(c) {
                    out.push(i + 1);
                }
            }
            Rx::Any => {
                if i < s.len() {
                    out.push(i + 1);
                }
            }
            Rx::Digit => {
                if s.get(i).map(|c| c.is_ascii_digit()).unwrap_or(false) {
                    out.push(i + 1);
                }
            }
            Rx::Star(r) => {
                let mut frontier = vec![i];
                let mut seen = vec![i];
                out.push(i);
                while let Some(p) = frontier.pop() {
                    let mut next = Vec::new();
                    r.match_at(s, p, &mut next);
                    for n in next {
                        if !seen.contains(&n) {
                            seen.push(n);
                            out.push(n);
                            frontier.push(n);
                        }
                    }
                }
            }
            Rx::Plus(r) => {
                let mut first = Vec::new();
                r.match_at(s, i, &mut first);
                for f in first {
                    Rx::Star(r.clone()).match_at(s, f, out);
                }
            }
            Rx::Opt(r) => {
                out.push(i);
                r.match_at(s, i, out);
            }
            Rx::Seq(items) => {
                let mut positions = vec![i];
                for item in items {
                    let mut next = Vec::new();
                    for &p in &positions {
                        item.match_at(s, p, &mut next);
                    }
                    next.sort_unstable();
                    next.dedup();
                    positions = next;
                    if positions.is_empty() {
                        return;
                    }
                }
                out.extend(positions);
            }
            Rx::Alt(a, b) => {
                a.match_at(s, i, out);
                b.match_at(s, i, out);
            }
        }
    }

    fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        let mut out = Vec::new();
        self.match_at(&chars, 0, &mut out);
        out.contains(&chars.len())
    }
}

fn rx_strategy() -> impl Strategy<Value = Rx> {
    let leaf = prop_oneof![
        prop::char::range('a', 'e').prop_map(Rx::Lit),
        prop::char::range('0', '3').prop_map(Rx::Lit),
        Just(Rx::Any),
        Just(Rx::Digit),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|r| Rx::Star(Box::new(r))),
            inner.clone().prop_map(|r| Rx::Plus(Box::new(r))),
            inner.clone().prop_map(|r| Rx::Opt(Box::new(r))),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Rx::Seq),
            (inner.clone(), inner).prop_map(|(a, b)| Rx::Alt(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn regexlite_agrees_with_reference(rx in rx_strategy(), text in "[a-e0-3]{0,8}") {
        let pattern = rx.to_pattern();
        let compiled = Regex::new(&pattern).expect("generated pattern compiles");
        prop_assert_eq!(
            compiled.is_match(&text),
            rx.is_match(&text),
            "pattern {} on {:?}", pattern, text
        );
    }

    #[test]
    fn json_parse_serialize_fixpoint(v in json_strategy()) {
        let once = v.to_json();
        let reparsed = JsonValue::parse(&once).expect("serialized JSON parses");
        prop_assert_eq!(&reparsed.to_json(), &once);
        prop_assert_eq!(reparsed, v);
    }

    #[test]
    fn signature_normalization_is_idempotent(sig in sig_strategy()) {
        let once = sig.clone().normalize();
        let twice = once.clone().normalize();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn strings_drawn_from_a_signature_match_its_regex(sig in sig_strategy(), seed in 0u32..1000) {
        let sample = sample_from(&sig, seed);
        let regex = Regex::new(&sig.to_regex()).expect("signature regex compiles");
        prop_assert!(
            regex.is_match(&sample),
            "signature {} regex {} sample {:?}", sig.display(), sig.to_regex(), sample
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Robustness: arbitrary input never panics the parsers — they return
    /// a value or a structured error.
    #[test]
    fn parsers_never_panic(input in ".{0,200}") {
        let _ = extractocol_ir::parser::parse_apk(&input);
        let _ = JsonValue::parse(&input);
        let _ = extractocol_http::XmlElement::parse(&input);
        let _ = Regex::new(&input);
    }

    /// Compiling any signature drawn from the signature strategy always
    /// yields a valid regex (signature → regex is total).
    #[test]
    fn signature_regexes_always_compile(sig in sig_strategy()) {
        prop_assert!(Regex::new(&sig.to_regex()).is_ok(), "{}", sig.to_regex());
    }
}

fn json_strategy() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        (-1000i32..1000).prop_map(|n| JsonValue::Number(f64::from(n))),
        "[a-zA-Z0-9 _./:?&=-]{0,12}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(JsonValue::Array),
            prop::collection::btree_map("[a-z_]{1,8}", inner, 0..4).prop_map(JsonValue::Object),
        ]
    })
}

fn sig_strategy() -> impl Strategy<Value = SigPat> {
    let leaf = prop_oneof![
        "[a-z0-9/.?&=_-]{0,10}".prop_map(SigPat::Const),
        Just(SigPat::Unknown(TypeHint::Str)),
        Just(SigPat::Unknown(TypeHint::Num)),
        Just(SigPat::Unknown(TypeHint::Bool)),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(SigPat::Concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(SigPat::Or),
            inner.prop_map(|p| SigPat::Rep(Box::new(p))),
        ]
    })
}

/// Draws one concrete string covered by a signature (deterministic in the
/// seed).
fn sample_from(sig: &SigPat, seed: u32) -> String {
    match sig {
        SigPat::Const(s) => s.clone(),
        SigPat::Unknown(TypeHint::Num) => format!("{}", seed % 1000),
        SigPat::Unknown(TypeHint::Bool) => {
            if seed.is_multiple_of(2) { "true" } else { "false" }.to_string()
        }
        SigPat::Unknown(TypeHint::Str) => {
            ["", "x", "token-9f", "user input"][(seed as usize) % 4].to_string()
        }
        SigPat::Concat(items) => items
            .iter()
            .enumerate()
            .map(|(i, p)| sample_from(p, seed.wrapping_add(i as u32)))
            .collect(),
        SigPat::Or(items) => {
            let pick = (seed as usize) % items.len();
            sample_from(&items[pick], seed / 2)
        }
        SigPat::Rep(inner) => {
            let n = (seed % 3) as usize;
            (0..n)
                .map(|i| sample_from(inner, seed.wrapping_add(i as u32)))
                .collect()
        }
        SigPat::Json(_) | SigPat::Xml(_) => String::new(),
    }
}
