//! Randomized property tests on the core data structures, driven by the
//! in-repo deterministic PRNG (`extractocol_ir::rng`) so the suite runs
//! with no network access (no external `proptest` dependency):
//!
//! * the regex-lite engine agrees with a reference backtracking matcher
//!   on the signature dialect;
//! * signature normalization is idempotent and meaning-preserving
//!   (concrete strings drawn from a signature always match its regex);
//! * JSON parse∘serialize is a fixpoint;
//! * arbitrary input never panics the parsers.
//!
//! Every case is deterministic in its iteration index, so a failure
//! reports a reproducible seed.

use extractocol_core::siglang::{SigPat, TypeHint};
use extractocol_http::regexlite::escape_literal;
use extractocol_http::{JsonValue, Regex, XmlElement};
use extractocol_ir::rng::Rng;

// ---------------------------------------------------------------------------
// A tiny reference backtracking matcher for the same dialect.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Rx {
    Lit(char),
    Any,
    Digit,
    Star(Box<Rx>),
    Plus(Box<Rx>),
    Opt(Box<Rx>),
    Seq(Vec<Rx>),
    Alt(Box<Rx>, Box<Rx>),
}

impl Rx {
    fn to_pattern(&self) -> String {
        match self {
            Rx::Lit(c) => escape_literal(&c.to_string()),
            Rx::Any => ".".into(),
            Rx::Digit => "[0-9]".into(),
            Rx::Star(r) => format!("({})*", r.to_pattern()),
            Rx::Plus(r) => format!("({})+", r.to_pattern()),
            Rx::Opt(r) => format!("({})?", r.to_pattern()),
            Rx::Seq(items) => items.iter().map(Rx::to_pattern).collect(),
            Rx::Alt(a, b) => format!("({}|{})", a.to_pattern(), b.to_pattern()),
        }
    }

    /// Reference matcher: returns all suffix positions reachable after
    /// matching a prefix of `s[i..]`.
    fn match_at(&self, s: &[char], i: usize, out: &mut Vec<usize>) {
        match self {
            Rx::Lit(c) => {
                if s.get(i) == Some(c) {
                    out.push(i + 1);
                }
            }
            Rx::Any => {
                if i < s.len() {
                    out.push(i + 1);
                }
            }
            Rx::Digit => {
                if s.get(i).map(|c| c.is_ascii_digit()).unwrap_or(false) {
                    out.push(i + 1);
                }
            }
            Rx::Star(r) => {
                let mut frontier = vec![i];
                let mut seen = vec![i];
                out.push(i);
                while let Some(p) = frontier.pop() {
                    let mut next = Vec::new();
                    r.match_at(s, p, &mut next);
                    for n in next {
                        if !seen.contains(&n) {
                            seen.push(n);
                            out.push(n);
                            frontier.push(n);
                        }
                    }
                }
            }
            Rx::Plus(r) => {
                let mut first = Vec::new();
                r.match_at(s, i, &mut first);
                for f in first {
                    Rx::Star(r.clone()).match_at(s, f, out);
                }
            }
            Rx::Opt(r) => {
                out.push(i);
                r.match_at(s, i, out);
            }
            Rx::Seq(items) => {
                let mut positions = vec![i];
                for item in items {
                    let mut next = Vec::new();
                    for &p in &positions {
                        item.match_at(s, p, &mut next);
                    }
                    next.sort_unstable();
                    next.dedup();
                    positions = next;
                    if positions.is_empty() {
                        return;
                    }
                }
                out.extend(positions);
            }
            Rx::Alt(a, b) => {
                a.match_at(s, i, out);
                b.match_at(s, i, out);
            }
        }
    }

    fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        let mut out = Vec::new();
        self.match_at(&chars, 0, &mut out);
        out.contains(&chars.len())
    }
}

// ---------------------------------------------------------------------------
// Generators (recursive, depth-bounded, deterministic in the Rng state).
// ---------------------------------------------------------------------------

const RX_LEAVES: [char; 9] = ['a', 'b', 'c', 'd', 'e', '0', '1', '2', '3'];

fn gen_rx(rng: &mut Rng, depth: usize) -> Rx {
    if depth == 0 || rng.chance(2, 5) {
        return match rng.below(4) {
            0 | 1 => Rx::Lit(*rng.pick(&RX_LEAVES)),
            2 => Rx::Any,
            _ => Rx::Digit,
        };
    }
    match rng.below(5) {
        0 => Rx::Star(Box::new(gen_rx(rng, depth - 1))),
        1 => Rx::Plus(Box::new(gen_rx(rng, depth - 1))),
        2 => Rx::Opt(Box::new(gen_rx(rng, depth - 1))),
        3 => {
            let n = 1 + rng.below(3);
            Rx::Seq((0..n).map(|_| gen_rx(rng, depth - 1)).collect())
        }
        _ => Rx::Alt(Box::new(gen_rx(rng, depth - 1)), Box::new(gen_rx(rng, depth - 1))),
    }
}

fn gen_text(rng: &mut Rng, max_len: usize) -> String {
    let len = rng.below(max_len + 1);
    rng.ascii_string(&RX_LEAVES, len)
}

const JSON_STR_ALPHABET: [char; 16] =
    ['a', 'z', 'A', 'Z', '0', '9', ' ', '_', '.', '/', ':', '?', '&', '=', '-', 'q'];

fn gen_json(rng: &mut Rng, depth: usize) -> JsonValue {
    if depth == 0 || rng.chance(1, 2) {
        return match rng.below(4) {
            0 => JsonValue::Null,
            1 => JsonValue::Bool(rng.chance(1, 2)),
            2 => JsonValue::Number(rng.range(-1000, 1000) as f64),
            _ => {
                let len = rng.below(13);
                JsonValue::String(rng.ascii_string(&JSON_STR_ALPHABET, len))
            }
        };
    }
    if rng.chance(1, 2) {
        let n = rng.below(4);
        JsonValue::Array((0..n).map(|_| gen_json(rng, depth - 1)).collect())
    } else {
        let n = rng.below(4);
        let mut obj = JsonValue::object();
        for _ in 0..n {
            let klen = 1 + rng.below(8);
            let key = rng.ascii_string(&['a', 'b', 'c', 'k', 'm', 'n', 's', 't', 'x', '_'], klen);
            obj.insert(&key, gen_json(rng, depth - 1));
        }
        obj
    }
}

const SIG_ALPHABET: [char; 14] =
    ['a', 'b', 'h', 'p', 's', 't', '0', '9', '/', '.', '?', '&', '=', '-'];

fn gen_sig(rng: &mut Rng, depth: usize) -> SigPat {
    if depth == 0 || rng.chance(2, 5) {
        return match rng.below(4) {
            0 => {
                let len = rng.below(11);
                SigPat::Const(rng.ascii_string(&SIG_ALPHABET, len))
            }
            1 => SigPat::Unknown(TypeHint::Str),
            2 => SigPat::Unknown(TypeHint::Num),
            _ => SigPat::Unknown(TypeHint::Bool),
        };
    }
    match rng.below(3) {
        0 => {
            let n = 1 + rng.below(3);
            SigPat::Concat((0..n).map(|_| gen_sig(rng, depth - 1)).collect())
        }
        1 => {
            let n = 1 + rng.below(2);
            SigPat::Or((0..n).map(|_| gen_sig(rng, depth - 1)).collect())
        }
        _ => SigPat::Rep(Box::new(gen_sig(rng, depth - 1))),
    }
}

/// Draws one concrete string covered by a signature (deterministic in the
/// seed).
fn sample_from(sig: &SigPat, seed: u32) -> String {
    match sig {
        SigPat::Const(s) => s.clone(),
        SigPat::Unknown(TypeHint::Num) => format!("{}", seed % 1000),
        SigPat::Unknown(TypeHint::Bool) => {
            if seed.is_multiple_of(2) { "true" } else { "false" }.to_string()
        }
        SigPat::Unknown(TypeHint::Str) => {
            ["", "x", "token-9f", "user input"][(seed as usize) % 4].to_string()
        }
        SigPat::Concat(items) => items
            .iter()
            .enumerate()
            .map(|(i, p)| sample_from(p, seed.wrapping_add(i as u32)))
            .collect(),
        SigPat::Or(items) => {
            let pick = (seed as usize) % items.len();
            sample_from(&items[pick], seed / 2)
        }
        SigPat::Rep(inner) => {
            let n = (seed % 3) as usize;
            (0..n).map(|i| sample_from(inner, seed.wrapping_add(i as u32))).collect()
        }
        SigPat::Json(_) | SigPat::Xml(_) => String::new(),
    }
}

/// Arbitrary (printable-ish) fuzz input for the parsers.
fn gen_fuzz_input(rng: &mut Rng, max_len: usize) -> String {
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| {
            // Mostly printable ASCII with occasional structural characters
            // and non-ASCII to poke the parsers' edge cases.
            match rng.below(10) {
                0 => *rng.pick(&['{', '}', '[', ']', '(', ')', '"', '\\', '|', '*', '<', '>']),
                1 => *rng.pick(&['\n', '\t', 'é', '✓', '\u{7f}']),
                _ => (0x20 + rng.below(0x5f) as u8) as char,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

#[test]
fn regexlite_agrees_with_reference() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0xA11CE ^ case);
        let rx = gen_rx(&mut rng, 3);
        let text = gen_text(&mut rng, 8);
        let pattern = rx.to_pattern();
        let compiled = Regex::new(&pattern).expect("generated pattern compiles");
        assert_eq!(
            compiled.is_match(&text),
            rx.is_match(&text),
            "case {case}: pattern {pattern} on {text:?}"
        );
    }
}

#[test]
fn json_parse_serialize_fixpoint() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0xB0B ^ (case << 1));
        let v = gen_json(&mut rng, 3);
        let once = v.to_json();
        let reparsed = JsonValue::parse(&once).expect("serialized JSON parses");
        assert_eq!(reparsed.to_json(), once, "case {case}");
        assert_eq!(reparsed, v, "case {case}");
    }
}

#[test]
fn signature_normalization_is_idempotent() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0x0005_161D ^ case);
        let sig = gen_sig(&mut rng, 3);
        let once = sig.clone().normalize();
        let twice = once.clone().normalize();
        assert_eq!(once, twice, "case {case}: {}", sig.display());
    }
}

#[test]
fn strings_drawn_from_a_signature_match_its_regex() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0xD4A3 ^ case);
        let sig = gen_sig(&mut rng, 3);
        let seed = rng.next_u32() % 1000;
        let sample = sample_from(&sig, seed);
        let regex = Regex::new(&sig.to_regex()).expect("signature regex compiles");
        assert!(
            regex.is_match(&sample),
            "case {case}: signature {} regex {} sample {:?}",
            sig.display(),
            sig.to_regex(),
            sample
        );
    }
}

/// Robustness: arbitrary input never panics the parsers — they return a
/// value or a structured error.
#[test]
fn parsers_never_panic() {
    for case in 0..512u64 {
        let mut rng = Rng::new(0xF422 ^ case);
        let input = gen_fuzz_input(&mut rng, 200);
        let _ = extractocol_ir::parser::parse_apk(&input);
        let _ = JsonValue::parse(&input);
        let _ = XmlElement::parse(&input);
        let _ = Regex::new(&input);
    }
}

/// Compiling any signature drawn from the signature generator always
/// yields a valid regex (signature → regex is total).
#[test]
fn signature_regexes_always_compile() {
    for case in 0..512u64 {
        let mut rng = Rng::new(0xC0DE ^ case);
        let sig = gen_sig(&mut rng, 3);
        assert!(Regex::new(&sig.to_regex()).is_ok(), "case {case}: {}", sig.to_regex());
    }
}
