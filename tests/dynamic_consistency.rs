//! Static↔dynamic consistency: running every transaction concretely must
//! produce traffic the static signatures match — URI, method, and body
//! (the §5.1 "signature validity" and "logical equivalence" checks).

use extractocol_dynamic::eval::AppEval;
use extractocol_dynamic::run_perfect_fuzzer;
use extractocol_dynamic::trace::{body_matches, matching_transactions};
use extractocol_http::Body;

#[test]
fn every_statically_visible_transaction_is_matched_in_a_full_run() {
    for app in extractocol_corpus::all_apps() {
        let eval = AppEval::run(&app);
        let full = run_perfect_fuzzer(&app);
        for txn in &eval.report.transactions {
            let hits = matching_transactions(txn, &full);
            assert!(
                !hits.is_empty(),
                "{}: signature #{} ({} {}) matched no trace line",
                app.truth.name,
                txn.id + 1,
                txn.method,
                txn.uri_regex
            );
        }
    }
}

#[test]
fn body_signatures_match_concrete_bodies() {
    for app in extractocol_corpus::all_apps() {
        let eval = AppEval::run(&app);
        let full = run_perfect_fuzzer(&app);
        for txn in &eval.report.transactions {
            let Some(body_sig) = &txn.request_body else { continue };
            for hit in matching_transactions(txn, &full) {
                if matches!(hit.request.body, Body::Empty) {
                    continue;
                }
                assert!(
                    body_matches(body_sig, &hit.request.body),
                    "{}: #{} body signature {:?} vs concrete {:?}",
                    app.truth.name,
                    txn.id + 1,
                    body_sig,
                    hit.request.body
                );
            }
        }
    }
}

#[test]
fn response_signatures_match_served_bodies() {
    use extractocol_core::sigbuild::ResponseSig;
    for app in extractocol_corpus::all_apps() {
        let eval = AppEval::run(&app);
        let full = run_perfect_fuzzer(&app);
        for txn in &eval.report.transactions {
            let Some(resp) = &txn.response else { continue };
            for hit in matching_transactions(txn, &full) {
                match (resp, &hit.response.body) {
                    (ResponseSig::Json(sig), Body::Json(v)) => {
                        assert!(
                            sig.matches(v),
                            "{}: #{} JSON response signature {} vs {}",
                            app.truth.name,
                            txn.id + 1,
                            sig.display(),
                            v.to_json()
                        );
                    }
                    (ResponseSig::Xml(sig), Body::Xml(x)) => {
                        assert!(
                            sig.matches(x),
                            "{}: #{} XML response signature vs {}",
                            app.truth.name,
                            txn.id + 1,
                            x.to_xml()
                        );
                    }
                    _ => {}
                }
            }
        }
    }
}

#[test]
fn interpreter_state_carries_across_triggers() {
    // The login-token flow only works if heap state persists between
    // trigger invocations (the paper's inter-transaction dependencies are
    // precisely about such state).
    let app = extractocol_corpus::app("radio reddit").unwrap();
    let trace = run_perfect_fuzzer(&app);
    let vote = trace
        .transactions
        .iter()
        .find(|t| t.request.uri.to_uri_string().contains("/api/vote"))
        .expect("vote request in trace");
    match &vote.request.body {
        Body::Form(pairs) => {
            let uh = pairs.iter().find(|(k, _)| k == "uh").expect("uh field");
            assert_eq!(uh.1, "mh-4242", "the modhash from the login response");
            let id = pairs.iter().find(|(k, _)| k == "id").expect("id field");
            assert_eq!(id.1, "t3_song837", "the fullname from info.json");
        }
        other => panic!("vote body: {other:?}"),
    }
    assert_eq!(vote.request.headers.get("Cookie"), Some("ck-9999"));
}
