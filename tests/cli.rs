//! End-to-end CLI test: serialize a corpus app to the text IR format,
//! run the `extractocol` binary on it, and check the report — the full
//! text-in/analysis-out loop a standalone user would drive.

use std::io::Write;
use std::process::Command;

fn cli() -> Command {
    // Resolve the freshly-built binary next to the test executable.
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // deps/
    path.pop(); // debug|release/
    path.push(format!("extractocol{}", std::env::consts::EXE_SUFFIX));
    Command::new(path)
}

fn write_app(name: &str) -> std::path::PathBuf {
    let app = extractocol_corpus::app(name).expect("corpus app");
    let txt = extractocol_ir::printer::print_apk(&app.apk);
    let mut path = std::env::temp_dir();
    path.push(format!("extractocol-cli-{}.jimple", name.replace(' ', "-")));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(txt.as_bytes()).expect("write");
    path
}

#[test]
fn cli_analyzes_a_serialized_app() {
    let path = write_app("radio reddit");
    let out = cli().arg(&path).output().expect("run extractocol");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("6 transactions"), "{stdout}");
    assert!(stdout.contains("api/login"), "{stdout}");
    assert!(stdout.contains("dependency graph"), "{stdout}");
}

#[test]
fn cli_regex_mode_prints_one_signature_per_line() {
    let path = write_app("blippex");
    let out = cli().arg(&path).arg("--regex").output().expect("run extractocol");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1, "{stdout}");
    assert!(lines[0].starts_with("GET "), "{stdout}");
    assert!(lines[0].contains("blippex"), "{stdout}");
}

#[test]
fn cli_scope_filters_demarcation_points() {
    let path = write_app("radio reddit");
    let out = cli()
        .arg(&path)
        .args(["--regex", "--scope", "com.nonexistent"])
        .output()
        .expect("run extractocol");
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "scoped-out analysis must be empty");
}

#[test]
fn cli_json_export_parses() {
    let path = write_app("radio reddit");
    let out = cli().arg(&path).arg("--json").output().expect("run extractocol");
    assert!(out.status.success());
    let v = extractocol_http::JsonValue::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("well-formed JSON");
    assert_eq!(v.get("app").unwrap().as_str(), Some("radio reddit"));
    let txns = v.get("transactions").unwrap();
    assert!(txns.at(5).is_some(), "six transactions exported");
    assert!(v.get("dependencies").unwrap().at(0).is_some(), "dependency edges exported");
}

#[test]
fn cli_jobs_flag_changes_nothing_but_the_worker_count() {
    let path = write_app("radio reddit");
    let table = |jobs: &str| {
        let out = cli().arg(&path).args(["--jobs", jobs]).output().expect("run extractocol");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let seq = table("1");
    assert!(seq.contains("1 worker(s)"), "{seq}");
    assert!(seq.contains("summary cache"), "{seq}");
    let par = table("4");
    assert!(par.contains("4 worker(s)"), "{par}");
    // Everything except the trailing stats lines (duration, workers) is
    // byte-identical across worker counts.
    let body = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("demarcation sites") && !l.contains("worker(s)"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(body(&seq), body(&par), "report differs between --jobs 1 and --jobs 4");
}

#[test]
fn cli_lints_surface_precision_diagnostics_in_stable_order() {
    use extractocol_ir::{ApkBuilder, Type, Value};
    // A small pathological app: a virtual site resolving to nothing, a
    // bodyless library callee no API model covers, and a dead block.
    let mut b = ApkBuilder::new("linty", "com.linty");
    b.class("com.linty.Lib", |c| {
        c.stub_method("mystery", vec![], Type::Void);
    });
    b.class("com.linty.Main", |c| {
        c.method("go", vec![], Type::Void, |m| {
            m.recv("com.linty.Main");
            let lib = m.new_obj("com.linty.Lib", vec![]);
            m.vcall_void(lib, "com.linty.Lib", "mystery", vec![]);
            let ghost = m.temp(Type::object("com.linty.Ghost"));
            m.vcall_void(ghost, "com.linty.Ghost", "haunt", vec![]);
            m.goto("done");
            let dead = m.temp(Type::string());
            m.cstr(dead, "unreachable");
            m.label("done");
            m.ret_void();
        });
    });
    let _ = Value::int(0);
    let txt = extractocol_ir::printer::print_apk(&b.build());
    let mut path = std::env::temp_dir();
    path.push("extractocol-cli-lints.jimple");
    std::fs::write(&path, txt).unwrap();

    let run = || {
        let out = cli().arg(&path).arg("--lints").output().expect("run extractocol");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let first = run();
    for cat in ["unresolved-virtual-site", "model-gap", "dead-block"] {
        assert!(first.contains(cat), "missing {cat} lint:\n{first}");
        assert!(first.contains(&format!("# {cat}: ")), "missing {cat} summary:\n{first}");
    }
    // Stable ordering: the lint section (everything before the report
    // table, which ends with a wall-clock line) renders byte-identically
    // on a second run.
    let lint_section =
        |s: &str| s.lines().take_while(|l| !l.starts_with("==")).collect::<Vec<_>>().join("\n");
    assert_eq!(lint_section(&first), lint_section(&run()), "--lints output must be deterministic");
}

#[test]
fn cli_no_pointsto_keeps_the_protocol_report_identical() {
    let path = write_app("Diode");
    let run = |extra: &[&str]| {
        let out = cli().arg(&path).arg("--regex").args(extra).output().expect("run extractocol");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    // Devirtualization prunes never-executed callees; the signatures the
    // slices extract must not move.
    assert_eq!(run(&[]), run(&["--no-pointsto"]));
}

#[test]
fn cli_rejects_garbage_input() {
    let mut path = std::env::temp_dir();
    path.push("extractocol-cli-garbage.jimple");
    std::fs::write(&path, "this is not an apk").unwrap();
    let out = cli().arg(&path).output().expect("run extractocol");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));
}

fn serve_cli() -> Command {
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // deps/
    path.pop(); // debug|release/
    path.push(format!("extractocol-serve{}", std::env::consts::EXE_SUFFIX));
    Command::new(path)
}

#[test]
fn serve_cli_classifies_a_traffic_file() {
    // Serialize an app's own fuzzer traffic to the wire format and
    // classify it against that app's signatures — everything must match
    // and carry provenance.
    let app = extractocol_corpus::app("radio reddit").expect("corpus app");
    let trace = extractocol_dynamic::run_perfect_fuzzer(&app);
    let mut traffic = std::env::temp_dir();
    traffic.push("extractocol-serve-cli-traffic.txt");
    std::fs::write(&traffic, trace.to_request_text()).unwrap();

    let out = serve_cli()
        .args(["classify", "--app", "radio reddit", "--traffic"])
        .arg(&traffic)
        .output()
        .expect("run extractocol-serve");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("-> radio reddit #"), "{stdout}");
    assert!(stdout.contains("unmatched:         0"), "{stdout}");

    // JSON mode carries the same verdicts, machine-readably.
    let out = serve_cli()
        .args(["classify", "--app", "radio reddit", "--json", "--traffic"])
        .arg(&traffic)
        .output()
        .expect("run extractocol-serve");
    assert!(out.status.success());
    let v = extractocol_http::JsonValue::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("well-formed JSON");
    assert_eq!(v.get("unmatched").and_then(|n| n.as_num()), Some(0.0));
    let row = v.get("verdicts").unwrap().at(0).unwrap();
    assert_eq!(row.get("app").unwrap().as_str(), Some("radio reddit"));
    assert!(row.get("dp").is_some(), "provenance includes the DP class");
}

#[test]
fn serve_cli_classifies_jimple_reports_and_flags_foreign_traffic() {
    let apk_path = write_app("blippex");
    let mut traffic = std::env::temp_dir();
    traffic.push("extractocol-serve-cli-foreign.txt");
    std::fs::write(
        &traffic,
        "# one request the app never sends\nGET\thttp://nowhere.example/zzz\n",
    )
    .unwrap();
    let out = serve_cli()
        .args(["classify", "--report"])
        .arg(&apk_path)
        .arg("--traffic")
        .arg(&traffic)
        .output()
        .expect("run extractocol-serve");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("-> unmatched"), "{stdout}");
    assert!(stdout.contains("matched:           0"), "{stdout}");
}

#[test]
fn serve_cli_rejects_malformed_traffic() {
    let mut traffic = std::env::temp_dir();
    traffic.push("extractocol-serve-cli-bad.txt");
    std::fs::write(&traffic, "FETCH http://h/x\n").unwrap();
    let out = serve_cli()
        .args(["classify", "--app", "blippex", "--traffic"])
        .arg(&traffic)
        .output()
        .expect("run extractocol-serve");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 1"), "line-anchored error");
}

#[test]
fn cli_trace_and_metrics_flags_emit_valid_artifacts() {
    let path = write_app("radio reddit");
    let mut trace_path = std::env::temp_dir();
    trace_path.push("extractocol-cli-trace.json");
    let mut metrics_path = std::env::temp_dir();
    metrics_path.push("extractocol-cli-metrics.txt");
    let out = cli()
        .arg(&path)
        .args(["--trace-summary", "--trace-out"])
        .arg(&trace_path)
        .arg("--metrics-out")
        .arg(&metrics_path)
        .output()
        .expect("run extractocol");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("self"), "summary table header present: {stdout}");
    assert!(stdout.contains("slicing"), "phase rows present: {stdout}");

    // The trace artifact passes the strict round-trip validator.
    let json = std::fs::read_to_string(&trace_path).expect("trace written");
    let stats = extractocol_obs::validate_chrome_trace(&json).expect("valid chrome trace");
    assert!(stats.events > 0);
    assert!(stats.max_depth >= 2, "run -> phase -> dp nesting");

    // The metrics artifact is exposition-format text with the pipeline
    // instrument families.
    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics written");
    assert!(metrics.contains("# TYPE pipeline_dp_sites_total counter"), "{metrics}");
    assert!(metrics.contains("pipeline_phase_seconds"), "{metrics}");
    assert!(metrics.contains("pipeline_dp_slice_stmts_bucket"), "{metrics}");
}

#[test]
fn serve_cli_bench_metrics_out_writes_exposition_text() {
    // Smallest possible bench: classify with metrics against one app, so
    // the latency/candidate instruments flow through the CLI surface.
    let traffic = {
        let app = extractocol_corpus::app("radio reddit").expect("corpus app");
        let trace = extractocol_dynamic::run_perfect_fuzzer(&app);
        let mut p = std::env::temp_dir();
        p.push("extractocol-serve-cli-metrics-traffic.txt");
        std::fs::write(&p, trace.to_request_text()).unwrap();
        p
    };
    let mut metrics_path = std::env::temp_dir();
    metrics_path.push("extractocol-serve-cli-metrics.txt");
    let out = serve_cli()
        .args(["classify", "--app", "radio reddit", "--traffic"])
        .arg(&traffic)
        .arg("--metrics-out")
        .arg(&metrics_path)
        .output()
        .expect("run extractocol-serve");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics written");
    for family in [
        "serve_classify_requests_total",
        "serve_classify_verdict_total",
        "serve_classify_candidate_fraction_bucket",
        "serve_classify_latency_us_bucket",
        "serve_index_signatures",
        "serve_phase_compile_seconds",
    ] {
        assert!(metrics.contains(family), "missing {family} in:\n{metrics}");
    }
}
