//! IR round-trip and structural integrity over the whole corpus: every
//! app validates, prints to the Jimple-flavoured text format, and parses
//! back identical — the same guarantee Soot's Jimple serialization gives.

use extractocol_ir::parser::parse_apk;
use extractocol_ir::printer::print_apk;
use extractocol_ir::validate::validate_apk;

#[test]
fn every_corpus_apk_validates() {
    for app in extractocol_corpus::all_apps() {
        let errs = validate_apk(&app.apk);
        assert!(errs.is_empty(), "{}: {:?}", app.truth.name, &errs[..errs.len().min(3)]);
    }
}

#[test]
fn every_corpus_apk_round_trips_through_text() {
    for app in extractocol_corpus::all_apps() {
        let txt = print_apk(&app.apk);
        let reparsed =
            parse_apk(&txt).unwrap_or_else(|e| panic!("{}: reparse failed: {e}", app.truth.name));
        assert_eq!(app.apk, reparsed, "{}: round-trip mismatch", app.truth.name);
    }
}

#[test]
fn corpus_statement_volume_is_app_scale() {
    // Sanity on the substitution: the corpus carries real program volume,
    // and closed-source apps are larger than open-source ones (the size
    // asymmetry behind §5.1's analysis times).
    let open: usize =
        extractocol_corpus::open_source_apps().iter().map(|a| a.apk.total_statements()).sum();
    let closed: usize =
        extractocol_corpus::closed_source_apps().iter().map(|a| a.apk.total_statements()).sum();
    assert!(open > 10_000, "open-source corpus: {open} statements");
    assert!(closed > 50_000, "closed-source corpus: {closed} statements");
    assert!(closed > 2 * open, "closed apps must dwarf open ones");
}
