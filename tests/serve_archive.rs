//! Archive-format guarantees on the real corpus (ISSUE 8):
//!
//! * **Deterministic recompile** — analyzing the corpus twice and
//!   compiling two indexes yields byte-identical archives, and the
//!   write → read → write round trip is byte-stable.
//! * **Verdict equality** — an archive-loaded index classifies every
//!   request of the full 34-app fuzzer corpus exactly like the
//!   JSON-compiled index it was written from (verdicts *and* probe
//!   counters).
//! * **Typed rejection** — corruption, truncation at any byte, and
//!   version skew are refused with typed `ArchiveError`s, never panics.
//! * **CLI round trip** — `compile --out` then `classify --index`
//!   reproduces source-compiled verdicts through the binary surface.

use extractocol_serve::{read_archive, write_archive, ArchiveError, SignatureIndex};

fn corpus_reports() -> Vec<extractocol_core::report::AnalysisReport> {
    extractocol_corpus::all_apps()
        .iter()
        .map(|app| {
            extractocol_dynamic::conformance::analyze_app(&app.apk, app.truth.open_source, 1)
        })
        .collect()
}

fn corpus_requests() -> Vec<extractocol_http::Request> {
    extractocol_corpus::all_apps()
        .iter()
        .flat_map(|app| {
            extractocol_dynamic::run_perfect_fuzzer(app).transactions.into_iter().map(|t| t.request)
        })
        .collect()
}

#[test]
fn corpus_archive_is_deterministic_and_byte_stable() {
    let a = SignatureIndex::compile(&corpus_reports());
    let b = SignatureIndex::compile(&corpus_reports());
    let bytes_a = write_archive(&a);
    let bytes_b = write_archive(&b);
    assert!(bytes_a.len() > 1_000, "corpus archive suspiciously small: {}", bytes_a.len());
    assert_eq!(bytes_a, bytes_b, "recompiling the corpus changed the archive bytes");

    // write(read(write(i))) == write(i): decode is lossless.
    let loaded = read_archive(&bytes_a).expect("self-written archive loads");
    assert_eq!(write_archive(&loaded), bytes_a);
}

#[test]
fn archive_loaded_index_is_verdict_identical_across_the_corpus() {
    let compiled = SignatureIndex::compile(&corpus_reports());
    let loaded = read_archive(&write_archive(&compiled)).expect("load");
    assert_eq!(loaded.len(), compiled.len());
    assert_eq!(loaded.trie_nodes(), compiled.trie_nodes());

    let requests = corpus_requests();
    assert!(requests.len() > 100, "corpus traffic unexpectedly small");
    for req in &requests {
        let (v_compiled, p_compiled) = compiled.classify(req);
        let (v_loaded, p_loaded) = loaded.classify(req);
        assert_eq!(
            v_compiled, v_loaded,
            "archive-loaded verdict diverges on {} {}",
            req.method, req.uri.raw
        );
        assert_eq!(p_compiled, p_loaded, "probe counters diverge on {}", req.uri.raw);
    }
}

#[test]
fn corrupted_and_truncated_corpus_archives_are_refused_with_typed_errors() {
    let index = SignatureIndex::compile(&corpus_reports());
    let bytes = write_archive(&index);

    // Version skew: refused by number, not by crash.
    let mut skewed = bytes.clone();
    skewed[8] = 0x7F;
    assert!(matches!(
        read_archive(&skewed),
        Err(ArchiveError::VersionMismatch { found: 0x7F, .. })
    ));

    // Single-bit corruption anywhere in the payload fails the checksum.
    for at in [32usize, bytes.len() / 2, bytes.len() - 1] {
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 0x20;
        assert!(
            matches!(read_archive(&corrupt), Err(ArchiveError::ChecksumMismatch { .. })),
            "corruption at byte {at} not caught"
        );
    }

    // Truncation at a spread of cut points (headers, section boundaries,
    // mid-signature, mid-node) is always a typed error.
    for cut in [0, 7, 8, 16, 31, 32, 40, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
        match read_archive(&bytes[..cut]) {
            Err(_) => {}
            Ok(_) => panic!("truncated archive loaded at cut {cut}/{}", bytes.len()),
        }
    }
}

#[test]
fn serve_cli_compile_then_classify_index_round_trips() {
    let mut bin = std::env::current_exe().expect("test exe path");
    bin.pop(); // deps/
    bin.pop(); // debug|release/
    bin.push(format!("extractocol-serve{}", std::env::consts::EXE_SUFFIX));

    let tmp = std::env::temp_dir();
    let archive = tmp.join(format!("extractocol-archive-cli-{}.exsv", std::process::id()));
    let traffic = tmp.join(format!("extractocol-archive-cli-{}.txt", std::process::id()));
    let app = extractocol_corpus::app("radio reddit").expect("corpus app");
    let trace = extractocol_dynamic::run_perfect_fuzzer(&app);
    std::fs::write(&traffic, trace.to_request_text()).unwrap();

    let out = std::process::Command::new(&bin)
        .args(["compile", "--app", "radio reddit", "--out"])
        .arg(&archive)
        .output()
        .expect("run compile");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("compiled"), "compile output");

    let out = std::process::Command::new(&bin)
        .args(["classify", "--index"])
        .arg(&archive)
        .arg("--traffic")
        .arg(&traffic)
        .output()
        .expect("run classify --index");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("-> radio reddit #"), "{stdout}");
    assert!(stdout.contains("unmatched:         0"), "{stdout}");

    // A corrupted archive is refused with the typed error on stderr.
    let mut bytes = std::fs::read(&archive).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&archive, &bytes).unwrap();
    let out = std::process::Command::new(&bin)
        .args(["classify", "--index"])
        .arg(&archive)
        .arg("--traffic")
        .arg(&traffic)
        .output()
        .expect("run classify --index (corrupt)");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("checksum"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_file(&archive);
    let _ = std::fs::remove_file(&traffic);
}
