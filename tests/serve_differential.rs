//! Differential property tests for the serving subsystem (ISSUE 4):
//!
//! * **Trie vs brute force** — for every request in the perfect-fuzzer
//!   traces of all 34 corpus apps, `SignatureIndex::classify` (byte-trie
//!   candidate pruning) must return exactly the verdict of
//!   `classify_brute` (linear scan over every signature). Pruning is an
//!   optimization, never a semantics change.
//! * **Jobs invariance** — batch classification at `jobs=1` and `jobs=8`
//!   must produce identical verdict vectors *and* identical stats
//!   (fixed-size shards + order-independent merging).
//! * **Pruning bite** — on corpus traffic the trie must keep the average
//!   structural-matcher workload at ≤ 20% of the compiled signatures per
//!   request (the acceptance bar reported in `BENCH_classify.json`).

use extractocol_serve::{classify_batch, SignatureIndex, Verdict};

fn corpus_index_and_requests() -> (SignatureIndex, Vec<extractocol_http::Request>) {
    let apps = extractocol_corpus::all_apps();
    let reports: Vec<_> = apps
        .iter()
        .map(|app| {
            extractocol_dynamic::conformance::analyze_app(&app.apk, app.truth.open_source, 1)
        })
        .collect();
    let index = SignatureIndex::compile(&reports);
    let requests: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            extractocol_dynamic::run_perfect_fuzzer(app).transactions.into_iter().map(|t| t.request)
        })
        .collect();
    (index, requests)
}

#[test]
fn classify_agrees_with_brute_force_on_all_corpus_traffic() {
    let (index, requests) = corpus_index_and_requests();
    assert!(index.len() > 100, "corpus index unexpectedly small: {}", index.len());
    assert!(requests.len() > 100, "corpus traffic unexpectedly small: {}", requests.len());

    let mut matched = 0usize;
    for req in &requests {
        let (fast, probe) = index.classify(req);
        let (brute, brute_probe) = index.classify_brute(req);
        assert_eq!(
            fast, brute,
            "trie-pruned verdict diverges from brute force on {} {}",
            req.method, req.uri.raw
        );
        // Pruning only ever removes work.
        assert!(probe.candidates <= brute_probe.candidates);
        assert!(probe.structural_evals <= brute_probe.structural_evals);
        if let Verdict::Match(id) = fast {
            matched += 1;
            // Provenance resolves to a real corpus app.
            assert!(!index.sig(id).app.is_empty());
        }
    }
    // The perfect fuzzer exercises extracted signatures, so the vast
    // majority of its requests must classify. (A small orphan share —
    // raw-socket ad/analytics traffic — is statically invisible by
    // design.)
    assert!(
        matched as f64 >= 0.9 * requests.len() as f64,
        "only {matched}/{} fuzzer requests classified",
        requests.len()
    );
}

#[test]
fn batch_classification_is_jobs_invariant() {
    let (index, requests) = corpus_index_and_requests();
    let (v1, s1) = classify_batch(&index, &requests, 1);
    let (v8, s8) = classify_batch(&index, &requests, 8);
    assert_eq!(v1, v8, "verdict vectors differ between jobs=1 and jobs=8");
    assert_eq!(s1, s8, "stats differ between jobs=1 and jobs=8");
    assert_eq!(s1.requests, requests.len());
    assert_eq!(s1.matched + s1.unmatched, s1.requests);
}

#[test]
fn trie_pruning_meets_the_twenty_percent_bar() {
    let (index, requests) = corpus_index_and_requests();
    let (_, stats) = classify_batch(&index, &requests, 1);
    let frac = stats.avg_eval_fraction();
    assert!(
        frac <= 0.20,
        "structural matcher ran on {:.1}% of signatures per request (bar: 20%)",
        100.0 * frac
    );
    // The candidate sets themselves stay small in absolute terms too.
    assert!(
        stats.avg_candidates() < index.len() as f64 * 0.20,
        "avg candidate set {:.1} of {} signatures",
        stats.avg_candidates(),
        index.len()
    );
}

#[test]
fn index_compilation_is_deterministic() {
    let apps = extractocol_corpus::all_apps();
    let reports: Vec<_> = apps
        .iter()
        .take(6)
        .map(|app| {
            extractocol_dynamic::conformance::analyze_app(&app.apk, app.truth.open_source, 1)
        })
        .collect();
    let a = SignatureIndex::compile(&reports);
    let b = SignatureIndex::compile(&reports);
    assert_eq!(a.len(), b.len());
    assert_eq!(a.trie_nodes(), b.trie_nodes());
    for (x, y) in a.sigs().iter().zip(b.sigs()) {
        assert_eq!(x.app, y.app);
        assert_eq!(x.txn_id, y.txn_id);
        assert_eq!(x.prefix, y.prefix);
    }
}

#[test]
fn traffic_wire_format_round_trips_corpus_traces() {
    // The CLI's line-based traffic format preserves classification:
    // serialize each app's fuzzer trace, parse it back, and classify —
    // verdicts must be identical to classifying the in-memory requests.
    let (index, _) = corpus_index_and_requests();
    for app in extractocol_corpus::all_apps().iter().take(8) {
        let trace = extractocol_dynamic::run_perfect_fuzzer(app);
        let text = trace.to_request_text();
        let reparsed = extractocol_dynamic::TrafficTrace::parse_request_text(&trace.app, &text)
            .expect("round trip");
        assert_eq!(reparsed.transactions.len(), trace.transactions.len());
        for (orig, rt) in trace.transactions.iter().zip(&reparsed.transactions) {
            assert_eq!(
                index.classify(&orig.request).0,
                index.classify(&rt.request).0,
                "{}: wire format changed the verdict of {} {}",
                trace.app,
                orig.request.method,
                orig.request.uri.raw
            );
        }
    }
}
