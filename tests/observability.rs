//! The observability contract (ISSUE 5): traces exported from real
//! pipeline runs round-trip through the strict Chrome-trace validator
//! with the promised nesting (per app run → per phase → per DP), the
//! collapsed-stack exporter emits well-formed flamegraph lines, and the
//! *deterministic* metrics snapshot is byte-identical across worker
//! counts — instrumentation must never make `--jobs` observable.

use extractocol_core::{Extractocol, Options, TraceCollector};
use extractocol_obs::{
    chrome_trace_json, collapsed_stacks, validate_chrome_trace, SpanRecord, Volatility,
};
use std::collections::BTreeMap;

fn corpus() -> Vec<extractocol_corpus::AppSpec> {
    extractocol_corpus::open_source_apps()
        .into_iter()
        .chain(extractocol_corpus::closed_source_apps())
        .collect()
}

fn traced_analyze(
    app: &extractocol_corpus::AppSpec,
    jobs: usize,
) -> (extractocol_core::AnalysisReport, Vec<SpanRecord>) {
    let trace = TraceCollector::enabled();
    let report = Extractocol::with_options(Options { jobs, ..Options::default() })
        .analyze_traced(&app.apk, &trace);
    let spans = trace.drain();
    assert_eq!(trace.dropped(), 0, "{}: collector capacity exceeded", app.truth.name);
    (report, spans)
}

#[test]
fn chrome_trace_round_trips_with_phase_dp_nesting() {
    for app in corpus() {
        let (report, spans) = traced_analyze(&app, 1);
        let json = chrome_trace_json(&spans);
        let stats = validate_chrome_trace(&json)
            .unwrap_or_else(|e| panic!("{}: invalid chrome trace: {e}", app.truth.name));
        assert_eq!(stats.events, spans.len(), "{}", app.truth.name);

        // Phase spans exist and are children of the run span.
        let slicing = spans
            .iter()
            .find(|r| r.cat == "phase" && r.name == "slicing")
            .unwrap_or_else(|| panic!("{}: no slicing phase span", app.truth.name));
        assert!(slicing.depth > 0, "{}: phase span must nest under the run", app.truth.name);

        // With jobs=1 the per-DP fan-out runs inline, so every DP span
        // nests strictly below its phase span.
        let dp_spans: Vec<_> = spans.iter().filter(|r| r.cat == "dp").collect();
        assert_eq!(dp_spans.len(), report.stats.dp_sites, "{}", app.truth.name);
        for dp in &dp_spans {
            assert!(dp.depth > slicing.depth, "{}: DP span outside a phase", app.truth.name);
            assert!(
                dp.start_ns >= slicing.start_ns && dp.end_ns <= slicing.end_ns,
                "{}: DP span not contained in the slicing phase",
                app.truth.name
            );
        }
    }
}

#[test]
fn span_profile_is_jobs_invariant() {
    // Wall-clock aside, the *set* of spans (grouped by category and name,
    // with multiplicity) must not depend on the worker count.
    let profile = |spans: &[SpanRecord]| -> BTreeMap<(String, String), usize> {
        let mut m = BTreeMap::new();
        for r in spans {
            *m.entry((r.cat.clone(), r.name.clone())).or_insert(0) += 1;
        }
        m
    };
    for app in corpus() {
        let (_, seq) = traced_analyze(&app, 1);
        let (_, par) = traced_analyze(&app, 8);
        assert_eq!(
            profile(&seq),
            profile(&par),
            "{}: span profile differs between jobs=1 and jobs=8",
            app.truth.name
        );
    }
}

#[test]
fn collapsed_stacks_are_well_formed() {
    let app = extractocol_corpus::app("radio reddit").expect("corpus app");
    let (_, spans) = traced_analyze(&app, 1);
    let text = collapsed_stacks(&spans);
    assert!(!text.is_empty());
    let mut saw_nested = false;
    for line in text.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("`frames weight` shape");
        assert!(!stack.is_empty(), "empty stack in {line:?}");
        weight.parse::<u64>().unwrap_or_else(|_| panic!("non-integer weight in {line:?}"));
        saw_nested |= stack.contains(';');
    }
    assert!(saw_nested, "no nested frame in the flamegraph output:\n{text}");
}

#[test]
fn pipeline_deterministic_metrics_are_jobs_invariant() {
    for app in corpus() {
        let snapshot = |jobs: usize| {
            let report =
                Extractocol::with_options(Options { jobs, ..Options::default() }).analyze(&app.apk);
            report.metrics.export_registry().render_deterministic()
        };
        let seq = snapshot(1);
        assert!(!seq.is_empty());
        assert_eq!(
            seq,
            snapshot(8),
            "{}: deterministic metrics snapshot differs between jobs=1 and jobs=8",
            app.truth.name
        );
    }
}

#[test]
fn per_run_metrics_stay_out_of_the_deterministic_snapshot() {
    let app = extractocol_corpus::app("radio reddit").expect("corpus app");
    let report = Extractocol::new().analyze(&app.apk);
    let registry = report.metrics.export_registry();
    let det = registry.render_deterministic();
    let all = registry.render();
    // Phase seconds and cache hit counts are wall-clock/schedule artifacts.
    assert!(!det.contains("pipeline_phase_seconds"));
    assert!(!det.contains("summary_cache_lookups_total"));
    assert!(all.contains("pipeline_phase_seconds"));
    assert!(all.contains("summary_cache_lookups_total"));
    assert!(det.contains("pipeline_dp_sites_total"));
    let _ = Volatility::PerRun; // the split under test
}

#[test]
fn serve_deterministic_snapshot_is_jobs_invariant_on_corpus_traffic() {
    use extractocol_serve::{classify_batch_observed, ServeMetrics, SignatureIndex};
    // A corpus slice keeps the debug-mode runtime sane while still
    // crossing shard boundaries (> 512 requests after tiling).
    let apps: Vec<_> = corpus().into_iter().take(6).collect();
    let reports: Vec<_> = apps
        .iter()
        .map(|a| extractocol_dynamic::conformance::analyze_app(&a.apk, a.truth.open_source, 0))
        .collect();
    let index = SignatureIndex::compile(&reports);
    let base: Vec<_> = apps
        .iter()
        .flat_map(|a| {
            extractocol_dynamic::run_perfect_fuzzer(a).transactions.into_iter().map(|t| t.request)
        })
        .collect();
    let requests = extractocol_serve::bench::tile_requests(&base, 2000);

    let snapshot = |jobs: usize| {
        let metrics = ServeMetrics::new();
        let (verdicts, _) =
            classify_batch_observed(&index, &requests, jobs, &metrics, &TraceCollector::disabled());
        (verdicts, metrics.registry.render_deterministic())
    };
    let (v1, s1) = snapshot(1);
    let (v8, s8) = snapshot(8);
    assert_eq!(v1, v8, "verdicts must be jobs-invariant");
    assert_eq!(s1, s8, "deterministic serve metrics must be jobs-invariant");
    assert!(s1.contains("serve_classify_requests_total 2000"), "{s1}");
    assert!(s1.contains("serve_classify_candidate_fraction_count 2000"), "{s1}");
    assert!(!s1.contains("serve_classify_latency_us"), "latency is per-run:\n{s1}");
}
