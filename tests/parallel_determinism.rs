//! The parallel pipeline contract: `Options { jobs }` changes wall-clock
//! behavior only. For every corpus app, the report produced with any
//! worker count is byte-identical to the sequential one, the shared
//! method-summary cache actually gets hits, and one analyzer can be
//! driven from many threads at once.

use extractocol_core::{Extractocol, Options};

fn analyze(app: &extractocol_corpus::AppSpec, jobs: usize) -> extractocol_core::AnalysisReport {
    Extractocol::with_options(Options { jobs, ..Options::default() }).analyze(&app.apk)
}

/// Canonical serialization: everything observable, no volatile metrics.
fn canon(r: &extractocol_core::AnalysisReport) -> (String, String) {
    (r.to_table(), r.to_json().to_json())
}

#[test]
fn reports_identical_across_job_counts() {
    let apps: Vec<_> = extractocol_corpus::open_source_apps()
        .into_iter()
        .chain(extractocol_corpus::closed_source_apps())
        .collect();
    assert!(!apps.is_empty());
    for app in &apps {
        let seq = analyze(app, 1);
        for jobs in [2, 4, 0] {
            let par = analyze(app, jobs);
            assert_eq!(
                canon(&seq),
                canon(&par),
                "{}: report differs between jobs=1 and jobs={jobs}",
                app.truth.name
            );
        }
    }
}

#[test]
fn summary_cache_hits_on_corpus() {
    let mut total_hits = 0;
    let mut total_misses = 0;
    for app in extractocol_corpus::open_source_apps()
        .into_iter()
        .chain(extractocol_corpus::closed_source_apps())
    {
        let report = analyze(&app, 0);
        let cache = &report.metrics.cache;
        assert_eq!(cache.lookups(), cache.hits + cache.misses, "{}", app.truth.name);
        total_hits += cache.hits;
        total_misses += cache.misses;
    }
    assert!(
        total_hits > 0,
        "at least one corpus app must reuse method summaries across DPs \
         (hits {total_hits} / misses {total_misses})"
    );
    assert!(total_misses > 0, "every first segment is a miss");
}

#[test]
fn metrics_are_populated() {
    let app = extractocol_corpus::app("radio reddit").expect("corpus app");
    let report = analyze(&app, 0);
    let m = &report.metrics;
    assert!(m.jobs >= 1, "resolved worker count");
    assert_eq!(m.per_dp.len(), report.stats.dp_sites, "one slice metric per DP");
    for (i, dp) in m.per_dp.iter().enumerate() {
        assert_eq!(dp.dp_id, i, "per-DP metrics ordered by DP id");
        assert!(dp.total_stmts() >= dp.request_stmts);
    }
    assert!(m.phases.total() <= report.stats.duration + m.phases.total());
    assert!(m.phases.slicing.as_nanos() > 0, "slicing phase timed");
}

/// The points-to solve and the lint pass obey the same determinism
/// contract as the report: byte-identical output whether the per-DP
/// fan-out ran sequentially or across every core.
#[test]
fn pointsto_and_lints_identical_across_job_counts() {
    for app in extractocol_corpus::open_source_apps()
        .into_iter()
        .chain(extractocol_corpus::closed_source_apps())
    {
        let seq = analyze(&app, 1);
        let par = analyze(&app, 0);
        assert_eq!(
            seq.metrics.lints.to_text(),
            par.metrics.lints.to_text(),
            "{}: lint output differs between jobs=1 and jobs=0",
            app.truth.name
        );
        assert_eq!(
            seq.metrics.pts, par.metrics.pts,
            "{}: points-to stats differ between jobs=1 and jobs=0",
            app.truth.name
        );
        assert!(seq.metrics.pts.is_some(), "{}: pointsto runs by default", app.truth.name);
    }
}

/// The conformance oracle obeys the same contract: its diagnostic text is
/// byte-identical whether the analysis behind it ran sequentially or
/// across every core (ISSUE 3 satellite: `--jobs 1` vs `--jobs 0`).
#[test]
fn conformance_output_identical_across_job_counts() {
    use extractocol_dynamic::conformance::conformance_check;
    for app in extractocol_corpus::open_source_apps()
        .into_iter()
        .chain(extractocol_corpus::closed_source_apps())
    {
        let (_, seq) = conformance_check(&app, 1);
        let (_, par) = conformance_check(&app, 0);
        assert_eq!(
            seq.to_text(),
            par.to_text(),
            "{}: conformance output differs between jobs=1 and jobs=0",
            app.truth.name
        );
        assert_eq!(seq, par, "{}: conformance reports differ structurally", app.truth.name);
    }
}

/// Concurrency smoke test: one analyzer instance, many threads.
#[test]
fn analyzer_is_shareable_across_threads() {
    let app = extractocol_corpus::app("radio reddit").expect("corpus app");
    let analyzer = Extractocol::with_options(Options { jobs: 2, ..Options::default() });
    let baseline = canon(&analyzer.analyze(&app.apk));
    std::thread::scope(|s| {
        let handles: Vec<_> =
            (0..4).map(|_| s.spawn(|| canon(&analyzer.analyze(&app.apk)))).collect();
        for h in handles {
            assert_eq!(h.join().expect("analysis thread"), baseline);
        }
    });
}
