//! The headline integration test: on all 34 corpus apps, the static
//! analysis reconstructs exactly the ground-truth protocol behavior
//! (Table 1's Extractocol column), and every signature is valid against
//! the traffic a manual-fuzzing run produces (§5.1).

use extractocol_dynamic::eval::AppEval;

fn check(app: &extractocol_corpus::AppSpec) {
    let eval = AppEval::run(app);
    let measured = eval.extractocol_counts();
    // The paper disables the async heuristic for open-source apps (§5.1).
    let truth = app.truth.static_counts_with(!app.truth.open_source);
    assert_eq!(
        (measured.get, measured.post, measured.put, measured.delete),
        (truth.get, truth.post, truth.put, truth.delete),
        "{}: method counts\n{}",
        app.truth.name,
        eval.report.to_table()
    );
    assert_eq!(measured.pairs, truth.pairs, "{}: pair count", app.truth.name);
    assert_eq!(measured.json, truth.json, "{}: JSON signatures", app.truth.name);
    assert_eq!(measured.xml, truth.xml, "{}: XML signatures", app.truth.name);
    assert!(
        eval.validity.orphan_lines.is_empty(),
        "{}: trace lines not covered by any signature: {:?}",
        app.truth.name,
        eval.validity.orphan_lines
    );
}

#[test]
fn open_source_apps_match_ground_truth() {
    let apps = extractocol_corpus::open_source_apps();
    assert_eq!(apps.len(), 14, "Table 1 has 14 open-source rows");
    for app in &apps {
        check(app);
    }
}

#[test]
fn closed_source_apps_match_ground_truth() {
    let apps = extractocol_corpus::closed_source_apps();
    assert_eq!(apps.len(), 20, "Table 1 has 20 closed-source rows");
    for app in &apps {
        check(app);
    }
}

#[test]
fn corpus_reproduces_the_papers_coverage_ordering() {
    // §5.1: Extractocol ≥ manual fuzzing ≥ automatic fuzzing on
    // closed-source apps, in total signature counts.
    let mut stat = 0usize;
    let mut man = 0usize;
    let mut auto = 0usize;
    for app in extractocol_corpus::closed_source_apps() {
        let eval = AppEval::run(&app);
        stat += eval.extractocol_counts().total();
        man += AppEval::trace_counts(&eval.manual, &app.truth).total();
        auto += AppEval::trace_counts(&eval.auto, &app.truth).total();
    }
    assert!(stat > man, "static {stat} must exceed manual fuzzing {man}");
    assert!(man > auto, "manual {man} must exceed automatic fuzzing {auto}");
}

#[test]
fn total_pairs_are_on_the_papers_scale() {
    // §5.1: "it identified 971 HTTP (request URI-response body) pairs".
    let total: usize = extractocol_corpus::all_apps()
        .iter()
        .map(|app| AppEval::run(app).report.pair_count())
        .sum();
    assert!(
        (800..=1200).contains(&total),
        "corpus-wide pair count {total} should be on the paper's ~971 scale"
    );
}
