#!/bin/sh
# Offline CI gate — the same checks .github/workflows/ci.yml runs.
# The workspace has zero external dependencies, so everything here works
# with no network access (see README "Building offline").
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> conformance gate (clean corpus, traced)"
cargo run --release -q -p extractocol-dynamic --bin extractocol-eval -- \
  --conformance --trace-out trace.json

echo "==> observability gate (chrome-trace round-trip validator)"
cargo run --release -q -p extractocol-obs --bin extractocol-trace-validate -- trace.json

echo "==> conformance gate (mutation self-test)"
cargo run --release -q -p extractocol-dynamic --bin extractocol-eval -- --conformance-mutate

echo "==> serving gate (classify bench smoke: pruning bar + 2x throughput regression)"
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  bench --requests 50000 --jobs 0 \
  --out BENCH_classify.json --baseline BENCH_classify.baseline.json \
  --metrics-out METRICS_classify.txt

echo "==> observability gate (mandatory serving instruments)"
for fam in serve_classify_requests_total serve_classify_verdict_total \
  serve_classify_candidate_fraction_bucket serve_classify_latency_us_bucket \
  serve_index_signatures serve_shards_total serve_phase_classify_seconds; do
  grep -q "$fam" METRICS_classify.txt \
    || { echo "METRICS_classify.txt: missing instrument family $fam"; exit 1; }
done

echo "CI OK"
