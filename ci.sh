#!/bin/sh
# Offline CI gate — the same checks .github/workflows/ci.yml runs.
# The workspace has zero external dependencies, so everything here works
# with no network access (see README "Building offline").
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> conformance gate (clean corpus)"
cargo run --release -q -p extractocol-dynamic --bin extractocol-eval -- --conformance

echo "==> conformance gate (mutation self-test)"
cargo run --release -q -p extractocol-dynamic --bin extractocol-eval -- --conformance-mutate

echo "==> serving gate (classify bench smoke: pruning bar + 2x throughput regression)"
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  bench --requests 50000 --jobs 0 \
  --out BENCH_classify.json --baseline BENCH_classify.baseline.json

echo "CI OK"
