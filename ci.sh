#!/bin/sh
# Offline CI gate — the same checks .github/workflows/ci.yml runs.
# The workspace has zero external dependencies, so everything here works
# with no network access (see README "Building offline").
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> conformance gate (clean corpus, traced)"
cargo run --release -q -p extractocol-dynamic --bin extractocol-eval -- \
  --conformance --trace-out trace.json

echo "==> observability gate (chrome-trace round-trip validator)"
cargo run --release -q -p extractocol-obs --bin extractocol-trace-validate -- trace.json

echo "==> conformance gate (mutation self-test)"
cargo run --release -q -p extractocol-dynamic --bin extractocol-eval -- --conformance-mutate

echo "==> serving gate (classify bench smoke: pruning bar + throughput margin + archive speedup)"
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  bench --requests 50000 --jobs 0 --iterations 3 \
  --out BENCH_classify.json --baseline BENCH_classify.baseline.json \
  --metrics-out METRICS_classify.txt

echo "==> observability gate (mandatory serving instruments)"
for fam in serve_classify_requests_total serve_classify_verdict_total \
  serve_classify_candidate_fraction_bucket serve_classify_latency_us_bucket \
  serve_index_signatures serve_shards_total serve_phase_classify_seconds; do
  grep -q "$fam" METRICS_classify.txt \
    || { echo "METRICS_classify.txt: missing instrument family $fam"; exit 1; }
done

echo "==> obs-diff gate (self-check: identical snapshots pass, seeded perturbation fails)"
cargo run --release -q -p extractocol-obs --bin extractocol-obs-diff -- \
  METRICS_classify.txt METRICS_classify.txt \
  || { echo "obs-diff: identical snapshots must pass"; exit 1; }
sed 's/^serve_classify_requests_total .*/serve_classify_requests_total 999999/' \
  METRICS_classify.txt > METRICS_perturbed.txt
if cargo run --release -q -p extractocol-obs --bin extractocol-obs-diff -- \
  METRICS_classify.txt METRICS_perturbed.txt > /dev/null; then
  echo "obs-diff: seeded counter perturbation went undetected"; exit 1
fi
rm -f METRICS_perturbed.txt

echo "==> obs-diff gate (checked-in baseline: deterministic families must not drift)"
cargo run --release -q -p extractocol-obs --bin extractocol-obs-diff -- \
  METRICS_classify.baseline.txt METRICS_classify.txt --ignore-per-run \
  || { echo "obs-diff: deterministic drift against METRICS_classify.baseline.txt \
(regenerate the baseline if the change is intentional)"; exit 1; }

echo "==> adversarial gate (seeded attack suite: totality + trie-vs-brute differential)"
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  attack --seed 3850022000 --per-class 64 --jobs 0 \
  --out BENCH_attack.json --metrics-out METRICS_attack.txt

echo "==> observability gate (mandatory attack instruments)"
for class in malformed_wire deep_body giant_body uri_mutation \
  regex_exhaustion truncated oversized_headers; do
  grep -q "serve_attack_cases_total{class=\"$class\"}" METRICS_attack.txt \
    || { echo "METRICS_attack.txt: missing cases counter for class $class"; exit 1; }
done
for fam in serve_attack_parse_errors_total serve_attack_budget_exhausted_total \
  serve_attack_verdict_total serve_attack_latency_us_bucket; do
  grep -q "$fam" METRICS_attack.txt \
    || { echo "METRICS_attack.txt: missing instrument family $fam"; exit 1; }
done
grep "serve_attack_parse_errors_total{class=\"malformed_wire\"}" METRICS_attack.txt \
  | grep -qv " 0\$" \
  || { echo "METRICS_attack.txt: malformed_wire produced no parse errors"; exit 1; }

echo "==> serving gate (archive compile + daemon smoke: hot swap, graceful drain, live introspection)"
rm -f daemon.port daemon_events.log METRICS_live.txt
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  compile --corpus --jobs 0 --out index_ci.exsv
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  daemon --index index_ci.exsv --listen 127.0.0.1:0 --port-file daemon.port \
  --metrics-out METRICS_daemon.txt \
  --log-out daemon_events.log --log-level debug &
DAEMON_PID=$!
for _ in $(seq 1 100); do [ -s daemon.port ] && break; sleep 0.1; done
[ -s daemon.port ] || { echo "daemon never wrote daemon.port"; kill "$DAEMON_PID"; exit 1; }
# First batch carries traffic and a hot swap but no SHUTDOWN: the daemon
# stays up so the introspection verbs can be scraped mid-run.
printf 'PING\nGET\thttp://example.com/a\nGET\thttp://example.com/b\nSWAP\tindex_ci.exsv\nGET\thttp://example.com/a\nSTATS\n' \
  > daemon_batch.txt
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  send --port-file daemon.port --traffic daemon_batch.txt > daemon_replies.txt
REQ=$(grep -c . daemon_batch.txt)
RESP=$(grep -c . daemon_replies.txt)
[ "$REQ" -eq "$RESP" ] \
  || { echo "daemon dropped replies: $RESP of $REQ answered"; exit 1; }
grep -q '^swapped' daemon_replies.txt \
  || { echo "daemon smoke: hot swap did not commit"; exit 1; }
grep -q 'generation=2' daemon_replies.txt \
  || { echo "daemon smoke: swap did not bump the index generation"; exit 1; }

echo "==> introspection gate (METRICS/HEALTH/SLOW scraped from the live daemon)"
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  scrape --port-file daemon.port --verb METRICS --out METRICS_live.txt
grep -q 'serve_daemon_requests_total' METRICS_live.txt \
  || { echo "METRICS_live.txt: live scrape is missing the request counter"; exit 1; }
grep -q '# VOLATILITY serve_daemon_requests_total deterministic' METRICS_live.txt \
  || { echo "METRICS_live.txt: live scrape is missing volatility annotations"; exit 1; }
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  scrape --port-file daemon.port --verb HEALTH > health_live.txt
grep -q 'status=ok' health_live.txt \
  || { echo "health scrape: daemon not healthy: $(cat health_live.txt)"; exit 1; }
grep -q 'generation=2' health_live.txt \
  || { echo "health scrape: post-swap generation not visible"; exit 1; }
grep -q 'last_swap=ok' health_live.txt \
  || { echo "health scrape: swap outcome not visible"; exit 1; }
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  scrape --port-file daemon.port --verb SLOW > slow_live.txt
grep -q 'trace_id=' slow_live.txt \
  || { echo "slow scrape: no request exemplars recorded"; exit 1; }

# Second batch shuts the daemon down; the mid-run scrape must not have
# perturbed the classify path.
printf 'GET\thttp://example.com/b\nSHUTDOWN\n' > daemon_batch2.txt
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  send --port-file daemon.port --traffic daemon_batch2.txt > daemon_replies2.txt
grep -q '^bye$' daemon_replies2.txt \
  || { echo "daemon smoke: SHUTDOWN not acknowledged"; exit 1; }
wait "$DAEMON_PID" \
  || { echo "daemon smoke: daemon exited nonzero (no graceful drain)"; exit 1; }

echo "==> introspection gate (structured event log from the daemon run)"
grep -q 'msg="daemon started"' daemon_events.log \
  || { echo "daemon_events.log: missing the startup record"; exit 1; }
grep -q 'msg="swap committed"' daemon_events.log \
  || { echo "daemon_events.log: missing the swap-committed record"; exit 1; }
grep -q 'msg="request classified"' daemon_events.log \
  || { echo "daemon_events.log: missing classify records"; exit 1; }
grep 'msg="request classified"' daemon_events.log | grep -qv 'trace_id=' \
  && { echo "daemon_events.log: classify record without a trace id"; exit 1; }

echo "==> observability gate (mandatory daemon instruments)"
for fam in serve_daemon_requests_total serve_daemon_verdict_total \
  serve_daemon_request_latency_us_bucket serve_daemon_swaps_total \
  serve_daemon_index_load_us_count serve_daemon_index_generation \
  serve_daemon_drain_timeouts_total serve_daemon_connections_total \
  log_records_dropped_total; do
  grep -q "$fam" METRICS_daemon.txt \
    || { echo "METRICS_daemon.txt: missing instrument family $fam"; exit 1; }
done
grep -q 'serve_daemon_swaps_total 1' METRICS_daemon.txt \
  || { echo "METRICS_daemon.txt: swap counter did not record the smoke swap"; exit 1; }
grep -q 'log_records_dropped_total 0' METRICS_daemon.txt \
  || { echo "METRICS_daemon.txt: the smoke run must not drop event records"; exit 1; }
rm -f index_ci.exsv daemon.port daemon_batch.txt daemon_batch2.txt \
  daemon_replies.txt daemon_replies2.txt health_live.txt slow_live.txt

echo "==> incremental gate (warm persistent-cache run: byte-identical reports, >=90% hit rate)"
rm -rf exsm_cache REPORTS_cold.txt REPORTS_warm.txt METRICS_incremental.txt
cargo run --release -q -p extractocol-dynamic --bin extractocol-eval -- \
  --conformance --targeted --summary-cache-dir exsm_cache \
  --report-out REPORTS_cold.txt > /dev/null
cargo run --release -q -p extractocol-dynamic --bin extractocol-eval -- \
  --conformance --targeted --summary-cache-dir exsm_cache \
  --report-out REPORTS_warm.txt --metrics-out METRICS_incremental.txt \
  > incr_warm.txt
grep -q 'incr\[' incr_warm.txt \
  || { echo "warm run printed no incr[...] lines"; exit 1; }
cmp REPORTS_cold.txt REPORTS_warm.txt \
  || { echo "warm-cache reports differ from cold-run reports"; exit 1; }
grep '^incr\[' incr_warm.txt | awk -F'hit_rate=' '{ sub(/%.*/, "", $2); if ($2 + 0 < 90) bad++ }
  END { if (bad > 0) { print bad " app(s) below the 90% warm hit-rate gate"; exit 1 } }' \
  || { cat incr_warm.txt; exit 1; }
grep -q 'targeted\[' incr_warm.txt \
  || { echo "targeted mode printed no cone stats"; exit 1; }

echo "==> observability gate (mandatory incremental instruments)"
for fam in incr_summaries_total incr_persistent_hit_rate \
  incr_targeted_skipped_classes_total incr_targeted_cone_methods_total; do
  grep -q "$fam" METRICS_incremental.txt \
    || { echo "METRICS_incremental.txt: missing instrument family $fam"; exit 1; }
done
rm -rf exsm_cache REPORTS_cold.txt REPORTS_warm.txt incr_warm.txt

echo "==> adversarial gate (fresh time-derived seed, printed for replay)"
ATTACK_SEED=$(date +%s)
echo "time-derived attack seed: $ATTACK_SEED (replay: extractocol-serve attack --seed $ATTACK_SEED --per-class 16)"
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  attack --seed "$ATTACK_SEED" --per-class 16 --jobs 0

echo "CI OK"
