#!/bin/sh
# Offline CI gate — the same checks .github/workflows/ci.yml runs.
# The workspace has zero external dependencies, so everything here works
# with no network access (see README "Building offline").
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> conformance gate (clean corpus, traced)"
cargo run --release -q -p extractocol-dynamic --bin extractocol-eval -- \
  --conformance --trace-out trace.json

echo "==> observability gate (chrome-trace round-trip validator)"
cargo run --release -q -p extractocol-obs --bin extractocol-trace-validate -- trace.json

echo "==> conformance gate (mutation self-test)"
cargo run --release -q -p extractocol-dynamic --bin extractocol-eval -- --conformance-mutate

echo "==> serving gate (classify bench smoke: pruning bar + 2x throughput regression)"
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  bench --requests 50000 --jobs 0 \
  --out BENCH_classify.json --baseline BENCH_classify.baseline.json \
  --metrics-out METRICS_classify.txt

echo "==> observability gate (mandatory serving instruments)"
for fam in serve_classify_requests_total serve_classify_verdict_total \
  serve_classify_candidate_fraction_bucket serve_classify_latency_us_bucket \
  serve_index_signatures serve_shards_total serve_phase_classify_seconds; do
  grep -q "$fam" METRICS_classify.txt \
    || { echo "METRICS_classify.txt: missing instrument family $fam"; exit 1; }
done

echo "==> adversarial gate (seeded attack suite: totality + trie-vs-brute differential)"
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  attack --seed 3850022000 --per-class 64 --jobs 0 \
  --out BENCH_attack.json --metrics-out METRICS_attack.txt

echo "==> observability gate (mandatory attack instruments)"
for class in malformed_wire deep_body giant_body uri_mutation \
  regex_exhaustion truncated oversized_headers; do
  grep -q "serve_attack_cases_total{class=\"$class\"}" METRICS_attack.txt \
    || { echo "METRICS_attack.txt: missing cases counter for class $class"; exit 1; }
done
for fam in serve_attack_parse_errors_total serve_attack_budget_exhausted_total \
  serve_attack_verdict_total serve_attack_latency_us_bucket; do
  grep -q "$fam" METRICS_attack.txt \
    || { echo "METRICS_attack.txt: missing instrument family $fam"; exit 1; }
done
grep "serve_attack_parse_errors_total{class=\"malformed_wire\"}" METRICS_attack.txt \
  | grep -qv " 0\$" \
  || { echo "METRICS_attack.txt: malformed_wire produced no parse errors"; exit 1; }

echo "==> adversarial gate (fresh time-derived seed, printed for replay)"
ATTACK_SEED=$(date +%s)
echo "time-derived attack seed: $ATTACK_SEED (replay: extractocol-serve attack --seed $ATTACK_SEED --per-class 16)"
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  attack --seed "$ATTACK_SEED" --per-class 16 --jobs 0

echo "CI OK"
