#!/bin/sh
# Offline CI gate — the same checks .github/workflows/ci.yml runs.
# The workspace has zero external dependencies, so everything here works
# with no network access (see README "Building offline").
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> conformance gate (clean corpus, traced)"
cargo run --release -q -p extractocol-dynamic --bin extractocol-eval -- \
  --conformance --trace-out trace.json

echo "==> observability gate (chrome-trace round-trip validator)"
cargo run --release -q -p extractocol-obs --bin extractocol-trace-validate -- trace.json

echo "==> conformance gate (mutation self-test)"
cargo run --release -q -p extractocol-dynamic --bin extractocol-eval -- --conformance-mutate

echo "==> serving gate (classify bench smoke: pruning bar + throughput margin + archive speedup)"
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  bench --requests 50000 --jobs 0 --iterations 3 \
  --out BENCH_classify.json --baseline BENCH_classify.baseline.json \
  --metrics-out METRICS_classify.txt

echo "==> observability gate (mandatory serving instruments)"
for fam in serve_classify_requests_total serve_classify_verdict_total \
  serve_classify_candidate_fraction_bucket serve_classify_latency_us_bucket \
  serve_index_signatures serve_shards_total serve_phase_classify_seconds; do
  grep -q "$fam" METRICS_classify.txt \
    || { echo "METRICS_classify.txt: missing instrument family $fam"; exit 1; }
done

echo "==> adversarial gate (seeded attack suite: totality + trie-vs-brute differential)"
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  attack --seed 3850022000 --per-class 64 --jobs 0 \
  --out BENCH_attack.json --metrics-out METRICS_attack.txt

echo "==> observability gate (mandatory attack instruments)"
for class in malformed_wire deep_body giant_body uri_mutation \
  regex_exhaustion truncated oversized_headers; do
  grep -q "serve_attack_cases_total{class=\"$class\"}" METRICS_attack.txt \
    || { echo "METRICS_attack.txt: missing cases counter for class $class"; exit 1; }
done
for fam in serve_attack_parse_errors_total serve_attack_budget_exhausted_total \
  serve_attack_verdict_total serve_attack_latency_us_bucket; do
  grep -q "$fam" METRICS_attack.txt \
    || { echo "METRICS_attack.txt: missing instrument family $fam"; exit 1; }
done
grep "serve_attack_parse_errors_total{class=\"malformed_wire\"}" METRICS_attack.txt \
  | grep -qv " 0\$" \
  || { echo "METRICS_attack.txt: malformed_wire produced no parse errors"; exit 1; }

echo "==> serving gate (archive compile + daemon smoke: hot swap, graceful drain)"
rm -f daemon.port
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  compile --corpus --jobs 0 --out index_ci.exsv
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  daemon --index index_ci.exsv --listen 127.0.0.1:0 --port-file daemon.port \
  --metrics-out METRICS_daemon.txt &
DAEMON_PID=$!
for _ in $(seq 1 100); do [ -s daemon.port ] && break; sleep 0.1; done
[ -s daemon.port ] || { echo "daemon never wrote daemon.port"; kill "$DAEMON_PID"; exit 1; }
printf 'PING\nGET\thttp://example.com/a\nGET\thttp://example.com/b\nSWAP\tindex_ci.exsv\nGET\thttp://example.com/a\nSTATS\nSHUTDOWN\n' \
  > daemon_batch.txt
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  send --port-file daemon.port --traffic daemon_batch.txt > daemon_replies.txt
REQ=$(grep -c . daemon_batch.txt)
RESP=$(grep -c . daemon_replies.txt)
[ "$REQ" -eq "$RESP" ] \
  || { echo "daemon dropped replies: $RESP of $REQ answered"; exit 1; }
grep -q '^swapped' daemon_replies.txt \
  || { echo "daemon smoke: hot swap did not commit"; exit 1; }
grep -q 'generation=2' daemon_replies.txt \
  || { echo "daemon smoke: swap did not bump the index generation"; exit 1; }
grep -q '^bye$' daemon_replies.txt \
  || { echo "daemon smoke: SHUTDOWN not acknowledged"; exit 1; }
wait "$DAEMON_PID" \
  || { echo "daemon smoke: daemon exited nonzero (no graceful drain)"; exit 1; }

echo "==> observability gate (mandatory daemon instruments)"
for fam in serve_daemon_requests_total serve_daemon_verdict_total \
  serve_daemon_request_latency_us_bucket serve_daemon_swaps_total \
  serve_daemon_index_load_us_count serve_daemon_index_generation \
  serve_daemon_drain_timeouts_total serve_daemon_connections_total; do
  grep -q "$fam" METRICS_daemon.txt \
    || { echo "METRICS_daemon.txt: missing instrument family $fam"; exit 1; }
done
grep -q 'serve_daemon_swaps_total 1' METRICS_daemon.txt \
  || { echo "METRICS_daemon.txt: swap counter did not record the smoke swap"; exit 1; }
rm -f index_ci.exsv daemon.port daemon_batch.txt daemon_replies.txt

echo "==> incremental gate (warm persistent-cache run: byte-identical reports, >=90% hit rate)"
rm -rf exsm_cache REPORTS_cold.txt REPORTS_warm.txt METRICS_incremental.txt
cargo run --release -q -p extractocol-dynamic --bin extractocol-eval -- \
  --conformance --targeted --summary-cache-dir exsm_cache \
  --report-out REPORTS_cold.txt > /dev/null
cargo run --release -q -p extractocol-dynamic --bin extractocol-eval -- \
  --conformance --targeted --summary-cache-dir exsm_cache \
  --report-out REPORTS_warm.txt --metrics-out METRICS_incremental.txt \
  > incr_warm.txt
grep -q 'incr\[' incr_warm.txt \
  || { echo "warm run printed no incr[...] lines"; exit 1; }
cmp REPORTS_cold.txt REPORTS_warm.txt \
  || { echo "warm-cache reports differ from cold-run reports"; exit 1; }
grep '^incr\[' incr_warm.txt | awk -F'hit_rate=' '{ sub(/%.*/, "", $2); if ($2 + 0 < 90) bad++ }
  END { if (bad > 0) { print bad " app(s) below the 90% warm hit-rate gate"; exit 1 } }' \
  || { cat incr_warm.txt; exit 1; }
grep -q 'targeted\[' incr_warm.txt \
  || { echo "targeted mode printed no cone stats"; exit 1; }

echo "==> observability gate (mandatory incremental instruments)"
for fam in incr_summaries_total incr_persistent_hit_rate \
  incr_targeted_skipped_classes_total incr_targeted_cone_methods_total; do
  grep -q "$fam" METRICS_incremental.txt \
    || { echo "METRICS_incremental.txt: missing instrument family $fam"; exit 1; }
done
rm -rf exsm_cache REPORTS_cold.txt REPORTS_warm.txt incr_warm.txt

echo "==> adversarial gate (fresh time-derived seed, printed for replay)"
ATTACK_SEED=$(date +%s)
echo "time-derived attack seed: $ATTACK_SEED (replay: extractocol-serve attack --seed $ATTACK_SEED --per-class 16)"
cargo run --release -q -p extractocol-serve --bin extractocol-serve -- \
  attack --seed "$ATTACK_SEED" --per-class 16 --jobs 0

echo "CI OK"
