//! # extractocol-suite
//!
//! Workspace-level façade: re-exports the crates so the examples and
//! integration tests read naturally, and hosts the cross-crate test suite
//! under `tests/`.
//!
//! Start with the `quickstart` example:
//!
//! ```bash
//! cargo run --example quickstart
//! ```

pub use extractocol_analysis as analysis;
pub use extractocol_core as core;
pub use extractocol_corpus as corpus;
pub use extractocol_dynamic as dynamic;
pub use extractocol_http as http;
pub use extractocol_ir as ir;
