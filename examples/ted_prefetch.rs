//! The Fig. 1 application-acceleration scenario: analyze the TED corpus
//! app, discover the ad-query → ad-video → media-player chain, and build a
//! prefetch plan a proxy could execute before the player ever asks.
//!
//! ```bash
//! cargo run --example ted_prefetch
//! ```

use extractocol_core::sigbuild::ResponseSig;
use extractocol_dynamic::eval::AppEval;

fn main() {
    let app = extractocol_corpus::app("TED").expect("TED corpus app");
    let eval = AppEval::run(&app);
    let report = &eval.report;

    println!("TED: {} transactions reconstructed\n", report.transactions.len());

    // Find the ad-query transaction (request 1 of Fig. 1).
    let ad = report
        .transactions
        .iter()
        .find(|t| t.uri_regex.contains("android_ad"))
        .expect("ad transaction");
    println!("1. GET {}", ad.uri.display());
    if let Some(ResponseSig::Json(j)) = &ad.response {
        println!("   response: {}", j.display());
    }

    // Its dependents form the prefetch chain.
    println!("\nprefetch plan (derived from dependency edges):");
    let mut frontier = vec![ad.id];
    let mut step = 2;
    while let Some(cur) = frontier.pop() {
        for d in report.dependencies.iter().filter(|d| d.from == cur) {
            let next = &report.transactions[d.to];
            // Skip edges that point back into already-known requests.
            if next.id == cur {
                continue;
            }
            println!(
                "{step}. prefetch {} {}   (via {}{})",
                next.method,
                next.uri.display(),
                d.via,
                d.resp_field
                    .as_ref()
                    .map(|f| format!(", response field `{f}`"))
                    .unwrap_or_default()
            );
            for c in &next.consumptions {
                println!("   → response goes to {c} (prefetch pays off here)");
            }
            frontier.push(next.id);
            step += 1;
        }
    }

    println!("\npaper Fig. 1: \"one can generate a prefetcher that prefetches");
    println!("advertisements\" — this plan is that prefetcher's input.");
}
