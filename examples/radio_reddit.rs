//! The Table 3 characterization scenario: reconstruct radio reddit's six
//! transactions, show the login-token dependency graph, then *execute* the
//! app against the mock server and verify every signature matches the
//! traffic it produces.
//!
//! ```bash
//! cargo run --example radio_reddit
//! ```

use extractocol_dynamic::eval::AppEval;
use extractocol_dynamic::trace::matching_transactions;

fn main() {
    let app = extractocol_corpus::app("radio reddit").expect("corpus app");
    let eval = AppEval::run(&app);

    println!("{}", eval.report.to_table());

    println!("-- signature ↔ traffic validation (manual fuzzing run) --");
    for txn in &eval.report.transactions {
        let hits = matching_transactions(txn, &eval.manual);
        let status = if hits.is_empty() {
            "no traffic (untriggered)".to_string()
        } else {
            format!("{} trace line(s) matched", hits.len())
        };
        println!("#{} {} … {status}", txn.id + 1, txn.method);
    }
    assert!(eval.validity.orphan_lines.is_empty(), "every trace line is covered by a signature");
    println!("\nall signatures valid against the captured traffic (paper §5.1).");
}
