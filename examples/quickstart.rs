//! Quickstart: build a tiny Android app in the IR, analyze it, and print
//! the reconstructed protocol behavior.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! The app logs in (POST with a form body), stores the session token from
//! the JSON response in a field, and uses it to fetch a feed — the classic
//! inter-transaction dependency Extractocol recovers statically (§3.3).

use extractocol_core::{stubs, Extractocol};
use extractocol_ir::{ApkBuilder, Type, Value};

fn build_app() -> extractocol_ir::Apk {
    let mut b = ApkBuilder::new("quickstart", "com.example.quickstart");
    // Platform/library stubs: what android.jar provides to a real build.
    stubs::install(&mut b);
    b.activity("com.example.quickstart.Main");

    b.class("com.example.quickstart.Api", |c| {
        let token = c.field("mToken", Type::string());

        // POST https://api.example.com/session  user=…&passwd=…
        c.method("login", vec![Type::string(), Type::string()], Type::Void, |m| {
            let this = m.recv("com.example.quickstart.Api");
            let user = m.arg(0, "user");
            let passwd = m.arg(1, "passwd");
            let list = m.new_obj("java.util.ArrayList", vec![]);
            let p1 = m.new_obj(
                "org.apache.http.message.BasicNameValuePair",
                vec![Value::str("user"), Value::Local(user)],
            );
            m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(p1)]);
            let p2 = m.new_obj(
                "org.apache.http.message.BasicNameValuePair",
                vec![Value::str("passwd"), Value::Local(passwd)],
            );
            m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(p2)]);
            let ent = m.new_obj(
                "org.apache.http.client.entity.UrlEncodedFormEntity",
                vec![Value::Local(list)],
            );
            let req = m.new_obj(
                "org.apache.http.client.methods.HttpPost",
                vec![Value::str("https://api.example.com/session")],
            );
            m.vcall_void(
                req,
                "org.apache.http.client.methods.HttpPost",
                "setEntity",
                vec![Value::Local(ent)],
            );
            let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
            let resp = m.vcall(
                client,
                "org.apache.http.client.HttpClient",
                "execute",
                vec![Value::Local(req)],
                Type::object("org.apache.http.HttpResponse"),
            );
            let e = m.vcall(
                resp,
                "org.apache.http.HttpResponse",
                "getEntity",
                vec![],
                Type::object("org.apache.http.HttpEntity"),
            );
            let body = m.scall(
                "org.apache.http.util.EntityUtils",
                "toString",
                vec![Value::Local(e)],
                Type::string(),
            );
            let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
            let tok = m.vcall(
                j,
                "org.json.JSONObject",
                "getString",
                vec![Value::str("token")],
                Type::string(),
            );
            m.put_field(this, &token, tok);
            m.ret_void();
        });

        // GET https://api.example.com/feed?auth=<token>&page=<n>
        c.method("feed", vec![Type::Int], Type::Void, |m| {
            let this = m.recv("com.example.quickstart.Api");
            let page = m.arg(0, "page");
            let tok = m.temp(Type::string());
            m.get_field(tok, this, &token);
            let sb = m.new_obj(
                "java.lang.StringBuilder",
                vec![Value::str("https://api.example.com/feed?auth=")],
            );
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(tok)]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("&page=")]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(page)]);
            let url = m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
            let req = m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
            let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
            let resp = m.vcall(
                client,
                "org.apache.http.client.HttpClient",
                "execute",
                vec![Value::Local(req)],
                Type::object("org.apache.http.HttpResponse"),
            );
            let e = m.vcall(
                resp,
                "org.apache.http.HttpResponse",
                "getEntity",
                vec![],
                Type::object("org.apache.http.HttpEntity"),
            );
            let body = m.scall(
                "org.apache.http.util.EntityUtils",
                "toString",
                vec![Value::Local(e)],
                Type::string(),
            );
            let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
            let items = m.vcall(
                j,
                "org.json.JSONObject",
                "getJSONArray",
                vec![Value::str("items")],
                Type::object("org.json.JSONArray"),
            );
            let first = m.vcall(
                items,
                "org.json.JSONArray",
                "getJSONObject",
                vec![Value::int(0)],
                Type::object("org.json.JSONObject"),
            );
            let title = m.vcall(
                first,
                "org.json.JSONObject",
                "getString",
                vec![Value::str("title")],
                Type::string(),
            );
            let _ = title;
            m.ret_void();
        });
    });
    b.build()
}

fn main() {
    let apk = build_app();
    println!("analyzing `{}` ({} statements) …\n", apk.name, apk.total_statements());
    let report = Extractocol::new().analyze(&apk);
    println!("{}", report.to_table());
    println!(
        "stats: {} DP sites, slices cover {:.1}% of the code, {:?}",
        report.stats.dp_sites,
        100.0 * report.stats.slice_fraction(),
        report.stats.duration
    );
}
