//! Obfuscation robustness (§3.4, §5.1): obfuscate an app with the
//! ProGuard-style renamer — including its bundled libraries — and show the
//! analysis recovers the identical protocol behavior via shape-based
//! library de-obfuscation.
//!
//! ```bash
//! cargo run --example obfuscation
//! ```

use extractocol_core::Extractocol;
use extractocol_ir::obfuscate::{obfuscate, ObfuscationOptions};

fn main() {
    let app = extractocol_corpus::app("blippex").expect("corpus app");
    let analyzer = Extractocol::new();

    let plain = analyzer.analyze(&app.apk);

    let (obf_apk, map) = obfuscate(
        &app.apk,
        &ObfuscationOptions { obfuscate_libraries: true, extra_keep_prefixes: vec![] },
    );
    println!(
        "obfuscated {} classes and {} methods (libraries included)",
        map.classes.len(),
        map.methods.len()
    );
    let obf = analyzer.analyze(&obf_apk);
    println!("library classes recovered by the §3.4 mapper: {}", obf.stats.deobfuscated_classes);

    println!("\n-- plain --\n{}", plain.to_table());
    println!("-- obfuscated --\n{}", obf.to_table());

    assert_eq!(plain.transactions.len(), obf.transactions.len());
    for (a, b) in plain.transactions.iter().zip(&obf.transactions) {
        assert_eq!(a.method, b.method);
        assert_eq!(a.uri_regex, b.uri_regex, "identifier renaming must not change signatures");
    }
    println!("identical signatures before and after obfuscation (paper §5.1).");
}
