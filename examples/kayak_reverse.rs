//! The §5.3 reverse-engineering scenario: scope the analysis to com.kayak,
//! recover the private REST API (Tables 5–6), and drive a replay client
//! built *only* from the recovered signatures — including the User-Agent
//! the server gates on.
//!
//! ```bash
//! cargo run --example kayak_reverse
//! ```

use extractocol_core::{Extractocol, Options};
use extractocol_dynamic::replay::replay_kayak_flight_search;
use extractocol_http::{Body, Request, Uri};

fn main() {
    let app = extractocol_corpus::app("KAYAK").expect("corpus app");

    let opts = Options { scope_prefix: Some("com.kayak".into()), ..Options::default() };
    let report = Extractocol::with_options(opts).analyze(&app.apk);

    println!(
        "recovered {} transactions from the Kayak app (paper: 46; 3 were previously known)\n",
        report.transactions.len()
    );
    for fragment in ["authajax", "flight/start", "flight/poll"] {
        let t = report
            .transactions
            .iter()
            .find(|t| t.uri_regex.contains(fragment))
            .expect("flight API signature");
        println!("{} {}", t.method, t.uri.display());
    }

    // Without the recovered User-Agent the server refuses us.
    let bare = Request {
        method: extractocol_http::HttpMethod::Get,
        uri: Uri::parse("https://www.kayak.com/api/search/V8/flight/start?cabin=e"),
        headers: Default::default(),
        body: Body::Empty,
    };
    let denied = app.server.serve(&bare);
    println!("\nwithout User-Agent: HTTP {}", denied.status);
    assert_eq!(denied.status, 403, "access control by User-Agent (§5.3)");

    // The replay client concretizes the signatures and retrieves fares.
    let outcome = replay_kayak_flight_search(&report, &app.server);
    println!(
        "with recovered signatures: auth={} fares={}",
        outcome.auth_ok, outcome.fares_retrieved
    );
    assert!(outcome.fares_retrieved);
    for t in &outcome.trace.transactions {
        println!("  {} {} -> {}", t.request.method, t.request.uri, t.response.status);
    }
    println!("\npaper: \"We verify that it successfully retrieves flight fare information.\"");
}
